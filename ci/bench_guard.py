#!/usr/bin/env python3
"""Guard the committed benchmark snapshots (BENCH_*.json).

The real benches are too slow and noise-sensitive for CI runners, so CI
checks the *recorded* numbers instead: whenever a snapshot is refreshed, the
floors and stanzas below must still hold.  The workflow's bench smoke steps
check that the benches still run; this script checks what they last measured.

Checks:

* BENCH_ingest.json — the workload stanza records the arena encode path with
  write-side key dedup, and every batched configuration is at least as fast
  as its per-pair baseline (worst_batched_speedup >= 1.0, the PR 4 floor).
* BENCH_query.json — the workload stanza records the same encode/dedup
  provenance, and the batched mismatched-scan speedup floor holds.
* Schema — every snapshot's top-level and workload keys must match the
  STANZA_KEYS table exactly (no unknown keys, no missing keys), so stanzas
  cannot drift out of guard coverage unnoticed.  `cargo xtask lint`
  cross-checks the same table against the snapshots from the Rust side.
* BENCH_capture.json — the workload stanza records the async pipeline shape,
  and async capture's operator wall-clock overhead stays below sync
  capture's (the async-capture ceiling: if deferring flush work off the
  executor thread stops paying for itself, the pipeline has regressed).
* BENCH_server.json — the workload stanza records the daemon topology and the
  bounded lookup batch size, and chunk-batched lookups over the socket stay
  at least as fast as per-query round-trips (batched_lookup_min_speedup
  >= 1.0: if batching stops amortising framing and the shard rendezvous,
  the wire path has regressed).

Runnable locally from the repository root (or anywhere, with --root):

    python3 ci/bench_guard.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


class GuardError(Exception):
    """A benchmark snapshot violated a floor or is missing its stanza."""


# The exact schema of every committed snapshot: top-level keys and the keys
# of the `workload` stanza.  check_schema() fails on *unknown* keys as well
# as missing ones, so a renamed stanza cannot silently fall out of guard
# coverage.  Keep this a plain dict of string lists: `cargo xtask lint`
# cross-checks it against the snapshots with a text parser (no Python
# needed), and fails CI when the two drift apart.
STANZA_KEYS = {
    "BENCH_ingest.json": {
        "top": ["indexed_chain_min_speedup", "results", "workload", "worst_batched_speedup"],
        "workload": [
            "backend_hasher", "coverage", "dedup_rate", "encode", "fanin",
            "fanout", "key_dedup", "pairs", "shape", "workers",
        ],
    },
    "BENCH_query.json": {
        "top": ["mismatched_scan_min_batched_speedup", "results", "scan_decode", "workload"],
        "workload": [
            "cells_per_query", "encode", "fanin", "fanout", "key_dedup",
            "queries", "query_fanout_workers", "shape",
        ],
    },
    "BENCH_capture.json": {
        "top": ["overhead_vs_nocapture", "results", "workload"],
        "workload": [
            "flushers", "operators", "pairs", "policy", "queue_depth",
            "shape", "strategy", "workflow",
        ],
    },
    "BENCH_server.json": {
        "top": ["batched_lookup_min_speedup", "results", "workload"],
        "workload": [
            "batches", "clients", "container_mix", "lookup_chunk", "ops",
            "pairs_per_batch", "policy", "queries", "shape", "shards",
        ],
    },
}


def load(root: pathlib.Path, name: str) -> dict:
    path = root / name
    if not path.exists():
        raise GuardError(f"{name} is missing — run the matching bench to regenerate it")
    with path.open() as fh:
        return json.load(fh)


def require(condition: bool, message: str) -> None:
    if not condition:
        raise GuardError(message)


def check_schema(root: pathlib.Path) -> str:
    for name, schema in STANZA_KEYS.items():
        d = load(root, name)
        for section, found in (
            ("top", set(d.keys())),
            ("workload", set(d.get("workload", {}).keys())),
        ):
            expected = set(schema[section])
            unknown = sorted(found - expected)
            missing = sorted(expected - found)
            require(
                not unknown,
                f"{name}: unknown {section} key(s) {unknown} — declare them in "
                "ci/bench_guard.py STANZA_KEYS (and guard them) or drop them "
                "from the snapshot",
            )
            require(
                not missing,
                f"{name}: missing {section} key(s) {missing} — the snapshot no "
                "longer records what STANZA_KEYS pins; regenerate it or update "
                "the schema deliberately",
            )
    return f"schema ok: {len(STANZA_KEYS)} snapshots match STANZA_KEYS exactly"


def check_ingest(root: pathlib.Path) -> str:
    d = load(root, "BENCH_ingest.json")
    w = d.get("workload", {})
    require(
        w.get("encode") == "arena",
        f"BENCH_ingest.json: expected arena encode path, got {w.get('encode')!r}",
    )
    require(
        w.get("key_dedup") is True,
        "BENCH_ingest.json: expected write-side key dedup to be recorded",
    )
    worst = d["worst_batched_speedup"]
    require(
        worst >= 1.0,
        f"batched ingest regressed: worst_batched_speedup={worst} < 1.0 "
        "(re-run `cargo bench -p subzero-bench --bench ingest` and fix the slow "
        "path before refreshing BENCH_ingest.json)",
    )
    return f"ingest ok: worst_batched_speedup={worst}"


def check_query(root: pathlib.Path) -> str:
    q = load(root, "BENCH_query.json")
    qw = q.get("workload", {})
    require(
        qw.get("encode") == "arena" and qw.get("key_dedup") is True,
        "BENCH_query.json: workload stanza missing arena/dedup record",
    )
    floor = q["mismatched_scan_min_batched_speedup"]
    require(
        floor >= 1.0,
        f"batched queries regressed: mismatched_scan_min_batched_speedup={floor} < 1.0 "
        "(re-run `cargo bench -p subzero-bench --bench query` and fix the batched "
        "scan path before refreshing BENCH_query.json)",
    )
    # Absolute throughput floors for the batched mismatched-direction scan:
    # the pre-mmap/columnar seed measured 457.2 (mem) / 489.0 (file) q/s, and
    # the read-path rework must never fall back below it.
    qps_floors = {"mem": 457.0, "file": 489.0}
    for row in q.get("results", []):
        if row.get("config") == "mismatched_scan" and row.get("mode") == "batched":
            backend = row.get("backend")
            qps = row.get("queries_per_sec", 0.0)
            qfloor = qps_floors.pop(backend, None)
            require(
                qfloor is None or qps >= qfloor,
                f"mismatched-scan batched throughput regressed on {backend}: "
                f"{qps} q/s < seed floor {qfloor} (the mmap'd block read path + "
                "columnar decode must not be slower than the pre-columnar scan)",
            )
    require(
        not qps_floors,
        f"BENCH_query.json: missing batched mismatched_scan results for {sorted(qps_floors)}",
    )
    sd = q.get("scan_decode", {})
    require(
        sd.get("speedup", 0.0) >= 1.0,
        f"columnar scan decode regressed: scan_decode speedup={sd.get('speedup')} < 1.0 "
        "(decode_cells_block must stay at least as fast as the legacy per-coord decoder)",
    )
    return (
        f"query ok: mismatched_scan_min_batched_speedup={floor}, "
        f"scan_decode speedup={sd.get('speedup')}"
    )


def check_capture(root: pathlib.Path) -> str:
    c = load(root, "BENCH_capture.json")
    cw = c.get("workload", {})
    require(
        cw.get("workflow") == "astronomy",
        "BENCH_capture.json: capture overhead must be measured on the astronomy workload",
    )
    for field in ("queue_depth", "flushers", "policy"):
        require(
            field in cw,
            f"BENCH_capture.json: workload stanza missing {field!r} (pipeline shape "
            "must be recorded so numbers are comparable across refreshes)",
        )
    overhead = c.get("overhead_vs_nocapture")
    require(
        isinstance(overhead, dict) and "sync" in overhead and "async" in overhead,
        "BENCH_capture.json: overhead_vs_nocapture stanza missing sync/async entries",
    )
    sync, asyn = overhead["sync"], overhead["async"]
    require(
        sync > 0,
        f"BENCH_capture.json: sync capture overhead {sync} is not positive — the "
        "workload no longer exercises capture at all",
    )
    require(
        asyn < sync,
        f"async capture regressed: overhead_vs_nocapture async={asyn} >= sync={sync} "
        "(deferring flush work off the executor thread must reduce operator "
        "wall-clock; re-run `cargo bench -p subzero-bench --bench capture` and fix "
        "the pipeline before refreshing BENCH_capture.json)",
    )
    return f"capture ok: overhead sync={sync} async={asyn}"


def check_server(root: pathlib.Path) -> str:
    s = load(root, "BENCH_server.json")
    w = s.get("workload", {})
    require(
        w.get("shards", 0) >= 2 and w.get("clients", 0) >= 2,
        "BENCH_server.json: the daemon bench must exercise multiple shards "
        "and concurrent clients (recorded workload is degenerate)",
    )
    chunk = w.get("lookup_chunk", 0)
    require(
        1 < chunk < w.get("queries", 0),
        f"BENCH_server.json: lookup_chunk={chunk} must be a real batch size "
        "(>1 and smaller than the total query count), or the batched/single "
        "comparison is vacuous",
    )
    # Adaptive CellSet containers removed the cache-blowup that used to cap
    # the batch at 32; the recorded run must keep exercising big batches.
    require(
        chunk >= 128,
        f"BENCH_server.json: lookup_chunk={chunk} < 128 — the adaptive "
        "container work unlocked large lookup batches; refresh the snapshot "
        "with the default chunk (or larger), not a hand-lowered one",
    )
    mix = w.get("container_mix", {})
    require(
        isinstance(mix, dict)
        and set(mix) == {"sparse", "runs", "dense"}
        and all(isinstance(v, int) and v >= 0 for v in mix.values())
        and sum(mix.values()) > 0,
        "BENCH_server.json: workload.container_mix must record how many "
        "sparse/runs/dense containers the batched answers used (and at "
        "least one answer must be non-empty)",
    )
    speedup = s["batched_lookup_min_speedup"]
    require(
        speedup >= 1.0,
        f"batched daemon lookups regressed: batched_lookup_min_speedup={speedup} "
        "< 1.0 (chunk-batched lookups must amortise framing and the shard "
        "rendezvous; re-run `cargo bench -p subzero-bench --bench server` and "
        "fix the wire path before refreshing BENCH_server.json)",
    )
    stages = {row.get("stage") for row in s.get("results", [])}
    require(
        {"ingest", "lookup_single", "lookup_batched"} <= stages,
        f"BENCH_server.json: results must record ingest and both lookup "
        f"modes, got {sorted(stages)}",
    )
    # Absolute throughput floor for chunk-batched lookups: the flat-bitmap
    # seed measured 88,547 q/s at lookup_chunk=32; batching four times as
    # many queries per request on adaptive containers must never fall back
    # below that.
    batched_qps = next(
        (
            row.get("queries_per_sec", 0.0)
            for row in s.get("results", [])
            if row.get("stage") == "lookup_batched"
        ),
        0.0,
    )
    require(
        batched_qps >= 90_000.0,
        f"batched daemon lookups regressed: {batched_qps} q/s < 90,000 floor "
        "(the chunk-32 flat-bitmap seed measured 88,547 q/s; large batches "
        "over adaptive containers must stay strictly ahead of it)",
    )
    return (
        f"server ok: batched_lookup_min_speedup={speedup}, "
        f"batched {batched_qps:.0f} q/s at lookup_chunk={chunk}"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root holding the BENCH_*.json snapshots",
    )
    args = parser.parse_args()
    checks = (check_schema, check_ingest, check_query, check_capture, check_server)
    failures = []
    for check in checks:
        try:
            print(check(args.root))
        except GuardError as err:
            failures.append(str(err))
            print(f"FAIL: {err}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} benchmark guard(s) failed", file=sys.stderr)
        return 1
    print("all benchmark snapshots within their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
