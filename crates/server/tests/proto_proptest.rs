//! Property-based coverage of the wire-protocol frame codec: arbitrary
//! messages round-trip exactly; truncated or length-corrupted frames are
//! rejected with an error — never a panic, never an unbounded allocation
//! (the length prefix is validated against [`MAX_FRAME_BYTES`] before any
//! buffer is reserved, and every element count inside a payload is checked
//! against the bytes actually remaining).

use std::io::Cursor;

use proptest::prelude::*;
use subzero::model::{Direction, StorageStrategy};
use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    LookupStep, OpSpec, ProtocolError, Request, Response, ServerStats, WireOutcome,
    MAX_FRAME_BYTES,
};

/// Every wire-encodable storage strategy.
fn strategy_pool() -> Vec<StorageStrategy> {
    vec![
        StorageStrategy::blackbox(),
        StorageStrategy::mapping(),
        StorageStrategy::full_one(),
        StorageStrategy::full_many(),
        StorageStrategy::full_one_forward(),
        StorageStrategy::full_many_forward(),
        StorageStrategy::pay_one(),
        StorageStrategy::pay_many(),
        StorageStrategy::composite_one(),
        StorageStrategy::composite_many(),
    ]
}

fn shape_of(rows: u32, cols: u32) -> Shape {
    Shape::d2(rows.clamp(1, 48), cols.clamp(1, 48))
}

fn cellset_of(rows: u32, cols: u32, picks: &[u32]) -> CellSet {
    let shape = shape_of(rows, cols);
    let n = shape.num_cells() as u32;
    CellSet::from_coords(
        shape,
        picks.iter().map(|&i| shape.unravel((i % n) as usize)),
    )
}

fn coords_of(picks: &[u32]) -> Vec<Coord> {
    picks
        .iter()
        .map(|&i| Coord::d2((i >> 8) & 63, i & 63))
        .collect()
}

/// Builds one of every request kind from generated primitives.
fn request_of(
    kind: usize,
    session: u64,
    op_id: u32,
    rows: u32,
    cols: u32,
    picks: &[u32],
    strat_picks: &[usize],
) -> Request {
    let pool = strategy_pool();
    let strategies: Vec<StorageStrategy> =
        strat_picks.iter().map(|&i| pool[i % pool.len()]).collect();
    match kind % 7 {
        0 => Request::OpenSession {
            name: format!("sess-{session}"),
            ops: vec![OpSpec {
                op_id,
                input_shapes: vec![shape_of(rows, cols), shape_of(cols, rows)],
                output_shape: shape_of(rows, cols),
                strategies: if strategies.is_empty() {
                    vec![StorageStrategy::full_one()]
                } else {
                    strategies
                },
            }],
        },
        1 => Request::CloseSession { session },
        2 => Request::StoreBatch {
            session,
            op_id,
            pairs: vec![
                RegionPair::Full {
                    outcells: coords_of(picks),
                    incells: vec![coords_of(picks), Vec::new()],
                },
                RegionPair::Payload {
                    outcells: coords_of(picks),
                    payload: picks.iter().map(|&p| p as u8).collect(),
                },
            ],
        },
        3 => Request::Lookup {
            session,
            steps: vec![LookupStep {
                op_id,
                direction: if session.is_multiple_of(2) {
                    Direction::Backward
                } else {
                    Direction::Forward
                },
                input_idx: op_id % 4,
                queries: vec![cellset_of(rows, cols, picks), cellset_of(rows, cols, &[])],
            }],
        },
        4 => Request::FinishSession { session },
        5 => Request::Stats,
        _ => Request::Shutdown,
    }
}

/// Builds one of every response kind from generated primitives.
fn response_of(kind: usize, n: u64, rows: u32, cols: u32, picks: &[u32]) -> Response {
    match kind % 8 {
        0 => Response::SessionOpened { session: n },
        1 => Response::SessionClosed,
        2 => Response::BatchStored {
            accepted: n.is_multiple_of(2),
            shed_total: n,
        },
        3 => Response::LookupDone {
            steps: vec![vec![WireOutcome {
                result: cellset_of(rows, cols, picks),
                covered: cellset_of(rows, cols, &picks[..picks.len() / 2]),
                entries_fetched: n,
                scanned: n.is_multiple_of(3),
            }]],
        },
        4 => Response::SessionFinished { shed_total: n },
        5 => Response::Stats(ServerStats {
            sessions: n,
            shards: n % 7,
            store_batches: n / 2,
            lookup_steps: n / 3,
            shed_batches: n % 5,
            commits: n / 4,
            evicted_sessions: n % 3,
        }),
        6 => Response::ShuttingDown,
        _ => Response::Error {
            message: format!("err-{n}"),
        },
    }
}

proptest! {
    #[test]
    fn requests_roundtrip_through_frames(
        (kind, session, op_id) in (0usize..7, any::<u64>(), any::<u32>()),
        (rows, cols) in (1u32..48, 1u32..48),
        picks in prop::collection::vec(any::<u32>(), 0..48),
        strat_picks in prop::collection::vec(0usize..10, 0..4),
    ) {
        let req = request_of(kind, session, op_id, rows, cols, &picks, &strat_picks);
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req)).unwrap();
        let mut cursor = Cursor::new(wire);
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(decode_request(&payload).unwrap(), req);
        // The stream is exactly one frame long.
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn responses_roundtrip_through_frames(
        (kind, n) in (0usize..8, any::<u64>()),
        (rows, cols) in (1u32..48, 1u32..48),
        picks in prop::collection::vec(any::<u32>(), 0..48),
    ) {
        let resp = response_of(kind, n, rows, cols, &picks);
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_response(&resp)).unwrap();
        let payload = read_frame(&mut Cursor::new(wire)).unwrap().expect("one frame");
        prop_assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        kind in 0usize..7,
        session in any::<u64>(),
        picks in prop::collection::vec(any::<u32>(), 0..16),
        cut in any::<usize>(),
    ) {
        let req = request_of(kind, session, 9, 8, 8, &picks, &[2]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req)).unwrap();
        let cut = cut % wire.len();
        let result = read_frame(&mut Cursor::new(&wire[..cut]));
        if cut == 0 {
            // A clean EOF at a frame boundary is not an error.
            prop_assert!(matches!(result, Ok(None)));
        } else {
            // EOF inside the prefix or the payload is a torn frame.
            prop_assert!(result.is_err(), "cut at {cut} of {}", wire.len());
        }
    }

    #[test]
    fn corrupt_length_prefixes_are_rejected_before_allocating(
        kind in 0usize..7,
        session in any::<u64>(),
        picks in prop::collection::vec(any::<u32>(), 0..16),
        fake_len in any::<u32>(),
    ) {
        let req = request_of(kind, session, 9, 8, 8, &picks, &[2]);
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_request(&req)).unwrap();
        wire[..4].copy_from_slice(&fake_len.to_le_bytes());
        match read_frame(&mut Cursor::new(&wire)) {
            Err(ProtocolError::FrameTooLarge(n)) => {
                // The oversized length was refused before any buffer grew.
                prop_assert!(n > MAX_FRAME_BYTES);
            }
            Err(_) => {} // short payload: torn-frame error
            Ok(None) => prop_assert!(fake_len == 0 && wire.len() == 4),
            Ok(Some(payload)) => {
                // A shorter-than-real length can still frame-decode; the
                // payload decoder must then reject or re-interpret it
                // without panicking either way.
                prop_assert!(payload.len() as u32 == fake_len);
                let _ = decode_request(&payload);
            }
        }
    }

    #[test]
    fn every_cellset_density_roundtrips_bit_exact(
        (rows, cols) in (1u32..400, 1u32..400),
        (flavour, stride) in (0usize..5, 2u32..7),
        picks in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        // Exercises each wire encoding the frame writer can pick — sparse
        // deltas, run-length, and raw dense words — by shaping the answer's
        // density, then demands semantic equality after a round trip.
        let shape = Shape::d2(rows, cols);
        let n = shape.num_cells();
        let mut cs = CellSet::empty(shape);
        match flavour {
            0 => {} // empty
            1 => {
                // scattered sparse
                for &p in &picks {
                    cs.insert_linear(p as usize % n);
                }
            }
            2 => {
                // long runs
                for &p in &picks {
                    let start = p as usize % n;
                    cs.insert_span(start, (97usize).min(n - start));
                }
            }
            3 => {
                // strided: dense in cells, worst case for run encoding
                let mut i = 0usize;
                while i < n {
                    cs.insert_linear(i);
                    i += stride as usize;
                }
            }
            _ => cs.set_all(),
        }
        let resp = Response::LookupDone {
            steps: vec![vec![WireOutcome {
                result: cs.clone(),
                covered: cs,
                entries_fetched: 1,
                scanned: false,
            }]],
        };
        let decoded = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn mutated_cellset_frames_never_panic(
        (rows, cols) in (1u32..64, 1u32..64),
        picks in prop::collection::vec(any::<u32>(), 0..48),
        mutations in prop::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        // Corrupt real encoded lookup traffic byte-by-byte: the decoder may
        // reject or misread, but must never panic or over-allocate.
        let req = Request::Lookup {
            session: 7,
            steps: vec![LookupStep {
                op_id: 3,
                direction: Direction::Backward,
                input_idx: 0,
                queries: vec![cellset_of(rows, cols, &picks)],
            }],
        };
        let mut bytes = encode_request(&req);
        let resp = response_of(3, 5, rows, cols, &picks);
        let mut resp_bytes = encode_response(&resp);
        for &(pos, val) in &mutations {
            let i = pos % bytes.len();
            bytes[i] = val;
            let j = pos % resp_bytes.len();
            resp_bytes[j] = val;
        }
        let _ = decode_request(&bytes);
        let _ = decode_response(&resp_bytes);
    }

    #[test]
    fn arbitrary_payload_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        // And through the framing layer too.
        let mut wire = Vec::new();
        write_frame(&mut wire, &bytes).unwrap();
        let payload = read_frame(&mut Cursor::new(wire)).unwrap().expect("frame");
        prop_assert_eq!(payload, bytes);
    }
}
