//! End-to-end daemon tests: remote/local query parity, admission-control
//! saturation, and cross-client fairness.
//!
//! The parity test is the acceptance bar of the server subsystem: N
//! concurrent UDS clients querying a daemon that ingested the exact region
//! pairs the engine emits must answer byte-identically to an in-process
//! [`QuerySession`] over the same workload.  The in-process reference runs
//! with both query-time optimizations disabled so every step answers from
//! the stored lineage — the only path the daemon implements.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use subzero::capture::OverflowPolicy;
use subzero::model::{Direction, LineageStrategy, StorageStrategy};
use subzero::query::{QueryOptions, QuerySession};
use subzero::runtime::Runtime;
use subzero_array::{Array, ArrayRef, CellSet, Coord, Shape};
use subzero_engine::lineage::{BufferSink, RegionPair};
use subzero_engine::ops::{BinaryKind, Convolve, Elementwise1, Elementwise2, UnaryKind};
use subzero_engine::paths::ArrayNode;
use subzero_engine::workflow::{InputSource, OpId, Workflow};
use subzero_engine::{Engine, LineageMode, OpMeta};
use subzero_server::{
    Client, ClientError, LookupStep, OpSpec, RemoteSession, Server, ServerConfig,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subzero-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The capture-parity pipeline: scale -> blur -> mean(scale, blur).
fn workflow() -> Arc<Workflow> {
    let mut b = Workflow::builder("server-parity");
    let scale = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(1.5))), "img");
    let blur = b.add_unary(Arc::new(Convolve::box_blur(1)), scale);
    let _mean = b.add_binary(Arc::new(Elementwise2::new(BinaryKind::Mean)), scale, blur);
    Arc::new(b.build().unwrap())
}

fn externals(rows: u32, cols: u32) -> HashMap<String, Array> {
    let shape = Shape::d2(rows, cols);
    let mut img = Array::zeros(shape);
    for r in 0..rows {
        for c in 0..cols {
            img.set(&Coord::d2(r, c), ((r * cols + c) % 17) as f64 - 3.0);
        }
    }
    let mut m = HashMap::new();
    m.insert("img".to_string(), img);
    m
}

/// A direction-diverse strategy assignment: one op serves backward only, one
/// serves both directions, one stores many-granularity pairs.
fn strategies_for(op: OpId) -> Vec<StorageStrategy> {
    match op {
        0 => vec![StorageStrategy::full_one()],
        1 => vec![
            StorageStrategy::full_one(),
            StorageStrategy::full_one_forward(),
        ],
        _ => vec![StorageStrategy::full_many()],
    }
}

/// Runs every operator by hand with a buffering sink, returning per-operator
/// `(input_shapes, output_shape, emitted_pairs)` — the identical emission
/// stream the engine hands its lineage collector during `execute` (the
/// operators are deterministic and their lineage is purely structural).
fn emitted_pairs(
    wf: &Workflow,
    externals: &HashMap<String, Array>,
) -> Vec<(OpId, Vec<Shape>, Shape, Vec<RegionPair>)> {
    let mut outputs: HashMap<OpId, ArrayRef> = HashMap::new();
    let mut result = Vec::new();
    for node in wf.nodes() {
        let inputs: Vec<ArrayRef> = node
            .inputs
            .iter()
            .map(|src| match src {
                InputSource::External(name) => Arc::new(externals[name].clone()),
                InputSource::Operator(op) => Arc::clone(&outputs[op]),
            })
            .collect();
        let input_shapes: Vec<Shape> = inputs.iter().map(|a| a.shape()).collect();
        let mut sink = BufferSink::new();
        let out = node.operator.run(&inputs, &[LineageMode::Full], &mut sink);
        let out_shape = out.shape();
        outputs.insert(node.id, Arc::new(out));
        result.push((node.id, input_shapes, out_shape, sink.pairs));
    }
    result
}

/// In-process reference answers over the same workload, all steps served
/// from stored lineage (both query-time optimizations disabled).
fn local_reference(
    rows: u32,
    cols: u32,
    back_batches: &[Vec<Coord>],
    fwd_batches: &[Vec<Coord>],
) -> (Vec<CellSet>, Vec<CellSet>, Vec<CellSet>) {
    let wf = workflow();
    let mut rt = Runtime::in_memory();
    let mut strategy = LineageStrategy::new();
    for op in 0..3u32 {
        strategy.set(op, strategies_for(op));
    }
    rt.set_strategy(strategy);
    let mut engine = Engine::new();
    let run = engine
        .execute(&wf, &externals(rows, cols), &mut rt)
        .expect("parity workload executes");
    rt.flush_capture().expect("flush capture");
    let mut session = QuerySession::new(&engine, &mut rt, &run).with_options(QueryOptions {
        entire_array_optimization: false,
        query_time_optimizer: false,
    });
    let to_img: Vec<CellSet> = session
        .backward_many(back_batches.to_vec())
        .from(2)
        .to_source("img")
        .expect("backward to source")
        .into_iter()
        .map(|r| r.cells)
        .collect();
    let to_scale: Vec<CellSet> = session
        .backward_many(back_batches.to_vec())
        .from(2)
        .to(0)
        .expect("backward to op 0")
        .into_iter()
        .map(|r| r.cells)
        .collect();
    let fwd: Vec<CellSet> = session
        .forward_many(fwd_batches.to_vec())
        .from_source("img")
        .to(2)
        .expect("forward to op 2")
        .into_iter()
        .map(|r| r.cells)
        .collect();
    (to_img, to_scale, fwd)
}

#[test]
fn concurrent_remote_clients_match_in_process_query_session() {
    let (rows, cols) = (7, 6);
    let back_batches: Vec<Vec<Coord>> = vec![
        vec![Coord::d2(3, 3)],
        vec![Coord::d2(0, 0), Coord::d2(6, 5)],
        vec![],
        vec![Coord::d2(2, 4), Coord::d2(4, 2), Coord::d2(5, 5)],
    ];
    let fwd_batches: Vec<Vec<Coord>> = vec![
        vec![Coord::d2(0, 1)],
        vec![Coord::d2(5, 5), Coord::d2(1, 2)],
        vec![],
    ];
    let (ref_img, ref_scale, ref_fwd) = local_reference(rows, cols, &back_batches, &fwd_batches);
    // The reference actually resolves to something (the workload is real).
    assert!(ref_img.iter().any(|cs| !cs.is_empty()));
    assert!(ref_fwd.iter().any(|cs| !cs.is_empty()));

    let wf = workflow();
    let per_op = emitted_pairs(&wf, &externals(rows, cols));
    let specs: Vec<OpSpec> = per_op
        .iter()
        .map(|(op, ins, out, _)| OpSpec {
            op_id: *op,
            input_shapes: ins.clone(),
            output_shape: *out,
            strategies: strategies_for(*op),
        })
        .collect();
    let shapes: Vec<(OpId, Vec<Shape>, Shape)> = per_op
        .iter()
        .map(|(op, ins, out, _)| (*op, ins.clone(), *out))
        .collect();

    let dir = temp_dir("parity");
    let socket = dir.join("daemon.sock");
    let server = Server::start(
        &socket,
        ServerConfig {
            data_dir: Some(dir.join("data")),
            shards: 3,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    // One client ingests the engine's emission stream, in odd-sized chunks
    // (datastore contents are batch-boundary invariant), then finishes.
    {
        let mut client = Client::connect(&socket).expect("connect");
        let session = client
            .open_session("parity", specs.clone())
            .expect("open session");
        for (op, _, _, pairs) in &per_op {
            for chunk in pairs.chunks(3) {
                let ack = client
                    .store_batch(session, *op, chunk.to_vec())
                    .expect("store batch");
                assert!(ack.accepted, "Block admission never sheds");
            }
        }
        assert_eq!(client.finish_session(session).expect("finish"), 0);
    }

    // N concurrent clients reattach and query; every one must see the
    // in-process answers, byte for byte.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            let wf = Arc::clone(&wf);
            let specs = specs.clone();
            let shapes = shapes.clone();
            let back_batches = back_batches.clone();
            let fwd_batches = fwd_batches.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("connect");
                let session = client.open_session("parity", specs).expect("reattach");
                let metas: Vec<(OpId, OpMeta)> = shapes
                    .iter()
                    .map(|(op, ins, out)| (*op, OpMeta::new(ins.clone(), *out)))
                    .collect();
                let mut remote = RemoteSession::new(&mut client, session, &wf, metas);
                let img = remote
                    .backward_many(2, &ArrayNode::External("img".into()), &back_batches)
                    .expect("remote backward to source");
                let scale = remote
                    .backward_many(2, &ArrayNode::Output(0), &back_batches)
                    .expect("remote backward to op 0");
                let fwd = remote
                    .forward_many(&ArrayNode::External("img".into()), 2, &fwd_batches)
                    .expect("remote forward");
                (img, scale, fwd)
            })
        })
        .collect();
    for h in handles {
        let (img, scale, fwd) = h.join().expect("query thread");
        assert_eq!(img, ref_img, "backward-to-source parity");
        assert_eq!(scale, ref_scale, "backward-to-operator parity");
        assert_eq!(fwd, ref_fwd, "forward parity");
    }

    server.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One single-pair ingest batch whose output cell encodes its index, so a
/// later lookup can tell exactly which batches landed.
fn indexed_pair(i: u32, cols: u32) -> RegionPair {
    RegionPair::Full {
        outcells: vec![Coord::d2(0, i)],
        incells: vec![vec![Coord::d2(0, cols - 1 - i)]],
    }
}

#[test]
fn saturation_honors_policy_and_loses_no_committed_lineage() {
    let cols = 64u32;
    let shape = Shape::d2(1, cols);
    for (policy, expect_shed) in [
        (OverflowPolicy::DropNewest, true),
        (OverflowPolicy::Block, false),
    ] {
        let dir = temp_dir(if expect_shed { "sat-drop" } else { "sat-block" });
        let socket = dir.join("daemon.sock");
        let server = Server::start(
            &socket,
            ServerConfig {
                data_dir: None,
                shards: 1,
                queue_depth: 2,
                ingest_policy: policy,
                store_stall: Duration::from_millis(4),
                session_ttl: None,
            },
        )
        .expect("server starts");
        let mut client = Client::connect(&socket).expect("connect");
        let spec = OpSpec {
            op_id: 0,
            input_shapes: vec![shape],
            output_shape: shape,
            strategies: vec![StorageStrategy::full_one()],
        };
        let session = client.open_session("sat", vec![spec]).expect("open");

        let mut accepted = Vec::new();
        let mut shed = 0u64;
        for i in 0..cols {
            let ack = client
                .store_batch(session, 0, vec![indexed_pair(i, cols)])
                .expect("store batch");
            if ack.accepted {
                accepted.push(i);
            } else {
                shed += 1;
            }
            // The running shed count in every ack matches what we observed.
            assert_eq!(ack.shed_total, shed);
        }
        assert_eq!(client.finish_session(session).expect("finish"), shed);
        if expect_shed {
            assert!(shed > 0, "DropNewest under a 4ms stall must shed");
            assert!(!accepted.is_empty(), "the first admitted batches land");
        } else {
            assert_eq!(shed, 0, "Block admission never sheds");
            assert_eq!(accepted.len() as u32, cols);
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.shed_batches, shed);
        assert_eq!(stats.store_batches, accepted.len() as u64);

        // Every accepted batch is queryable; every shed batch is absent —
        // admitted lineage is never lost, shed lineage is never invented.
        for i in 0..cols {
            let step = LookupStep {
                op_id: 0,
                direction: Direction::Backward,
                input_idx: 0,
                queries: vec![CellSet::from_coords(shape, [Coord::d2(0, i)])],
            };
            let out = client.lookup(session, vec![step]).expect("lookup");
            let got = out[0][0].result.to_coords();
            if accepted.contains(&i) {
                assert_eq!(got, vec![Coord::d2(0, cols - 1 - i)]);
            } else {
                assert!(got.is_empty(), "shed batch {i} must not be stored");
            }
        }
        drop(client);
        server.shutdown_and_wait();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn failed_open_rolls_back_and_unregistered_ops_are_rejected() {
    let cols = 4u32;
    let shape = Shape::d2(1, cols);
    let dir = temp_dir("rollback");
    let socket = dir.join("daemon.sock");
    let server = Server::start(
        &socket,
        ServerConfig {
            data_dir: None,
            shards: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let good = OpSpec {
        op_id: 0,
        input_shapes: vec![shape],
        output_shape: shape,
        strategies: vec![StorageStrategy::full_one()],
    };
    // Mapping-mode storage is rejected at shard-side open (payload and
    // composite lookups cannot travel over the wire), which makes this the
    // partial-failure case: op 0 opens, op 1 fails.
    let bad = OpSpec {
        op_id: 1,
        input_shapes: vec![shape],
        output_shape: shape,
        strategies: vec![StorageStrategy::mapping()],
    };
    let mut client = Client::connect(&socket).expect("connect");

    // A partially failing open reports the failure...
    let err = client
        .open_session("roll", vec![good.clone(), bad.clone()])
        .expect_err("mixed open must fail");
    assert!(matches!(err, ClientError::Server(_)), "{err}");
    // ...and leaves no half-open session behind: the id the failed open
    // would have used (the daemon's first, 0) is not live, so ingest to
    // the op that *did* open is refused instead of acked-and-dropped.
    let err = client
        .store_batch(0, 0, vec![indexed_pair(0, cols)])
        .expect_err("store to rolled-back session must fail");
    assert!(format!("{err}").contains("unknown session"), "{err}");

    // The name is reusable immediately.
    let session = client
        .open_session("roll", vec![good.clone()])
        .expect("clean reopen");
    assert!(
        client
            .store_batch(session, 0, vec![indexed_pair(0, cols)])
            .expect("store to registered op")
            .accepted
    );
    // Ingest to an operator the session never registered is an error, not
    // a silent drop at the owning shard.
    let err = client
        .store_batch(session, 9, vec![indexed_pair(1, cols)])
        .expect_err("store to unregistered op must fail");
    assert!(format!("{err}").contains("not registered"), "{err}");

    // A failed *reattach* leaves the existing session fully usable.
    let err = client
        .open_session("roll", vec![good, bad])
        .expect_err("reattach with a bad op must fail");
    assert!(matches!(err, ClientError::Server(_)), "{err}");
    assert!(
        client
            .store_batch(session, 0, vec![indexed_pair(1, cols)])
            .expect("store after failed reattach")
            .accepted
    );
    assert_eq!(client.finish_session(session).expect("finish"), 0);
    let step = LookupStep {
        op_id: 0,
        direction: Direction::Backward,
        input_idx: 0,
        queries: vec![CellSet::from_coords(shape, [Coord::d2(0, 0)])],
    };
    let out = client.lookup(session, vec![step]).expect("lookup");
    assert_eq!(out[0][0].result.to_coords(), vec![Coord::d2(0, cols - 1)]);

    drop(client);
    server.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interactive_lookup_is_not_starved_by_bulk_ingest() {
    let cols = 64u32;
    let shape = Shape::d2(1, cols);
    let stall = Duration::from_millis(10);
    let backlog = 60u32;
    let dir = temp_dir("fairness");
    let socket = dir.join("daemon.sock");
    let server = Server::start(
        &socket,
        ServerConfig {
            data_dir: None,
            shards: 1,
            queue_depth: backlog as usize + 4,
            ingest_policy: OverflowPolicy::Block,
            store_stall: stall,
            session_ttl: None,
        },
    )
    .expect("server starts");
    let spec = OpSpec {
        op_id: 0,
        input_shapes: vec![shape],
        output_shape: shape,
        strategies: vec![StorageStrategy::full_one()],
    };
    let mut bulk = Client::connect(&socket).expect("bulk connect");
    let session = bulk.open_session("fair", vec![spec.clone()]).expect("open");
    let mut interactive = Client::connect(&socket).expect("interactive connect");
    assert_eq!(
        interactive
            .open_session("fair", vec![spec])
            .expect("reattach"),
        session
    );

    // Flood the bulk lane with ~600ms of worker time, then park the bulk
    // client on the durability barrier behind it.
    for i in 0..backlog {
        let ack = bulk
            .store_batch(session, 0, vec![indexed_pair(i % cols, cols)])
            .expect("bulk store");
        assert!(ack.accepted);
    }
    let bulk_done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&bulk_done);
    let bulk_thread = std::thread::spawn(move || {
        bulk.finish_session(session).expect("bulk finish");
        done_flag.store(true, Ordering::SeqCst);
    });

    // The interactive lookup rides its own lane; the round-robin sweep must
    // serve it after at most a couple of bulk jobs, not after the backlog.
    let start = Instant::now();
    let step = LookupStep {
        op_id: 0,
        direction: Direction::Backward,
        input_idx: 0,
        queries: vec![CellSet::from_coords(shape, [Coord::d2(0, 0)])],
    };
    interactive.lookup(session, vec![step]).expect("lookup");
    let latency = start.elapsed();
    assert!(
        !bulk_done.load(Ordering::SeqCst),
        "bulk backlog drained before the interactive lookup returned — \
         the test lost its contention window"
    );
    // ~600ms of queued bulk work; a starved lookup would wait for all of it.
    // The round-robin bound is ~2 jobs (one in flight + one bulk turn); 250ms
    // keeps a wide margin over that without ever passing under starvation.
    assert!(
        latency < Duration::from_millis(250),
        "interactive lookup took {latency:?} behind a {backlog}-batch bulk backlog"
    );
    bulk_thread.join().expect("bulk thread");
    drop(interactive);
    server.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
