//! Crash-restart robustness: SIGKILL the daemon binary mid-ingest (no
//! `FinishSession`, so no sidecar persist), restart it over the same data
//! directory and socket path, and the recovered stores must serve queries
//! byte-identical to a clean run of the same workload.
//!
//! Determinism relies on two store-layer guarantees: applied batches are
//! group-flushed to the log before the call returns, and lane FIFO means a
//! lookup acknowledged after an ingest batch proves that batch was applied.
//! The test therefore barriers with one lookup per operator before killing,
//! so the recovered content is exactly the sent content.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use subzero::model::{Direction, StorageStrategy};
use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_server::{Client, LookupStep, OpSpec, Server, ServerConfig, WireOutcome};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subzero-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_daemon(socket: &Path, data_dir: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_subzero-serverd"))
        .args([
            "--socket",
            socket.to_str().unwrap(),
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--shards",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn subzero-serverd")
}

fn connect_with_retry(socket: &Path) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(socket) {
            Ok(c) => return c,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("daemon never came up on {}: {e}", socket.display()),
        }
    }
}

fn shape() -> Shape {
    Shape::d2(8, 8)
}

fn specs() -> Vec<OpSpec> {
    vec![
        OpSpec {
            op_id: 0,
            input_shapes: vec![shape()],
            output_shape: shape(),
            strategies: vec![StorageStrategy::full_one()],
        },
        OpSpec {
            op_id: 1,
            input_shapes: vec![shape()],
            output_shape: shape(),
            strategies: vec![
                StorageStrategy::full_one(),
                StorageStrategy::full_one_forward(),
            ],
        },
        OpSpec {
            op_id: 2,
            input_shapes: vec![shape(), shape()],
            output_shape: shape(),
            strategies: vec![StorageStrategy::full_many()],
        },
    ]
}

/// A deterministic synthetic workload: per op, a distinct structural pattern.
fn pairs_for(op: u32) -> Vec<RegionPair> {
    let mut pairs = Vec::new();
    for r in 0..8u32 {
        for c in 0..8u32 {
            let pair = match op {
                0 => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(c, r)]],
                },
                1 => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(r, c), Coord::d2(r, (c + 1) % 8)]],
                },
                _ => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(r, c)], vec![Coord::d2(7 - r, 7 - c)]],
                },
            };
            pairs.push(pair);
        }
    }
    pairs
}

/// Ingests the workload, then barriers with one lookup per operator so every
/// sent batch is provably applied (lane FIFO) and group-flushed to the log.
fn ingest(client: &mut Client, session: u64) {
    for op in 0..3u32 {
        for chunk in pairs_for(op).chunks(7) {
            let ack = client
                .store_batch(session, op, chunk.to_vec())
                .expect("store batch");
            assert!(ack.accepted);
        }
    }
    for op in 0..3u32 {
        let step = LookupStep {
            op_id: op,
            direction: Direction::Backward,
            input_idx: 0,
            queries: vec![CellSet::from_coords(shape(), [Coord::d2(0, 0)])],
        };
        client.lookup(session, vec![step]).expect("ingest barrier");
    }
}

/// The probe suite whose answers must be byte-identical across daemons.
fn probe(client: &mut Client, session: u64) -> Vec<Vec<Vec<WireOutcome>>> {
    let queries = || {
        vec![
            CellSet::from_coords(shape(), [Coord::d2(3, 3)]),
            CellSet::from_coords(shape(), [Coord::d2(0, 7), Coord::d2(7, 0)]),
            CellSet::from_coords(shape(), (0..8).map(|i| Coord::d2(i, i))),
        ]
    };
    let mut all = Vec::new();
    for op in 0..3u32 {
        let inputs = if op == 2 { 2 } else { 1 };
        for input_idx in 0..inputs {
            for direction in [Direction::Backward, Direction::Forward] {
                let step = LookupStep {
                    op_id: op,
                    direction,
                    input_idx,
                    queries: queries(),
                };
                all.push(client.lookup(session, vec![step]).expect("probe lookup"));
            }
        }
    }
    all
}

#[test]
fn sigkilled_daemon_recovers_byte_identical_to_a_clean_run() {
    // Clean reference: ingest, finish, probe against an in-process server.
    let clean_dir = temp_dir("clean");
    let reference = {
        let socket = clean_dir.join("daemon.sock");
        let server = Server::start(
            &socket,
            ServerConfig {
                data_dir: Some(clean_dir.join("data")),
                shards: 2,
                ..ServerConfig::default()
            },
        )
        .expect("reference server starts");
        let mut client = Client::connect(&socket).expect("connect");
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session);
        client.finish_session(session).expect("finish");
        let answers = probe(&mut client, session);
        drop(client);
        server.shutdown_and_wait();
        answers
    };

    // Crash run: same workload through the real binary, SIGKILLed mid-ingest
    // (no FinishSession — the sidecar indexes were never persisted).
    let dir = temp_dir("crash");
    let socket = dir.join("daemon.sock");
    let data_dir = dir.join("data");
    let mut child = spawn_daemon(&socket, &data_dir);
    {
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session);
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Restart over the same directories (and the same, now-stale, socket
    // file); the stores rebuild from their logs on reopen.
    let mut child = spawn_daemon(&socket, &data_dir);
    let mut client = connect_with_retry(&socket);
    let session = client.open_session("restart", specs()).expect("reopen");
    client
        .finish_session(session)
        .expect("finish after recovery");
    let recovered = probe(&mut client, session);
    assert_eq!(
        recovered, reference,
        "recovered answers diverge from the clean run"
    );
    client.shutdown_server().expect("graceful shutdown");
    drop(client);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
