//! Crash-restart robustness for the transactional commit path.
//!
//! Since runs became transactional, a SIGKILL rolls the store back to the
//! last *committed* run: `FinishSession` is the commit, and anything
//! ingested after it is discarded on recovery.  These tests SIGKILL the
//! real daemon binary — both at arbitrary moments and at every registered
//! crash point in the two-phase commit ([`failpoint::CRASH_POINTS`]) —
//! restart it over the same data directory, and assert the recovered
//! stores answer byte-identical to a clean run of the committed prefix of
//! the workload, down to the `.kv` file bytes where the write sequence is
//! deterministic.
//!
//! The crash-point tests arm `SUBZERO_FAILPOINT` in the daemon's
//! environment; the coordinator (and, for the torn decision write, the WAL
//! append itself) calls `std::process::abort()` at the armed point, which
//! is as merciless as a SIGKILL: no unwinding, no flushes, no harvest.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use subzero::model::{Direction, StorageStrategy};
use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_server::{Client, LookupStep, OpSpec, Server, ServerConfig, WireOutcome};
use subzero_store::failpoint;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subzero-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_daemon(socket: &Path, data_dir: &Path, armed: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_subzero-serverd"));
    cmd.args([
        "--socket",
        socket.to_str().unwrap(),
        "--data-dir",
        data_dir.to_str().unwrap(),
        "--shards",
        "2",
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    match armed {
        Some(point) => cmd.env(failpoint::ENV, point),
        None => cmd.env_remove(failpoint::ENV),
    };
    cmd.spawn().expect("spawn subzero-serverd")
}

fn connect_with_retry(socket: &Path) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(socket) {
            Ok(c) => return c,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("daemon never came up on {}: {e}", socket.display()),
        }
    }
}

fn shape() -> Shape {
    Shape::d2(8, 8)
}

fn specs() -> Vec<OpSpec> {
    vec![
        OpSpec {
            op_id: 0,
            input_shapes: vec![shape()],
            output_shape: shape(),
            strategies: vec![StorageStrategy::full_one()],
        },
        OpSpec {
            op_id: 1,
            input_shapes: vec![shape()],
            output_shape: shape(),
            strategies: vec![
                StorageStrategy::full_one(),
                StorageStrategy::full_one_forward(),
            ],
        },
        OpSpec {
            op_id: 2,
            input_shapes: vec![shape(), shape()],
            output_shape: shape(),
            strategies: vec![StorageStrategy::full_many()],
        },
    ]
}

/// A deterministic synthetic workload: per op, a distinct structural
/// pattern; `round` shifts the mapping so successive runs write different
/// lineage for the same output cells.
fn pairs_for(op: u32, round: u32) -> Vec<RegionPair> {
    let mut pairs = Vec::new();
    for r in 0..8u32 {
        for c in 0..8u32 {
            let s = (c + round) % 8;
            let pair = match op {
                0 => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(s, r)]],
                },
                1 => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(r, c), Coord::d2(r, (s + 1) % 8)]],
                },
                _ => RegionPair::Full {
                    outcells: vec![Coord::d2(r, c)],
                    incells: vec![vec![Coord::d2(r, s)], vec![Coord::d2(7 - r, 7 - s)]],
                },
            };
            pairs.push(pair);
        }
    }
    pairs
}

/// Ingests one round of the workload, then barriers with one lookup per
/// operator so every sent batch is provably applied (lane FIFO) and
/// group-flushed to the log.
fn ingest(client: &mut Client, session: u64, round: u32) {
    for op in 0..3u32 {
        for chunk in pairs_for(op, round).chunks(7) {
            let ack = client
                .store_batch(session, op, chunk.to_vec())
                .expect("store batch");
            assert!(ack.accepted);
        }
    }
    for op in 0..3u32 {
        let step = LookupStep {
            op_id: op,
            direction: Direction::Backward,
            input_idx: 0,
            queries: vec![CellSet::from_coords(shape(), [Coord::d2(0, 0)])],
        };
        client.lookup(session, vec![step]).expect("ingest barrier");
    }
}

/// The probe suite whose answers must be byte-identical across daemons.
fn probe(client: &mut Client, session: u64) -> Vec<Vec<Vec<WireOutcome>>> {
    let queries = || {
        vec![
            CellSet::from_coords(shape(), [Coord::d2(3, 3)]),
            CellSet::from_coords(shape(), [Coord::d2(0, 7), Coord::d2(7, 0)]),
            CellSet::from_coords(shape(), (0..8).map(|i| Coord::d2(i, i))),
        ]
    };
    let mut all = Vec::new();
    for op in 0..3u32 {
        let inputs = if op == 2 { 2 } else { 1 };
        for input_idx in 0..inputs {
            for direction in [Direction::Backward, Direction::Forward] {
                let step = LookupStep {
                    op_id: op,
                    direction,
                    input_idx,
                    queries: queries(),
                };
                all.push(client.lookup(session, vec![step]).expect("probe lookup"));
            }
        }
    }
    all
}

/// Reference answers from a clean in-process server that ingests and
/// commits `rounds` rounds of the workload.
fn reference_answers(tag: &str, rounds: u32) -> Vec<Vec<Vec<WireOutcome>>> {
    let dir = temp_dir(tag);
    let socket = dir.join("daemon.sock");
    let server = Server::start(
        &socket,
        ServerConfig {
            data_dir: Some(dir.join("data")),
            shards: 2,
            ..ServerConfig::default()
        },
    )
    .expect("reference server starts");
    let mut client = Client::connect(&socket).expect("connect");
    let session = client.open_session("restart", specs()).expect("open");
    for round in 0..rounds {
        ingest(&mut client, session, round);
        client.finish_session(session).expect("finish");
    }
    let answers = probe(&mut client, session);
    drop(client);
    server.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
    answers
}

/// Every `.kv` file under the per-shard data directories, as bytes.
fn kv_snapshot(data_dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut snap = BTreeMap::new();
    for shard in std::fs::read_dir(data_dir).expect("read data dir") {
        let shard = shard.expect("dir entry").path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&shard).expect("read shard dir") {
            let f = f.expect("dir entry").path();
            if f.extension().is_some_and(|e| e == "kv") {
                let rel = f.strip_prefix(data_dir).unwrap().to_path_buf();
                snap.insert(rel, std::fs::read(&f).expect("read kv file"));
            }
        }
    }
    assert!(
        !snap.is_empty(),
        "no .kv files under {}",
        data_dir.display()
    );
    snap
}

#[test]
fn sigkilled_daemon_recovers_committed_run_byte_identical() {
    let reference = reference_answers("clean", 1);

    // Crash run: ingest and COMMIT through the real binary, then SIGKILL.
    // The committed run must survive verbatim.
    let dir = temp_dir("crash");
    let socket = dir.join("daemon.sock");
    let data_dir = dir.join("data");
    let mut child = spawn_daemon(&socket, &data_dir, None);
    {
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session, 0);
        client.finish_session(session).expect("commit");
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Restart over the same directories (and the same, now-stale, socket
    // file); recovery rolls the stores forward to the committed state.
    let mut child = spawn_daemon(&socket, &data_dir, None);
    let mut client = connect_with_retry(&socket);
    let session = client.open_session("restart", specs()).expect("reopen");
    let recovered = probe(&mut client, session);
    assert_eq!(
        recovered, reference,
        "recovered answers diverge from the clean run"
    );
    client.shutdown_server().expect("graceful shutdown");
    drop(client);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncommitted_ingest_rolls_back_to_last_commit() {
    let reference = reference_answers("rb-clean", 1);

    // Commit round 0, then ingest round 1 WITHOUT committing and SIGKILL.
    let dir = temp_dir("rb-crash");
    let socket = dir.join("daemon.sock");
    let data_dir = dir.join("data");
    let mut child = spawn_daemon(&socket, &data_dir, None);
    {
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session, 0);
        client.finish_session(session).expect("commit");
        ingest(&mut client, session, 1);
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the daemon");

    // Control: the same committed prefix, shut down gracefully.  The write
    // sequence into each `.kv` log is deterministic (lane FIFO, stable
    // shard assignment), so recovery truncating round 1 away must leave
    // files byte-identical to never having ingested it.
    let control_dir = temp_dir("rb-control");
    {
        let socket = control_dir.join("daemon.sock");
        let mut child = spawn_daemon(&socket, &control_dir.join("data"), None);
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session, 0);
        client.finish_session(session).expect("commit");
        client.shutdown_server().expect("graceful shutdown");
        drop(client);
        child.wait().expect("control daemon exits");
    }

    let mut child = spawn_daemon(&socket, &data_dir, None);
    let mut client = connect_with_retry(&socket);
    let session = client.open_session("restart", specs()).expect("reopen");
    let recovered = probe(&mut client, session);
    assert_eq!(
        recovered, reference,
        "rolled-back answers diverge from the committed prefix"
    );
    // Byte-level: the recovered .kv files equal the control's.
    assert_eq!(
        kv_snapshot(&data_dir),
        kv_snapshot(&control_dir.join("data")),
        "recovered .kv bytes diverge from a run that never saw round 1"
    );
    client.shutdown_server().expect("graceful shutdown");
    drop(client);
    child.wait().expect("daemon exits");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

/// One crash-point scenario: commit round 0 cleanly, restart the daemon
/// with `point` armed, ingest round 1 and attempt to commit — the daemon
/// aborts at the crash point mid-request.  Restart unarmed and verify the
/// recovered state: crash points before the decision record roll round 1
/// back; the post-decision point keeps it.
fn crash_point_scenario(point: &str, committed_rounds: u32) {
    let tag = format!("fp-{}", point.replace('.', "-"));
    let reference = reference_answers(&format!("{tag}-ref"), committed_rounds);

    let dir = temp_dir(&tag);
    let socket = dir.join("daemon.sock");
    let data_dir = dir.join("data");

    // Round 0 commits with no failpoint armed.
    {
        let mut child = spawn_daemon(&socket, &data_dir, None);
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("open");
        ingest(&mut client, session, 0);
        client.finish_session(session).expect("commit round 0");
        client.shutdown_server().expect("graceful shutdown");
        drop(client);
        child.wait().expect("daemon exits");
    }
    let committed_snapshot = kv_snapshot(&data_dir);

    // Round 1 runs against a daemon with the crash point armed: the
    // commit attempt kills the process.
    {
        let mut child = spawn_daemon(&socket, &data_dir, Some(point));
        let mut client = connect_with_retry(&socket);
        let session = client.open_session("restart", specs()).expect("reopen");
        ingest(&mut client, session, 1);
        let died = client.finish_session(session);
        assert!(
            died.is_err(),
            "{point}: commit request survived an armed crash point: {died:?}"
        );
        drop(client);
        let status = child.wait().expect("reap the aborted daemon");
        assert!(!status.success(), "{point}: daemon exited cleanly");
    }

    // Recovery, unarmed.
    let mut child = spawn_daemon(&socket, &data_dir, None);
    let mut client = connect_with_retry(&socket);
    let session = client.open_session("restart", specs()).expect("reopen");
    let recovered = probe(&mut client, session);
    assert_eq!(
        recovered, reference,
        "{point}: recovered answers diverge from the {committed_rounds}-round reference"
    );
    if committed_rounds == 1 {
        // Round 1 was rolled back: byte-identical to the pre-crash commit.
        assert_eq!(
            kv_snapshot(&data_dir),
            committed_snapshot,
            "{point}: recovered .kv bytes diverge from the committed state"
        );
    }
    client.shutdown_server().expect("graceful shutdown");
    drop(client);
    child.wait().expect("daemon exits");

    // Recovery is idempotent: a second restart changes nothing and serves
    // the same answers.
    let after_first = kv_snapshot(&data_dir);
    let mut child = spawn_daemon(&socket, &data_dir, None);
    let mut client = connect_with_retry(&socket);
    let session = client.open_session("restart", specs()).expect("reopen");
    assert_eq!(
        probe(&mut client, session),
        reference,
        "{point}: second recovery diverges"
    );
    assert_eq!(
        kv_snapshot(&data_dir),
        after_first,
        "{point}: second recovery rewrote .kv bytes"
    );
    client.shutdown_server().expect("graceful shutdown");
    drop(client);
    child.wait().expect("daemon exits");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_pre_prepare_rolls_back() {
    crash_point_scenario(failpoint::PRE_PREPARE, 1);
}

#[test]
fn crash_at_mid_prepare_rolls_back() {
    crash_point_scenario(failpoint::MID_PREPARE, 1);
}

#[test]
fn crash_at_pre_commit_rolls_back() {
    crash_point_scenario(failpoint::PRE_COMMIT, 1);
}

#[test]
fn crash_at_mid_commit_truncates_torn_decision_and_rolls_back() {
    crash_point_scenario(failpoint::MID_COMMIT, 1);
}

#[test]
fn crash_at_post_commit_keeps_the_decided_run() {
    crash_point_scenario(failpoint::POST_COMMIT, 2);
}

#[test]
fn repeated_commits_keep_wal_replay_bounded() {
    use subzero_store::wal::{WriteAheadLog, WAL_FILE};

    // N commit cycles against an in-process durable server; the per-shard
    // WALs and the coordinator's decision log must stay flat — each commit
    // checkpoints, so replay work is independent of history length.
    let measure = |rounds: u32, tag: &str| -> (usize, u64) {
        let dir = temp_dir(tag);
        let socket = dir.join("daemon.sock");
        let data_dir = dir.join("data");
        let server = Server::start(
            &socket,
            ServerConfig {
                data_dir: Some(data_dir.clone()),
                shards: 2,
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let mut client = Client::connect(&socket).expect("connect");
        let session = client.open_session("restart", specs()).expect("open");
        for round in 0..rounds {
            ingest(&mut client, session, round % 8);
            client.finish_session(session).expect("commit");
        }
        drop(client);
        server.shutdown_and_wait();
        let mut records = 0usize;
        let mut bytes = 0u64;
        for entry in std::fs::read_dir(&data_dir).expect("read data dir") {
            let p = entry.expect("dir entry").path();
            let wal_path = if p.is_dir() { p.join(WAL_FILE) } else { p };
            if wal_path.file_name().is_some_and(|n| {
                n.to_str()
                    .is_some_and(|n| n == WAL_FILE || n == "commit.wal")
            }) && wal_path.exists()
            {
                let wal = WriteAheadLog::open(&wal_path).expect("open wal");
                records += wal.len();
                bytes += wal.size_bytes() as u64;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        (records, bytes)
    };

    let (small_records, small_bytes) = measure(2, "bounded-small");
    let (large_records, large_bytes) = measure(10, "bounded-large");
    assert_eq!(
        small_records, large_records,
        "replay record count grew with commit history"
    );
    // The byte sizes may differ by a few varint bytes (file lengths vary
    // with the workload content), but not with the number of commits.
    assert!(
        large_bytes.abs_diff(small_bytes) <= 64,
        "replay byte size grew with commit history: {small_bytes} -> {large_bytes}"
    );
}
