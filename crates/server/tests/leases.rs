//! Session leases and client resilience: idle sessions are evicted after
//! the configured TTL (and traffic renews the lease), and a client with a
//! [`RetryPolicy`] survives a daemon restart for idempotent requests.

use std::path::PathBuf;
use std::time::Duration;

use subzero::model::StorageStrategy;
use subzero_array::{Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_server::{Client, ClientError, OpSpec, RetryPolicy, Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subzero-lease-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spec() -> OpSpec {
    let shape = Shape::d2(4, 4);
    OpSpec {
        op_id: 0,
        input_shapes: vec![shape],
        output_shape: shape,
        strategies: vec![StorageStrategy::full_one()],
    }
}

fn one_pair() -> Vec<RegionPair> {
    vec![RegionPair::Full {
        outcells: vec![Coord::d2(0, 0)],
        incells: vec![vec![Coord::d2(1, 1)]],
    }]
}

#[test]
fn idle_sessions_are_evicted_and_traffic_renews_the_lease() {
    let dir = temp_dir("evict");
    let socket = dir.join("daemon.sock");
    let ttl = Duration::from_millis(200);
    let server = Server::start(
        &socket,
        ServerConfig {
            shards: 2,
            session_ttl: Some(ttl),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&socket).expect("connect");

    // `busy` keeps trafficking and must outlive several TTLs; `idle` goes
    // quiet and must be evicted.
    let busy = client.open_session("busy", vec![spec()]).expect("open");
    let idle = client.open_session("idle", vec![spec()]).expect("open");
    for _ in 0..8 {
        std::thread::sleep(ttl / 2);
        let ack = client
            .store_batch(busy, 0, one_pair())
            .expect("busy session stays admitted");
        assert!(ack.accepted);
    }

    // The idle session has been silent for 4 TTLs by now.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.evicted_sessions, 1, "exactly the idle session");
    let denied = client.store_batch(idle, 0, one_pair());
    assert!(
        matches!(&denied, Err(ClientError::Server(m)) if m.contains("unknown session")),
        "evicted session still admitted: {denied:?}"
    );
    // The busy session is still live.
    assert!(
        client
            .store_batch(busy, 0, one_pair())
            .expect("busy")
            .accepted
    );

    drop(client);
    server.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retrying_client_survives_a_daemon_restart_for_idempotent_requests() {
    let dir = temp_dir("retry");
    let socket = dir.join("daemon.sock");
    let config = ServerConfig {
        shards: 1,
        data_dir: Some(dir.join("data")),
        ..ServerConfig::default()
    };

    let server = Server::start(&socket, config.clone()).expect("server starts");
    let mut client = Client::connect_with(
        &socket,
        RetryPolicy {
            connect_attempts: 50,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            request_timeout: Some(Duration::from_secs(10)),
            request_retries: 3,
        },
    )
    .expect("connect");
    let session = client.open_session("retry", vec![spec()]).expect("open");
    assert!(
        client
            .store_batch(session, 0, one_pair())
            .expect("store")
            .accepted
    );
    client.finish_session(session).expect("commit");

    // Bounce the daemon under the client's feet.
    server.shutdown_and_wait();
    let server = Server::start(&socket, config).expect("server restarts");

    // Stats is idempotent: the client reconnects and resends transparently.
    let stats = client.stats().expect("stats after restart");
    assert_eq!(stats.shards, 1);
    // So is open: it reattaches to the recovered on-disk session stores.
    let session = client
        .open_session("retry", vec![spec()])
        .expect("reopen after restart");

    // Non-idempotent requests are NOT resent: the first store_batch after
    // shutdown_and_wait of a *new* bounce fails instead of replaying.
    server.shutdown_and_wait();
    let denied = client.store_batch(session, 0, one_pair());
    assert!(
        matches!(denied, Err(ClientError::Io(_))),
        "non-idempotent request was retried or mis-reported: {denied:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
