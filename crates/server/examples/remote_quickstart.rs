//! Drives a lineage daemon end to end: open a session, stream region
//! pairs, and answer backward/forward lookups over the socket.
//!
//! By default it starts an in-process [`Server`] on a temporary socket;
//! pass `--socket <path>` to talk to an already-running `subzero-serverd`
//! instead:
//!
//! ```sh
//! cargo run --release -p subzero-server --example remote_quickstart
//! # or, against the real daemon:
//! target/release/subzero-serverd --socket /tmp/subzero.sock --data-dir /tmp/subzero &
//! cargo run --release -p subzero-server --example remote_quickstart -- --socket /tmp/subzero.sock
//! ```

use std::path::PathBuf;

use subzero::model::{Direction, StorageStrategy};
use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_server::{Client, LookupStep, OpSpec, Server};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let external = args
        .iter()
        .position(|a| a == "--socket")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    // Without --socket, run the daemon in-process on a scratch socket.
    let (socket, local) = match &external {
        Some(path) => (path.clone(), None),
        None => {
            let dir = std::env::temp_dir().join(format!("subzero-rq-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            let socket = dir.join("daemon.sock");
            let server = Server::start(&socket, Default::default()).expect("start server");
            (socket, Some((server, dir)))
        }
    };

    let shape = Shape::d2(8, 8);
    let mut client = Client::connect(&socket).expect("connect");
    let session = client
        .open_session(
            "remote-quickstart",
            vec![OpSpec {
                op_id: 0,
                input_shapes: vec![shape],
                output_shape: shape,
                strategies: vec![StorageStrategy::full_one()],
            }],
        )
        .expect("open session");

    // A transpose-shaped lineage: output (r, c) came from input (c, r).
    let pairs: Vec<RegionPair> = (0..8u32)
        .flat_map(|r| {
            (0..8u32).map(move |c| RegionPair::Full {
                outcells: vec![Coord::d2(r, c)],
                incells: vec![vec![Coord::d2(c, r)]],
            })
        })
        .collect();
    for chunk in pairs.chunks(16) {
        let ack = client
            .store_batch(session, 0, chunk.to_vec())
            .expect("store batch");
        assert!(ack.accepted);
    }
    client.finish_session(session).expect("finish");
    println!("stored {} region pairs for operator 0", pairs.len());

    // One chunk-batched lookup step: trace three output cells backward.
    let queries: Vec<CellSet> = [(0, 0), (2, 5), (7, 7)]
        .into_iter()
        .map(|(r, c)| CellSet::from_coords(shape, [Coord::d2(r, c)]))
        .collect();
    let outcomes = client
        .lookup(
            session,
            vec![LookupStep {
                op_id: 0,
                direction: Direction::Backward,
                input_idx: 0,
                queries,
            }],
        )
        .expect("lookup");
    for (i, out) in outcomes[0].iter().enumerate() {
        println!(
            "query {i}: {} input cell(s) {:?} ({} entr{} fetched)",
            out.result.len(),
            out.result.to_coords(),
            out.entries_fetched,
            if out.entries_fetched == 1 { "y" } else { "ies" },
        );
    }
    assert_eq!(outcomes[0][1].result.to_coords(), vec![Coord::d2(5, 2)]);

    let stats = client.stats().expect("stats");
    println!(
        "daemon: {} session(s), {} shard(s), {} batches stored, {} lookup steps",
        stats.sessions, stats.shards, stats.store_batches, stats.lookup_steps
    );

    match local {
        Some((server, dir)) => {
            drop(client);
            server.shutdown_and_wait();
            let _ = std::fs::remove_dir_all(&dir);
        }
        None => {
            // Leave an external daemon running; just close our session.
            client.close_session(session).expect("close");
        }
    }
    println!("done");
}
