//! Shard workers: each owns a partition of the operator space and a
//! datastore directory, and drains per-client job queues round-robin.
//!
//! The daemon hash-partitions operators across `N` shard workers
//! ([`shard_of`]).  Every client connection registers one *lane* — a
//! [`BoundedQueue`] of `ShardJob`s — with every shard; the worker thread
//! sweeps its registered lanes round-robin with
//! [`try_pop`](BoundedQueue::try_pop), so a bulk loader hammering one lane
//! cannot starve an interactive client on another: between any two of the
//! bulk lane's jobs the worker visits every other lane once.  Jobs within a
//! lane stay FIFO, which is what makes a lookup enqueued after an accepted
//! ingest batch observe that batch.
//!
//! Admission control happens at the lane: ingest jobs are pushed with the
//! server's configured [`OverflowPolicy`](subzero::capture::OverflowPolicy)
//! (shedding is reported to the client, never silent), while control and
//! query jobs are pushed with `Block` so they are never shed.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use subzero::capture::BoundedQueue;
use subzero::datastore::OpDatastore;
use subzero::model::{Direction, StorageStrategy};
use subzero::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use subzero::sync::{lock_or_recover, wait_or_recover, Condvar, Mutex};
use subzero_array::{Array, ArrayRef, CellSet, Shape};
use subzero_engine::lineage::{LineageSink, RegionPair};
use subzero_engine::workflow::OpId;
use subzero_engine::{LineageMode, OpMeta, Operator};
use subzero_store::kv::FileBackend;
use subzero_store::wal::{WalFileLen, WalRecord, WriteAheadLog, WAL_FILE};

use crate::protocol::{LookupStep, OpSpec, WireOutcome};

/// The shard that owns operator `op_id` under an `n`-shard layout.
///
/// A pure function of the operator id (SplitMix64-style mix), so the
/// assignment is stable across daemon restarts — a restarted daemon finds
/// each operator's datastore files in the same shard directory.
pub fn shard_of(op_id: OpId, n: usize) -> usize {
    let mut x = u64::from(op_id).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % n.max(1) as u64) as usize
}

/// Maps a session name to the stable on-disk file prefix, mirroring the
/// store layer's own character rules (which are private to it): every byte
/// outside `[A-Za-z0-9_-]` becomes `_`.
///
/// Plain replacement alone would let distinct session names collide on one
/// prefix (`"run.1"` and `"run_1"` both become `run_1`), handing two
/// concurrently open sessions `FileBackend`s appending to the same `.kv`
/// log and corrupting both.  So any name the replacement actually changed
/// gets a hash of the *raw* name appended, keeping distinct names distinct
/// on disk; names already made of clean characters keep their verbatim
/// prefix, so existing on-disk layouts stay readable.  The mapping is a
/// pure function of the name — a restarted daemon recovers the same files.
pub fn sanitize_name(name: &str) -> String {
    let mut changed = false;
    let clean: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                changed = true;
                '_'
            }
        })
        .collect();
    if !changed {
        return clean;
    }
    // FNV-1a over the raw bytes; 64 bits is plenty to keep the handful of
    // names a daemon hosts from colliding.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{clean}-{h:016x}")
}

/// Daemon-wide counters shared by shards and the coordinator.
#[derive(Default)]
pub(crate) struct Counters {
    /// `StoreBatch` requests admitted to a shard queue.
    pub store_batches: AtomicU64,
    /// Lookup steps served.
    pub lookup_steps: AtomicU64,
    /// Ingest batches shed by `DropNewest` admission.
    pub shed_batches: AtomicU64,
    /// Transactions committed (durable `FinishSession` publishes).
    pub commits: AtomicU64,
    /// Sessions evicted by the idle-lease sweeper.
    pub evicted_sessions: AtomicU64,
}

/// A one-shot rendezvous a connection handler parks on while the owning
/// shard worker computes the job's result.
pub(crate) struct JobSlot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T> JobSlot<T> {
    pub fn new() -> Arc<Self> {
        Arc::new(JobSlot {
            value: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    pub fn fill(&self, v: T) {
        let mut guard = lock_or_recover(&self.value);
        *guard = Some(v);
        drop(guard);
        self.ready.notify_all();
    }

    pub fn wait(&self) -> T {
        let mut guard = lock_or_recover(&self.value);
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            guard = wait_or_recover(&self.ready, guard);
        }
    }
}

/// One unit of work routed to the shard that owns the target operator.
pub(crate) enum ShardJob {
    /// Create (or reattach to) the datastores of one operator.
    Open {
        session: u64,
        name: String,
        spec: OpSpec,
        done: Arc<JobSlot<Result<(), String>>>,
    },
    /// Ingest a batch of region pairs.  No reply slot: admission was already
    /// acknowledged, lane FIFO makes the write visible to later jobs, and
    /// [`ShardJob::Finish`] is the durability barrier that reports errors.
    Store {
        session: u64,
        op_id: OpId,
        pairs: Vec<RegionPair>,
    },
    /// Answer one traversal step (batched over its queries).
    Lookup {
        session: u64,
        step: LookupStep,
        done: Arc<JobSlot<Result<Vec<WireOutcome>, String>>>,
    },
    /// Phase one of a durable commit: flush, fsync and persist every
    /// datastore of the session on this shard, then log a
    /// [`WalRecord::Prepare`] for transaction `txn` naming the exact
    /// flushed file lengths.  `txn` is 0 for in-memory shards (nothing to
    /// prepare, plain flush semantics).
    Finish {
        session: u64,
        txn: u64,
        done: Arc<JobSlot<Result<(), String>>>,
    },
    /// Phase two, after the coordinator's decision is durable: fold `txn`
    /// into the shard's committed baseline, compact the session's logs, and
    /// rewrite the shard WAL so replay stays bounded.
    Checkpoint {
        session: u64,
        txn: u64,
        done: Arc<JobSlot<Result<(), String>>>,
    },
    /// Drop the session's in-memory state on this shard.
    Close {
        session: u64,
        done: Arc<JobSlot<()>>,
    },
}

/// The reply slot a [`ShardJob`] carries, extracted (cheap `Arc` clones)
/// *before* the job is processed so that a panic inside
/// [`Worker::process`] can still unblock the connection handler parked on
/// the slot — otherwise a panicking job (e.g. a flush failing on a full
/// disk during `Finish`) would leave the handler in [`JobSlot::wait`]
/// forever and make graceful shutdown hang joining it.
pub(crate) enum ReplySlot {
    /// `Open` and `Finish` jobs: acknowledged with `Ok(())` or an error.
    Ack(Arc<JobSlot<Result<(), String>>>),
    /// `Lookup` jobs.
    Lookup(Arc<JobSlot<Result<Vec<WireOutcome>, String>>>),
    /// `Close` jobs (infallible acknowledgement).
    Close(Arc<JobSlot<()>>),
    /// `Store` jobs carry no slot (admission was already acknowledged).
    None,
}

impl ReplySlot {
    /// Fills the slot with the failure so the waiter wakes.  Filling a slot
    /// the job already answered just leaves an unread value behind — the
    /// rendezvous is one-shot, so that is harmless.
    pub(crate) fn fail(self, message: String) {
        match self {
            ReplySlot::Ack(slot) => slot.fill(Err(message)),
            ReplySlot::Lookup(slot) => slot.fill(Err(message)),
            ReplySlot::Close(slot) => slot.fill(()),
            ReplySlot::None => {}
        }
    }
}

impl ShardJob {
    /// Clones the job's reply slot for panic recovery (see [`ReplySlot`]).
    pub(crate) fn reply_slot(&self) -> ReplySlot {
        match self {
            ShardJob::Open { done, .. }
            | ShardJob::Finish { done, .. }
            | ShardJob::Checkpoint { done, .. } => ReplySlot::Ack(Arc::clone(done)),
            ShardJob::Lookup { done, .. } => ReplySlot::Lookup(Arc::clone(done)),
            ShardJob::Close { done, .. } => ReplySlot::Close(Arc::clone(done)),
            ShardJob::Store { .. } => ReplySlot::None,
        }
    }
}

/// A registered per-client job queue.
struct Lane {
    queue: Arc<BoundedQueue<ShardJob>>,
}

struct LaneRegistry {
    lanes: Vec<Lane>,
    /// Round-robin position of the next sweep.
    cursor: usize,
}

/// Shared state of one shard: the lane registry the worker sweeps and the
/// wakeup machinery producers use to rouse it.
pub(crate) struct Shard {
    index: usize,
    dir: Option<PathBuf>,
    lanes: Mutex<LaneRegistry>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Artificial per-ingest-job stall (saturation tests and benchmarks
    /// emulating a slow storage device); zero in production.
    store_stall: Duration,
    counters: Arc<Counters>,
}

impl Shard {
    pub fn new(
        index: usize,
        dir: Option<PathBuf>,
        store_stall: Duration,
        counters: Arc<Counters>,
    ) -> Arc<Self> {
        Arc::new(Shard {
            index,
            dir,
            lanes: Mutex::new(LaneRegistry {
                lanes: Vec::new(),
                cursor: 0,
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            store_stall,
            counters,
        })
    }

    /// Registers a connection's lane with this shard.
    pub fn register_lane(&self, queue: Arc<BoundedQueue<ShardJob>>) {
        let mut reg = lock_or_recover(&self.lanes);
        reg.lanes.push(Lane { queue });
        drop(reg);
        self.wake.notify_all();
    }

    /// Wakes the worker after a push to one of this shard's lanes.
    pub fn notify(&self) {
        let _guard = lock_or_recover(&self.lanes);
        self.wake.notify_all();
    }

    /// Starts shutdown: closes every lane (so producers fail fast instead
    /// of queueing into the void) and tells the worker to drain and exit.
    pub fn initiate_shutdown(&self) {
        let reg = lock_or_recover(&self.lanes);
        for lane in &reg.lanes {
            lane.queue.close();
        }
        drop(reg);
        self.shutdown.store(true, Ordering::Release);
        self.notify();
    }

    /// Takes the next job round-robin across lanes, blocking while every
    /// lane is empty.  Returns `None` once shutdown is initiated and the
    /// lanes are drained.
    fn next_job(&self) -> Option<(ShardJob, Arc<BoundedQueue<ShardJob>>)> {
        let mut reg = lock_or_recover(&self.lanes);
        loop {
            // Closed *and* drained lanes (disconnected clients) leave the
            // rotation; keeping them would only slow the sweep.
            reg.lanes
                .retain(|l| !(l.queue.is_closed() && l.queue.is_empty()));
            let n = reg.lanes.len();
            for i in 0..n {
                let idx = (reg.cursor + i) % n;
                if let Some(job) = reg.lanes[idx].queue.try_pop() {
                    reg.cursor = (idx + 1) % n;
                    let queue = Arc::clone(&reg.lanes[idx].queue);
                    return Some((job, queue));
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            reg = wait_or_recover(&self.wake, reg);
        }
    }
}

/// A stand-in operator for datastore lookups.  `Full`-mode lookups never
/// invoke the operator (only payload/composite lineage calls back into
/// mapping functions, and those strategies are rejected at session open),
/// so the stub's only job is to exist.
struct RemoteOp;

impl Operator for RemoteOp {
    fn name(&self) -> &str {
        "remote"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes
            .first()
            .copied()
            .unwrap_or_else(|| Shape::d1(1))
    }

    fn run(&self, _: &[ArrayRef], _: &[LineageMode], _: &mut dyn LineageSink) -> Array {
        panic!("the lineage daemon never executes operators")
    }
}

/// One operator's state on its owning shard.
struct OpState {
    meta: OpMeta,
    strategies: Vec<StorageStrategy>,
    stores: Vec<OpDatastore>,
}

/// The worker's private state; only the shard's single worker thread
/// touches it, so no locking is needed around the datastores themselves.
struct Worker {
    shard: Arc<Shard>,
    ops: HashMap<(u64, OpId), OpState>,
    /// The shard directory's write-ahead log (`None` for in-memory shards).
    /// The coordinator recovered it before this worker started, so opening
    /// replays at most a checkpoint baseline plus undecided prepares.
    wal: Option<WriteAheadLog>,
    /// Set when a job panicked; the shard then refuses further work instead
    /// of serving from possibly inconsistent stores.
    failed: Option<String>,
}

/// Body of a shard worker thread: drain jobs until shutdown, then harvest
/// (flush + persist the sidecar index of) every remaining datastore.
pub(crate) fn worker_loop(shard: Arc<Shard>) {
    let mut worker = Worker {
        shard: Arc::clone(&shard),
        ops: HashMap::new(),
        wal: None,
        failed: None,
    };
    if let Some(dir) = shard.dir.clone() {
        match WriteAheadLog::open(dir.join(WAL_FILE)) {
            Ok(wal) => worker.wal = Some(wal),
            Err(e) => {
                let what = format!("open shard write-ahead log: {e}");
                eprintln!("subzero-server: shard {}: {what}", shard.index);
                worker.failed = Some(what);
            }
        }
    }
    while let Some((job, queue)) = shard.next_job() {
        let reply = job.reply_slot();
        let outcome = catch_unwind(AssertUnwindSafe(|| worker.process(job)));
        queue.task_done();
        if let Err(panic) = outcome {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "shard job panicked".to_string());
            eprintln!("subzero-server: shard {} job panicked: {what}", shard.index);
            // Answer the waiter before anything else: a job that dies with
            // its slot unfilled would park its connection handler forever.
            reply.fail(format!("shard {} job panicked: {what}", shard.index));
            worker.failed.get_or_insert(what);
        }
    }
    worker.harvest();
}

impl Worker {
    fn process(&mut self, job: ShardJob) {
        if let Some(why) = self.failed.clone() {
            // A previous panic may have left datastore state inconsistent;
            // answer everything with the failure instead of guessing.
            let msg = format!("shard {} failed: {why}", self.shard.index);
            match job {
                ShardJob::Open { done, .. }
                | ShardJob::Finish { done, .. }
                | ShardJob::Checkpoint { done, .. } => {
                    done.fill(Err(msg));
                }
                ShardJob::Lookup { done, .. } => done.fill(Err(msg)),
                ShardJob::Close { done, .. } => done.fill(()),
                ShardJob::Store { .. } => {}
            }
            return;
        }
        match job {
            ShardJob::Open {
                session,
                name,
                spec,
                done,
            } => done.fill(self.open_op(session, &name, spec)),
            ShardJob::Store {
                session,
                op_id,
                pairs,
            } => self.store(session, op_id, &pairs),
            ShardJob::Lookup {
                session,
                step,
                done,
            } => done.fill(self.lookup(session, &step)),
            ShardJob::Finish { session, txn, done } => done.fill(self.finish(session, txn)),
            ShardJob::Checkpoint { session, txn, done } => {
                done.fill(self.checkpoint(session, txn));
            }
            ShardJob::Close { session, done } => {
                self.ops.retain(|(s, _), _| *s != session);
                done.fill(());
            }
        }
    }

    fn open_op(&mut self, session: u64, name: &str, spec: OpSpec) -> Result<(), String> {
        if spec.strategies.is_empty() {
            return Err(format!("op {} declares no storage strategies", spec.op_id));
        }
        for s in &spec.strategies {
            if s.mode != LineageMode::Full {
                return Err(format!(
                    "op {}: strategy {} is not supported remotely (payload and \
                     composite lookups need the operator's mapping functions, \
                     which cannot travel over the wire)",
                    spec.op_id,
                    s.label()
                ));
            }
        }
        let meta = OpMeta::new(spec.input_shapes.clone(), spec.output_shape);
        if let Some(existing) = self.ops.get(&(session, spec.op_id)) {
            // Reattach: an identical re-open keeps the live state; anything
            // else is a client bug.
            if existing.meta.input_shapes == meta.input_shapes
                && existing.meta.output_shape == meta.output_shape
                && existing.strategies == spec.strategies
            {
                return Ok(());
            }
            return Err(format!(
                "op {} already open in session with a different spec",
                spec.op_id
            ));
        }
        let mut stores = Vec::with_capacity(spec.strategies.len());
        for strategy in &spec.strategies {
            let store_name = format!(
                "{}_op{}_{}",
                sanitize_name(name),
                spec.op_id,
                strategy.db_suffix()
            );
            let store = match &self.shard.dir {
                Some(dir) => {
                    let path = dir.join(format!("{store_name}.kv"));
                    let backend = FileBackend::open(&path)
                        .map_err(|e| format!("open {}: {e}", path.display()))?;
                    OpDatastore::new(store_name, *strategy, &meta, Box::new(backend))
                }
                None => OpDatastore::in_memory(store_name, *strategy, &meta),
            };
            stores.push(store);
        }
        self.ops.insert(
            (session, spec.op_id),
            OpState {
                meta,
                strategies: spec.strategies,
                stores,
            },
        );
        Ok(())
    }

    fn store(&mut self, session: u64, op_id: OpId, pairs: &[RegionPair]) {
        if !self.shard.store_stall.is_zero() {
            subzero::sync::thread::sleep(self.shard.store_stall);
        }
        let Some(state) = self.ops.get_mut(&(session, op_id)) else {
            // The coordinator validated the session/op before admission; an
            // unknown target here means the session raced a close.  The
            // batch is dropped, which Finish-after-close semantics allow.
            return;
        };
        for store in &mut state.stores {
            store.store_batch(pairs, 1);
        }
        self.shard
            .counters
            .store_batches
            .fetch_add(1, Ordering::Relaxed);
    }

    fn lookup(&mut self, session: u64, step: &LookupStep) -> Result<Vec<WireOutcome>, String> {
        let Some(state) = self.ops.get_mut(&(session, step.op_id)) else {
            return Err(format!("unknown op {} in session", step.op_id));
        };
        let input_idx = step.input_idx as usize;
        let Some(&input_shape) = state.meta.input_shapes.get(input_idx) else {
            return Err(format!("op {} has no input {input_idx}", step.op_id));
        };
        let query_shape = match step.direction {
            Direction::Backward => state.meta.output_shape,
            Direction::Forward => input_shape,
        };
        for q in &step.queries {
            if q.shape() != query_shape {
                return Err(format!(
                    "op {}: query shape {:?} does not match {:?}",
                    step.op_id,
                    q.shape(),
                    query_shape
                ));
            }
        }
        // Prefer a datastore whose index direction matches the query; fall
        // back to the first one (which will scan) — the same choice the
        // in-process query engine makes, which is what keeps remote answers
        // byte-identical to local ones.
        let pick = state
            .stores
            .iter()
            .position(|d| d.strategy().serves(step.direction))
            .unwrap_or(0);
        let store = &mut state.stores[pick];
        let refs: Vec<&CellSet> = step.queries.iter().collect();
        let op = RemoteOp;
        let outcomes = match step.direction {
            Direction::Backward => store.lookup_backward_many(&refs, input_idx, &op, &state.meta),
            Direction::Forward => store.lookup_forward_many(&refs, input_idx, &op, &state.meta),
        };
        self.shard
            .counters
            .lookup_steps
            .fetch_add(1, Ordering::Relaxed);
        Ok(outcomes
            .into_iter()
            .map(|o| {
                // The join only ever promotes containers; re-normalising the
                // answer here lets the wire encoder see (and size) the
                // smallest representation of each set before picking a frame.
                let mut result = o.result;
                let mut covered = o.covered;
                result.optimize();
                covered.optimize();
                WireOutcome {
                    result,
                    covered,
                    entries_fetched: o.entries_fetched as u64,
                    scanned: o.scanned,
                }
            })
            .collect())
    }

    /// Prepare phase of the two-phase commit: flush and fsync every store
    /// the session touched on this shard, then record the committed lengths
    /// in the shard WAL.  `txn == 0` (in-memory serving) skips the durable
    /// part and degrades to a plain flush.
    fn finish(&mut self, session: u64, txn: u64) -> Result<(), String> {
        let mut files: Vec<WalFileLen> = Vec::new();
        for ((s, op), state) in self.ops.iter_mut() {
            if *s == session {
                for store in &mut state.stores {
                    store.finish_ingest();
                    store
                        .sync()
                        .map_err(|e| format!("sync op {op} store: {e}"))?;
                    if let Some((name, len)) = store.commit_file() {
                        files.push((name, len));
                    }
                }
            }
        }
        if txn != 0 {
            if let Some(wal) = self.wal.as_mut() {
                wal.append_record(WalRecord::Prepare { txn, files })
                    .and_then(|_| wal.sync())
                    .map_err(|e| format!("shard wal prepare: {e}"))?;
            }
        }
        Ok(())
    }

    /// Post-decision checkpoint: fold the now-committed transaction into the
    /// shard WAL baseline, opportunistically compact the session's stores
    /// (delta chains fold into dense entries), and rewrite the WAL so replay
    /// stays bounded.  Prepares belonging to other, still-undecided
    /// transactions are retained verbatim.
    fn checkpoint(&mut self, session: u64, txn: u64) -> Result<(), String> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        let mut baseline: std::collections::HashMap<String, u64> =
            wal.fold_committed(&|t| t == txn).into_iter().collect();
        // Compact only stores whose on-disk length matches what the commit
        // published — a store with trailing uncommitted bytes from another
        // in-flight session must keep its log intact.
        for ((s, op), state) in self.ops.iter_mut() {
            if *s != session {
                continue;
            }
            for store in &mut state.stores {
                let Some((name, len)) = store.commit_file() else {
                    continue;
                };
                if baseline.get(&name) != Some(&len) {
                    continue;
                }
                match store.compact() {
                    Ok(reclaimed) => {
                        if reclaimed > 0 {
                            if let Some((name, dense)) = store.commit_file() {
                                baseline.insert(name, dense);
                            }
                        }
                    }
                    Err(e) => return Err(format!("compact op {op} store: {e}")),
                }
            }
        }
        let retain: Vec<WalRecord> = wal
            .records()
            .iter()
            .filter(|r| matches!(r, WalRecord::Prepare { txn: t, .. } if *t != txn))
            .cloned()
            .collect();
        let mut files: Vec<WalFileLen> = baseline.into_iter().collect();
        files.sort();
        let next = wal.next_txn();
        wal.checkpoint(&files, next, retain)
            .map_err(|e| format!("shard wal checkpoint: {e}"))
    }

    /// Graceful-shutdown harvest: flush every remaining datastore, then
    /// write a checkpoint adopting the flushed lengths as the committed
    /// baseline.  A clean shutdown thereby keeps even un-finished sessions'
    /// data (matching the pre-transactional behaviour), while a crash rolls
    /// back to the last committed transaction.
    fn harvest(&mut self) {
        if self.failed.is_some() {
            // Don't persist possibly inconsistent state; the WAL is still
            // intact, and the next open recovers to the last commit.
            return;
        }
        let mut flushed: Vec<WalFileLen> = Vec::new();
        for state in self.ops.values_mut() {
            for store in &mut state.stores {
                store.finish_ingest();
                if store.sync().is_err() {
                    return;
                }
                if let Some((name, len)) = store.commit_file() {
                    flushed.push((name, len));
                }
            }
        }
        if let Some(wal) = self.wal.as_mut() {
            let mut baseline: std::collections::HashMap<String, u64> =
                wal.fold_committed(&|_| true).into_iter().collect();
            for (name, len) in flushed {
                baseline.insert(name, len);
            }
            let mut files: Vec<WalFileLen> = baseline.into_iter().collect();
            files.sort();
            let next = wal.next_txn();
            if let Err(e) = wal.checkpoint(&files, next, Vec::new()) {
                eprintln!(
                    "subzero-server: shard {}: shutdown checkpoint: {e}",
                    self.shard.index
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for n in 1..8 {
            for op in 0..64u32 {
                let s = shard_of(op, n);
                assert!(s < n);
                assert_eq!(s, shard_of(op, n));
            }
        }
        // The mix actually spreads consecutive ids.
        let spread: std::collections::HashSet<usize> =
            (0..32u32).map(|op| shard_of(op, 4)).collect();
        assert_eq!(spread.len(), 4);
    }

    #[test]
    fn sanitize_keeps_clean_names_and_disambiguates_dirty_ones() {
        // Already-clean names keep their verbatim prefix (on-disk layouts
        // from before the hash suffix stay readable).
        assert_eq!(sanitize_name("run-a_1"), "run-a_1");
        // Dirty names get the store-layer character replacement plus a
        // raw-name hash, and the mapping is deterministic.
        let dirty = sanitize_name("a/b c.d");
        assert!(dirty.starts_with("a_b_c_d-"), "{dirty}");
        assert!(dirty
            .bytes()
            .all(|b| { b.is_ascii_alphanumeric() || b == b'-' || b == b'_' }));
        assert_eq!(dirty, sanitize_name("a/b c.d"));
    }

    #[test]
    fn distinct_session_names_never_share_a_file_prefix() {
        // The corruption case: "run.1" sanitising into the same prefix as
        // the live session "run_1" would interleave two .kv logs.
        assert_ne!(sanitize_name("run.1"), sanitize_name("run_1"));
        assert_ne!(sanitize_name("run.1"), sanitize_name("run 1"));
        assert_ne!(sanitize_name("run.1"), sanitize_name("run/1"));
    }

    #[test]
    fn job_slot_rendezvous() {
        let slot: Arc<JobSlot<u32>> = JobSlot::new();
        let s2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || s2.wait());
        slot.fill(7);
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn panicked_job_still_answers_its_reply_slot() {
        // worker_loop extracts the reply slot before processing; when the
        // job panics (and is consumed by the unwind), failing the extracted
        // slot must still wake the connection handler parked on it.
        let done = JobSlot::new();
        let job = ShardJob::Finish {
            session: 1,
            txn: 0,
            done: Arc::clone(&done),
        };
        let reply = job.reply_slot();
        let waiter = std::thread::spawn(move || done.wait());
        drop(job); // the unwind destroyed the job itself
        reply.fail("shard 0 job panicked: disk full".into());
        let got = waiter.join().unwrap();
        assert!(got.unwrap_err().contains("panicked"));
    }
}
