//! `subzero-server` — a long-lived, sharded lineage daemon over a unix
//! domain socket.
//!
//! The in-process runtime ties lineage capture and queries to one process's
//! lifetime.  This crate runs the same datastores behind a daemon
//! (`subzero-serverd`) that many clients share:
//!
//! * **Sharding** — operators are hash-partitioned across shard worker
//!   threads ([`shard::shard_of`]); each shard owns its own datastore
//!   directory and [`subzero::datastore::OpDatastore`] handles, so shards
//!   never contend on a store.
//! * **Wire protocol** — length-prefixed binary frames over
//!   `std::os::unix::net` ([`protocol`]); no network crates, no
//!   serialization dependency, defensive decoding throughout.
//! * **Fairness and backpressure** — each client connection gets one
//!   bounded job lane per shard; shard workers sweep lanes round-robin, so
//!   a bulk loader cannot starve interactive clients.  Ingest admission
//!   reuses the capture queue's overflow policies: `Block` for lossless
//!   backpressure, `DropNewest` for shed-and-report.
//! * **Durability** — `FinishSession` (and graceful shutdown) flushes
//!   every store and persists its sidecar spatial index; a restarted
//!   daemon recovers from the sidecar, or rebuilds from the log after a
//!   crash.
//!
//! Client side, [`Client`] speaks the protocol and [`client::RemoteSession`]
//! composes multi-hop traversals exactly like the in-process query engine,
//! so daemon answers are byte-identical to local ones.

pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{BatchAck, Client, ClientError, RemoteSession, RetryPolicy};
pub use protocol::{
    LookupStep, OpSpec, ProtocolError, Request, Response, ServerStats, WireOutcome,
};
pub use server::{Server, ServerConfig, COMMIT_WAL};
pub use shard::{sanitize_name, shard_of};
