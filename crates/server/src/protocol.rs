//! The daemon's length-prefixed binary wire protocol.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by the payload, whose first byte is the message tag.
//! Payloads use the same LEB128 varint primitives as the on-disk codec
//! ([`subzero_store::codec`]), so the daemon adds no serialization
//! dependency — the protocol is hand-rolled over `std` exactly like the
//! storage layer.
//!
//! Decoding is defensive end to end: truncated frames, corrupt counts,
//! out-of-range shapes and non-canonical cell sets are all rejected with a
//! [`ProtocolError`] — never a panic, and never unbounded allocation.
//! Every element count is validated against the bytes actually remaining
//! in the frame before any buffer is reserved, and the *decoded container
//! footprint* of all of a frame's cell sets combined is charged against
//! one [`MAX_FRAME_CELLS`] budget — a frame packed with thousands of tiny
//! encodings cannot amplify into gigabytes of decoded containers, no
//! matter which cell-set encoding or shape each one declares.
//!
//! Cell sets travel in one of three encodings (the full grammar is in
//! `docs/WIRE_PROTOCOL.md`): the legacy sparse delta frame, a run-length
//! frame for contiguous answers, and a dense word frame for heavily
//! populated answers.  The encoder picks the cheapest per set; decoders
//! accept all three.

use std::fmt;
use std::io::{self, Read, Write};

use subzero::model::{Direction, Granularity, StorageStrategy};
use subzero_array::{CellSet, Coord, Shape, MAX_NDIM};
use subzero_engine::lineage::RegionPair;
use subzero_engine::workflow::OpId;
use subzero_engine::LineageMode;
use subzero_store::codec::{read_varint, write_varint, CodecError};

/// Hard cap on one frame's payload size.  Large ingests should be split
/// into multiple `StoreBatch` frames well before this.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Hard cap on the number of cells of any *single* shape travelling over
/// the wire (bounds the index space one decoded [`CellSet`] ranges over).
pub const MAX_WIRE_CELLS: usize = 1 << 28;

/// Per-frame budget, in **bits of decoded container footprint**, shared by
/// every cell set one frame decodes.
///
/// A [`CellSet`] is an adaptive chunked container: an empty set allocates
/// nothing and a full-array answer is a handful of runs, so (unlike the
/// old one-dense-bitmap-per-set representation) a set's decoded memory is
/// governed by its *content*, not its declared shape.  The decoder charges
/// that content as it goes — 16 bits per sparse cell, 32 bits per run, 64
/// bits per dense word — and then charges each finished set's actual
/// [`CellSet::size_bytes`] footprint, which also covers the chunk-table
/// and container-promotion overheads an adversarial encoding could
/// otherwise multiply (e.g. thousands of one-word dense frames each
/// targeting the highest chunk of a maximum-size shape).  A frame whose
/// sets' combined footprint would exceed this budget is rejected; the
/// double-counting makes the enforced ceiling conservative (≤ 2× the
/// budget, i.e. ≤ 256 MiB of decoded containers per frame).
pub const MAX_FRAME_CELLS: u64 = 1 << 30;

/// The per-frame decoded-footprint budget shared by every cell set a
/// frame decodes (see [`MAX_FRAME_CELLS`]).
struct CellBudget {
    remaining: u64,
}

impl CellBudget {
    fn new() -> CellBudget {
        CellBudget {
            remaining: MAX_FRAME_CELLS,
        }
    }

    fn charge(&mut self, bits: u64) -> Result<(), ProtocolError> {
        if bits > self.remaining {
            return Err(ProtocolError::Malformed(
                "frame's decoded cell-set footprint exceeds wire cap",
            ));
        }
        self.remaining -= bits;
        Ok(())
    }
}

/// Anything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// Transport failure (including truncation mid-frame).
    Io(io::Error),
    /// A varint or fixed-width field failed to decode.
    Codec(CodecError),
    /// The frame decoded structurally but violated a protocol invariant.
    Malformed(&'static str),
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o error: {e}"),
            ProtocolError::Codec(e) => write!(f, "protocol codec error: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

/// One operator a session registers with the daemon: identity, shapes, and
/// the storage strategies (hence datastores) it materialises.
#[derive(Clone, Debug, PartialEq)]
pub struct OpSpec {
    /// The operator's id within the client's workflow.
    pub op_id: OpId,
    /// Shapes of the operator's input arrays, in input order.
    pub input_shapes: Vec<Shape>,
    /// Shape of the operator's output array.
    pub output_shape: Shape,
    /// One datastore is created per strategy.  Only pair-storing `Full`
    /// strategies are accepted: payload/composite lookups need the
    /// operator's mapping functions, which cannot travel over the wire.
    pub strategies: Vec<StorageStrategy>,
}

/// One traversal step of a remote lookup: cross operator `op_id` from the
/// given query sets, in the given direction, towards input `input_idx`.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupStep {
    /// The operator to cross.
    pub op_id: OpId,
    /// Traversal direction.
    pub direction: Direction,
    /// Which operator input the step traverses.
    pub input_idx: u32,
    /// Per-query cell sets (the shared-batch shape of
    /// [`OpDatastore::lookup_backward_many`](subzero::datastore::OpDatastore::lookup_backward_many)).
    pub queries: Vec<CellSet>,
}

/// Wire form of [`subzero::datastore::LookupOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct WireOutcome {
    /// The step's answer cells.
    pub result: CellSet,
    /// Query cells covered by stored lineage.
    pub covered: CellSet,
    /// Hash entries fetched while answering.
    pub entries_fetched: u64,
    /// Whether the step fell back to a full datastore scan.
    pub scanned: bool,
}

/// Daemon-wide counters reported by [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently open.
    pub sessions: u64,
    /// Number of shard workers.
    pub shards: u64,
    /// `StoreBatch` requests accepted since startup.
    pub store_batches: u64,
    /// Lookup steps served since startup.
    pub lookup_steps: u64,
    /// Ingest batches shed by the `DropNewest` overflow policy.
    pub shed_batches: u64,
    /// Transactions committed (durable `FinishSession` publishes).
    pub commits: u64,
    /// Sessions evicted by the idle-lease sweeper.
    pub evicted_sessions: u64,
}

/// A client-to-daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open (or reattach to) the named session and register its operators.
    OpenSession {
        /// Session name; also the stable prefix of on-disk datastore files,
        /// so reopening the name after a daemon restart recovers the data.
        name: String,
        /// Operators the session stores lineage for.
        ops: Vec<OpSpec>,
    },
    /// Drop the session's in-memory state (on-disk files remain).
    CloseSession {
        /// Session handle from [`Response::SessionOpened`].
        session: u64,
    },
    /// Ingest a batch of region pairs into one operator's datastores.
    StoreBatch {
        /// Session handle.
        session: u64,
        /// Target operator.
        op_id: OpId,
        /// The region pairs to store.
        pairs: Vec<RegionPair>,
    },
    /// Execute a sequence of traversal steps (each batched over queries).
    Lookup {
        /// Session handle.
        session: u64,
        /// Steps, answered independently and returned in order.
        steps: Vec<LookupStep>,
    },
    /// Quiesce the session's ingest and persist every datastore (flush +
    /// sidecar index) — the durability barrier before queries or shutdown.
    FinishSession {
        /// Session handle.
        session: u64,
    },
    /// Fetch daemon-wide counters.
    Stats,
    /// Ask the daemon to shut down gracefully (drain, harvest, exit).
    Shutdown,
}

/// A daemon-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The session is open; use the handle in subsequent requests.
    SessionOpened {
        /// Session handle.
        session: u64,
    },
    /// The session was closed.
    SessionClosed,
    /// Outcome of a `StoreBatch`: `accepted == false` means the batch was
    /// shed by the `DropNewest` policy (never silently).
    BatchStored {
        /// Whether the batch was admitted to the shard queue.
        accepted: bool,
        /// This connection's total shed batches so far.
        shed_total: u64,
    },
    /// Per-step, per-query outcomes of a `Lookup`.
    LookupDone {
        /// `steps[i][q]` answers step `i`'s query `q`.
        steps: Vec<Vec<WireOutcome>>,
    },
    /// The session's stores are flushed and their indexes persisted.
    SessionFinished {
        /// This connection's total shed batches so far.
        shed_total: u64,
    },
    /// Daemon-wide counters.
    Stats(ServerStats),
    /// Acknowledges a `Shutdown`; the daemon exits after draining.
    ShuttingDown,
    /// The request failed; the connection remains usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload.  Returns `Ok(None)` on clean EOF at a frame
/// boundary; EOF *inside* a frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ProtocolError::Malformed("eof inside frame length"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------------
// Scalar encodings
// ---------------------------------------------------------------------------

/// Reads an element count and guards it against the bytes actually left in
/// the frame (each element needs at least `min_elem_bytes`), so a corrupt
/// count can never drive an oversized allocation.
fn read_count(buf: &[u8], pos: &mut usize, min_elem_bytes: usize) -> Result<usize, ProtocolError> {
    let n = read_varint(buf, pos)?;
    let remaining = buf.len() - *pos;
    let max = remaining / min_elem_bytes.max(1);
    if n > max as u64 {
        return Err(ProtocolError::Malformed("element count exceeds frame size"));
    }
    Ok(n as usize)
}

fn write_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn read_bool(buf: &[u8], pos: &mut usize) -> Result<bool, ProtocolError> {
    match read_u8(buf, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ProtocolError::Malformed("boolean byte out of range")),
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, ProtocolError> {
    let b = *buf
        .get(*pos)
        .ok_or(ProtocolError::Codec(CodecError::UnexpectedEof))?;
    *pos += 1;
    Ok(b)
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(buf: &[u8], pos: &mut usize) -> Result<String, ProtocolError> {
    let len = read_count(buf, pos, 1)?;
    let bytes = &buf[*pos..*pos + len];
    *pos += len;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ProtocolError::Malformed("string is not valid utf-8"))
}

fn write_shape(out: &mut Vec<u8>, shape: &Shape) {
    write_varint(out, shape.ndim() as u64);
    for &d in shape.dims() {
        write_varint(out, u64::from(d));
    }
}

fn read_shape(buf: &[u8], pos: &mut usize) -> Result<Shape, ProtocolError> {
    let ndim = read_varint(buf, pos)?;
    if ndim == 0 || ndim > MAX_NDIM as u64 {
        return Err(ProtocolError::Malformed("shape rank out of range"));
    }
    let mut dims = [0u32; MAX_NDIM];
    let mut cells: u64 = 1;
    for d in dims.iter_mut().take(ndim as usize) {
        let v = read_varint(buf, pos)?;
        if v == 0 || v > u64::from(u32::MAX) {
            return Err(ProtocolError::Malformed("shape dimension out of range"));
        }
        *d = v as u32;
        cells = cells.saturating_mul(v);
    }
    if cells > MAX_WIRE_CELLS as u64 {
        return Err(ProtocolError::Malformed(
            "shape cell count exceeds wire cap",
        ));
    }
    Ok(Shape::new(&dims[..ndim as usize]))
}

fn write_coord(out: &mut Vec<u8>, c: &Coord) {
    write_varint(out, c.ndim() as u64);
    for &v in c.as_slice() {
        write_varint(out, u64::from(v));
    }
}

fn read_coord(buf: &[u8], pos: &mut usize) -> Result<Coord, ProtocolError> {
    let ndim = read_varint(buf, pos)?;
    if ndim == 0 || ndim > MAX_NDIM as u64 {
        return Err(ProtocolError::Malformed("coord rank out of range"));
    }
    let mut vals = [0u32; MAX_NDIM];
    for v in vals.iter_mut().take(ndim as usize) {
        let x = read_varint(buf, pos)?;
        if x > u64::from(u32::MAX) {
            return Err(ProtocolError::Malformed("coord component out of range"));
        }
        *v = x as u32;
    }
    Ok(Coord::new(&vals[..ndim as usize]))
}

fn write_coords(out: &mut Vec<u8>, coords: &[Coord]) {
    write_varint(out, coords.len() as u64);
    for c in coords {
        write_coord(out, c);
    }
}

fn read_coords(buf: &[u8], pos: &mut usize) -> Result<Vec<Coord>, ProtocolError> {
    // A coord is at least two bytes (rank varint + one component varint).
    let n = read_count(buf, pos, 2)?;
    let mut coords = Vec::with_capacity(n);
    for _ in 0..n {
        coords.push(read_coord(buf, pos)?);
    }
    Ok(coords)
}

/// Cell-set encoding tags: the byte after the shape selects how the
/// members are laid out.
const CELLSET_SPARSE: u8 = 0;
const CELLSET_RUNS: u8 = 1;
const CELLSET_DENSE: u8 = 2;

/// Sets the bits `start .. start + len` (frame-relative) in `words`.
fn fill_words(words: &mut [u64], start: usize, len: usize) {
    let last = start + len - 1;
    let (ws, wl) = (start / 64, last / 64);
    let head = u64::MAX << (start % 64);
    let tail = u64::MAX >> (63 - last % 64);
    if ws == wl {
        words[ws] |= head & tail;
    } else {
        words[ws] |= head;
        for w in &mut words[ws + 1..wl] {
            *w = u64::MAX;
        }
        words[wl] |= tail;
    }
}

/// Cell sets travel as their shape, an encoding tag, and the members in
/// whichever of three layouts is smallest for this set (the encoder
/// estimates each and picks; decoders accept all three):
///
/// * **sparse** (`0`): cell count, then the strictly-increasing linear
///   indices delta-encoded — first index verbatim, then gap minus one.
/// * **runs** (`1`): run count, then per maximal run a start delta (first
///   run's start verbatim, then the gap from the previous run's exclusive
///   end minus one) and the run length minus one.  A full-array answer is
///   one run, ~5 bytes.
/// * **dense** (`2`): first word index, word count, then that many raw
///   little-endian `u64` words of the linear-index bitmap.
fn write_cellset(out: &mut Vec<u8>, cs: &CellSet) {
    let shape = cs.shape();
    write_shape(out, &shape);
    let n = cs.len();
    let Some((first, last)) = cs.bounds_linear() else {
        out.push(CELLSET_SPARSE);
        write_varint(out, 0);
        return;
    };
    let nruns = cs.run_count();
    let (fw, lw) = (first / 64, last / 64);
    let nwords = lw - fw + 1;
    // Size estimates: sparse deltas are usually 1–2 bytes, run headers
    // ~2–5 bytes, dense words exactly 8 plus a small header.
    let sparse_est = 2 + 2 * n;
    let runs_est = 2 + 5 * nruns;
    let dense_est = 12 + 8 * nwords;
    if runs_est <= sparse_est && runs_est <= dense_est {
        out.push(CELLSET_RUNS);
        write_varint(out, nruns as u64);
        let mut prev_end: u64 = 0; // exclusive end of the previous run
        let mut first_run = true;
        for (s, l) in cs.runs() {
            let delta = if first_run { s } else { s - prev_end - 1 };
            write_varint(out, delta);
            write_varint(out, l - 1);
            prev_end = s + l;
            first_run = false;
        }
    } else if dense_est < sparse_est {
        out.push(CELLSET_DENSE);
        write_varint(out, fw as u64);
        write_varint(out, nwords as u64);
        let mut words = vec![0u64; nwords];
        for (s, l) in cs.runs() {
            fill_words(&mut words, s as usize - fw * 64, l as usize);
        }
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    } else {
        out.push(CELLSET_SPARSE);
        write_varint(out, n as u64);
        let mut prev: Option<usize> = None;
        for idx in cs.iter_linear() {
            let delta = match prev {
                None => idx as u64,
                Some(p) => (idx - p - 1) as u64,
            };
            write_varint(out, delta);
            prev = Some(idx);
        }
    }
}

fn read_cellset(
    buf: &[u8],
    pos: &mut usize,
    budget: &mut CellBudget,
) -> Result<CellSet, ProtocolError> {
    let shape = read_shape(buf, pos)?;
    let num_cells = shape.num_cells();
    let kind = read_u8(buf, pos)?;
    let cs = match kind {
        CELLSET_SPARSE => {
            let n = read_count(buf, pos, 1)?;
            if n > num_cells {
                return Err(ProtocolError::Malformed("cell count exceeds shape"));
            }
            // Decoded sparse cells cost ~16 bits each until a chunk
            // promotes; promotion (at 4096 cells/chunk) never exceeds
            // this floor.
            budget.charge(16 * n as u64)?;
            let mut cs = CellSet::empty(shape);
            let mut prev: Option<usize> = None;
            for _ in 0..n {
                let delta = read_varint(buf, pos)?;
                let idx = match prev {
                    None => delta,
                    Some(p) => (p as u64)
                        .checked_add(1)
                        .and_then(|x| x.checked_add(delta))
                        .ok_or(ProtocolError::Malformed("cell index overflows"))?,
                };
                if idx >= num_cells as u64 {
                    return Err(ProtocolError::Malformed("cell index exceeds shape"));
                }
                cs.insert_linear(idx as usize);
                prev = Some(idx as usize);
            }
            cs
        }
        CELLSET_RUNS => {
            // Each run is at least two varint bytes on the wire and ~32
            // bits decoded.
            let nruns = read_count(buf, pos, 2)?;
            budget.charge(32 * nruns as u64)?;
            let mut cs = CellSet::empty(shape);
            let mut prev_end: u64 = 0; // exclusive
            let mut first_run = true;
            for _ in 0..nruns {
                let delta = read_varint(buf, pos)?;
                let len_m1 = read_varint(buf, pos)?;
                let start = if first_run {
                    delta
                } else {
                    prev_end
                        .checked_add(1)
                        .and_then(|x| x.checked_add(delta))
                        .ok_or(ProtocolError::Malformed("cell index overflows"))?
                };
                let last = start
                    .checked_add(len_m1)
                    .ok_or(ProtocolError::Malformed("cell index overflows"))?;
                if last >= num_cells as u64 {
                    return Err(ProtocolError::Malformed("cell index exceeds shape"));
                }
                cs.insert_span(start as usize, len_m1 as usize + 1);
                prev_end = last + 1;
                first_run = false;
            }
            cs
        }
        CELLSET_DENSE => {
            let fw = read_varint(buf, pos)?;
            // Each word is exactly eight raw bytes.
            let nwords = read_count(buf, pos, 8)?;
            budget.charge(64 * nwords as u64)?;
            let total_words = num_cells.div_ceil(64) as u64;
            let end_word = fw
                .checked_add(nwords as u64)
                .ok_or(ProtocolError::Malformed("cell index overflows"))?;
            if end_word > total_words {
                return Err(ProtocolError::Malformed("cell index exceeds shape"));
            }
            let mut cs = CellSet::empty(shape);
            for i in 0..nwords {
                let Some(bytes) = buf.get(*pos..*pos + 8) else {
                    return Err(ProtocolError::Codec(CodecError::UnexpectedEof));
                };
                let mut arr = [0u8; 8];
                arr.copy_from_slice(bytes);
                *pos += 8;
                let w = u64::from_le_bytes(arr);
                let word_idx = fw as usize + i;
                // Bits past the end of the shape must be zero.
                let base = word_idx * 64;
                if base + 64 > num_cells {
                    let allowed = (1u64 << (num_cells - base)) - 1;
                    if w & !allowed != 0 {
                        return Err(ProtocolError::Malformed("cell index exceeds shape"));
                    }
                }
                if w != 0 {
                    cs.insert_word(word_idx, w);
                }
            }
            cs.optimize();
            cs
        }
        _ => return Err(ProtocolError::Malformed("unknown cell-set encoding")),
    };
    // Charge the set's actual decoded footprint on top of the per-element
    // floors above: this is what bounds chunk-table and promotion overhead
    // for adversarial encodings (see MAX_FRAME_CELLS).
    budget.charge(cs.size_bytes() as u64 * 8)?;
    Ok(cs)
}

fn mode_code(mode: LineageMode) -> u8 {
    match mode {
        LineageMode::Full => 0,
        LineageMode::Map => 1,
        LineageMode::Pay => 2,
        LineageMode::Comp => 3,
        LineageMode::Blackbox => 4,
    }
}

fn mode_from(code: u8) -> Result<LineageMode, ProtocolError> {
    Ok(match code {
        0 => LineageMode::Full,
        1 => LineageMode::Map,
        2 => LineageMode::Pay,
        3 => LineageMode::Comp,
        4 => LineageMode::Blackbox,
        _ => return Err(ProtocolError::Malformed("unknown lineage mode")),
    })
}

fn direction_code(d: Direction) -> u8 {
    match d {
        Direction::Backward => 0,
        Direction::Forward => 1,
    }
}

fn direction_from(code: u8) -> Result<Direction, ProtocolError> {
    Ok(match code {
        0 => Direction::Backward,
        1 => Direction::Forward,
        _ => return Err(ProtocolError::Malformed("unknown direction")),
    })
}

fn write_strategy(out: &mut Vec<u8>, s: &StorageStrategy) {
    out.push(mode_code(s.mode));
    out.push(match s.granularity {
        Granularity::One => 0,
        Granularity::Many => 1,
    });
    out.push(direction_code(s.direction));
}

fn read_strategy(buf: &[u8], pos: &mut usize) -> Result<StorageStrategy, ProtocolError> {
    let mode = mode_from(read_u8(buf, pos)?)?;
    let granularity = match read_u8(buf, pos)? {
        0 => Granularity::One,
        1 => Granularity::Many,
        _ => return Err(ProtocolError::Malformed("unknown granularity")),
    };
    let direction = direction_from(read_u8(buf, pos)?)?;
    let s = StorageStrategy {
        mode,
        granularity,
        direction,
    };
    if s.validate().is_err() {
        return Err(ProtocolError::Malformed("invalid storage strategy"));
    }
    Ok(s)
}

fn write_region_pair(out: &mut Vec<u8>, pair: &RegionPair) {
    match pair {
        RegionPair::Full { outcells, incells } => {
            out.push(0);
            write_coords(out, outcells);
            write_varint(out, incells.len() as u64);
            for cells in incells {
                write_coords(out, cells);
            }
        }
        RegionPair::Payload { outcells, payload } => {
            out.push(1);
            write_coords(out, outcells);
            write_varint(out, payload.len() as u64);
            out.extend_from_slice(payload);
        }
    }
}

fn read_region_pair(buf: &[u8], pos: &mut usize) -> Result<RegionPair, ProtocolError> {
    match read_u8(buf, pos)? {
        0 => {
            let outcells = read_coords(buf, pos)?;
            let n_inputs = read_count(buf, pos, 1)?;
            let mut incells = Vec::with_capacity(n_inputs);
            for _ in 0..n_inputs {
                incells.push(read_coords(buf, pos)?);
            }
            Ok(RegionPair::Full { outcells, incells })
        }
        1 => {
            let outcells = read_coords(buf, pos)?;
            let len = read_count(buf, pos, 1)?;
            let payload = buf[*pos..*pos + len].to_vec();
            *pos += len;
            Ok(RegionPair::Payload { outcells, payload })
        }
        _ => Err(ProtocolError::Malformed("unknown region pair tag")),
    }
}

fn write_op_spec(out: &mut Vec<u8>, spec: &OpSpec) {
    write_varint(out, u64::from(spec.op_id));
    write_varint(out, spec.input_shapes.len() as u64);
    for s in &spec.input_shapes {
        write_shape(out, s);
    }
    write_shape(out, &spec.output_shape);
    write_varint(out, spec.strategies.len() as u64);
    for s in &spec.strategies {
        write_strategy(out, s);
    }
}

fn read_op_spec(buf: &[u8], pos: &mut usize) -> Result<OpSpec, ProtocolError> {
    let op_id = read_varint(buf, pos)?;
    if op_id > u64::from(u32::MAX) {
        return Err(ProtocolError::Malformed("operator id out of range"));
    }
    let n_inputs = read_count(buf, pos, 2)?;
    let mut input_shapes = Vec::with_capacity(n_inputs);
    for _ in 0..n_inputs {
        input_shapes.push(read_shape(buf, pos)?);
    }
    let output_shape = read_shape(buf, pos)?;
    let n_strategies = read_count(buf, pos, 3)?;
    let mut strategies = Vec::with_capacity(n_strategies);
    for _ in 0..n_strategies {
        strategies.push(read_strategy(buf, pos)?);
    }
    Ok(OpSpec {
        op_id: op_id as OpId,
        input_shapes,
        output_shape,
        strategies,
    })
}

fn write_lookup_step(out: &mut Vec<u8>, step: &LookupStep) {
    write_varint(out, u64::from(step.op_id));
    out.push(direction_code(step.direction));
    write_varint(out, u64::from(step.input_idx));
    write_varint(out, step.queries.len() as u64);
    for q in &step.queries {
        write_cellset(out, q);
    }
}

fn read_lookup_step(
    buf: &[u8],
    pos: &mut usize,
    budget: &mut CellBudget,
) -> Result<LookupStep, ProtocolError> {
    let op_id = read_varint(buf, pos)?;
    if op_id > u64::from(u32::MAX) {
        return Err(ProtocolError::Malformed("operator id out of range"));
    }
    let direction = direction_from(read_u8(buf, pos)?)?;
    let input_idx = read_varint(buf, pos)?;
    if input_idx > u64::from(u32::MAX) {
        return Err(ProtocolError::Malformed("input index out of range"));
    }
    let n_queries = read_count(buf, pos, 2)?;
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        queries.push(read_cellset(buf, pos, budget)?);
    }
    Ok(LookupStep {
        op_id: op_id as OpId,
        direction,
        input_idx: input_idx as u32,
        queries,
    })
}

fn write_outcome(out: &mut Vec<u8>, o: &WireOutcome) {
    write_cellset(out, &o.result);
    write_cellset(out, &o.covered);
    write_varint(out, o.entries_fetched);
    write_bool(out, o.scanned);
}

fn read_outcome(
    buf: &[u8],
    pos: &mut usize,
    budget: &mut CellBudget,
) -> Result<WireOutcome, ProtocolError> {
    Ok(WireOutcome {
        result: read_cellset(buf, pos, budget)?,
        covered: read_cellset(buf, pos, budget)?,
        entries_fetched: read_varint(buf, pos)?,
        scanned: read_bool(buf, pos)?,
    })
}

// ---------------------------------------------------------------------------
// Message encodings
// ---------------------------------------------------------------------------

const REQ_OPEN: u8 = 1;
const REQ_CLOSE: u8 = 2;
const REQ_STORE: u8 = 3;
const REQ_LOOKUP: u8 = 4;
const REQ_FINISH: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_SHUTDOWN: u8 = 7;

const RESP_OPENED: u8 = 128;
const RESP_CLOSED: u8 = 129;
const RESP_STORED: u8 = 130;
const RESP_LOOKUP: u8 = 131;
const RESP_FINISHED: u8 = 132;
const RESP_STATS: u8 = 133;
const RESP_SHUTDOWN: u8 = 134;
const RESP_ERROR: u8 = 135;

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::OpenSession { name, ops } => {
            out.push(REQ_OPEN);
            write_string(&mut out, name);
            write_varint(&mut out, ops.len() as u64);
            for spec in ops {
                write_op_spec(&mut out, spec);
            }
        }
        Request::CloseSession { session } => {
            out.push(REQ_CLOSE);
            write_varint(&mut out, *session);
        }
        Request::StoreBatch {
            session,
            op_id,
            pairs,
        } => {
            out.push(REQ_STORE);
            write_varint(&mut out, *session);
            write_varint(&mut out, u64::from(*op_id));
            write_varint(&mut out, pairs.len() as u64);
            for p in pairs {
                write_region_pair(&mut out, p);
            }
        }
        Request::Lookup { session, steps } => {
            out.push(REQ_LOOKUP);
            write_varint(&mut out, *session);
            write_varint(&mut out, steps.len() as u64);
            for s in steps {
                write_lookup_step(&mut out, s);
            }
        }
        Request::FinishSession { session } => {
            out.push(REQ_FINISH);
            write_varint(&mut out, *session);
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
    }
    out
}

/// Decodes a frame payload into a request.
pub fn decode_request(buf: &[u8]) -> Result<Request, ProtocolError> {
    let mut pos = 0;
    let tag = read_u8(buf, &mut pos)?;
    let req = match tag {
        REQ_OPEN => {
            let name = read_string(buf, &mut pos)?;
            let n = read_count(buf, &mut pos, 4)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(read_op_spec(buf, &mut pos)?);
            }
            Request::OpenSession { name, ops }
        }
        REQ_CLOSE => Request::CloseSession {
            session: read_varint(buf, &mut pos)?,
        },
        REQ_STORE => {
            let session = read_varint(buf, &mut pos)?;
            let op_id = read_varint(buf, &mut pos)?;
            if op_id > u64::from(u32::MAX) {
                return Err(ProtocolError::Malformed("operator id out of range"));
            }
            let n = read_count(buf, &mut pos, 3)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push(read_region_pair(buf, &mut pos)?);
            }
            Request::StoreBatch {
                session,
                op_id: op_id as OpId,
                pairs,
            }
        }
        REQ_LOOKUP => {
            let session = read_varint(buf, &mut pos)?;
            let n = read_count(buf, &mut pos, 4)?;
            let mut budget = CellBudget::new();
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                steps.push(read_lookup_step(buf, &mut pos, &mut budget)?);
            }
            Request::Lookup { session, steps }
        }
        REQ_FINISH => Request::FinishSession {
            session: read_varint(buf, &mut pos)?,
        },
        REQ_STATS => Request::Stats,
        REQ_SHUTDOWN => Request::Shutdown,
        _ => return Err(ProtocolError::Malformed("unknown request tag")),
    };
    if pos != buf.len() {
        return Err(ProtocolError::Malformed("trailing bytes after request"));
    }
    Ok(req)
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::SessionOpened { session } => {
            out.push(RESP_OPENED);
            write_varint(&mut out, *session);
        }
        Response::SessionClosed => out.push(RESP_CLOSED),
        Response::BatchStored {
            accepted,
            shed_total,
        } => {
            out.push(RESP_STORED);
            write_bool(&mut out, *accepted);
            write_varint(&mut out, *shed_total);
        }
        Response::LookupDone { steps } => {
            out.push(RESP_LOOKUP);
            write_varint(&mut out, steps.len() as u64);
            for outcomes in steps {
                write_varint(&mut out, outcomes.len() as u64);
                for o in outcomes {
                    write_outcome(&mut out, o);
                }
            }
        }
        Response::SessionFinished { shed_total } => {
            out.push(RESP_FINISHED);
            write_varint(&mut out, *shed_total);
        }
        Response::Stats(stats) => {
            out.push(RESP_STATS);
            write_varint(&mut out, stats.sessions);
            write_varint(&mut out, stats.shards);
            write_varint(&mut out, stats.store_batches);
            write_varint(&mut out, stats.lookup_steps);
            write_varint(&mut out, stats.shed_batches);
            write_varint(&mut out, stats.commits);
            write_varint(&mut out, stats.evicted_sessions);
        }
        Response::ShuttingDown => out.push(RESP_SHUTDOWN),
        Response::Error { message } => {
            out.push(RESP_ERROR);
            write_string(&mut out, message);
        }
    }
    out
}

/// Decodes a frame payload into a response.
pub fn decode_response(buf: &[u8]) -> Result<Response, ProtocolError> {
    let mut pos = 0;
    let tag = read_u8(buf, &mut pos)?;
    let resp = match tag {
        RESP_OPENED => Response::SessionOpened {
            session: read_varint(buf, &mut pos)?,
        },
        RESP_CLOSED => Response::SessionClosed,
        RESP_STORED => Response::BatchStored {
            accepted: read_bool(buf, &mut pos)?,
            shed_total: read_varint(buf, &mut pos)?,
        },
        RESP_LOOKUP => {
            let n = read_count(buf, &mut pos, 1)?;
            let mut budget = CellBudget::new();
            let mut steps = Vec::with_capacity(n);
            for _ in 0..n {
                let m = read_count(buf, &mut pos, 4)?;
                let mut outcomes = Vec::with_capacity(m);
                for _ in 0..m {
                    outcomes.push(read_outcome(buf, &mut pos, &mut budget)?);
                }
                steps.push(outcomes);
            }
            Response::LookupDone { steps }
        }
        RESP_FINISHED => Response::SessionFinished {
            shed_total: read_varint(buf, &mut pos)?,
        },
        RESP_STATS => Response::Stats(ServerStats {
            sessions: read_varint(buf, &mut pos)?,
            shards: read_varint(buf, &mut pos)?,
            store_batches: read_varint(buf, &mut pos)?,
            lookup_steps: read_varint(buf, &mut pos)?,
            shed_batches: read_varint(buf, &mut pos)?,
            commits: read_varint(buf, &mut pos)?,
            evicted_sessions: read_varint(buf, &mut pos)?,
        }),
        RESP_SHUTDOWN => Response::ShuttingDown,
        RESP_ERROR => Response::Error {
            message: read_string(buf, &mut pos)?,
        },
        _ => return Err(ProtocolError::Malformed("unknown response tag")),
    };
    if pos != buf.len() {
        return Err(ProtocolError::Malformed("trailing bytes after response"));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cellset(shape: Shape, cells: &[&[u32]]) -> CellSet {
        CellSet::from_coords(shape, cells.iter().map(|c| Coord::new(c)))
    }

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::OpenSession {
                name: "run-a".into(),
                ops: vec![OpSpec {
                    op_id: 7,
                    input_shapes: vec![Shape::d2(8, 8), Shape::d1(16)],
                    output_shape: Shape::d2(8, 8),
                    strategies: vec![
                        StorageStrategy::full_many(),
                        StorageStrategy::full_one_forward(),
                    ],
                }],
            },
            Request::CloseSession { session: 3 },
            Request::StoreBatch {
                session: 3,
                op_id: 7,
                pairs: vec![
                    RegionPair::Full {
                        outcells: vec![Coord::d2(1, 2)],
                        incells: vec![vec![Coord::d2(0, 0), Coord::d2(1, 1)], vec![]],
                    },
                    RegionPair::Payload {
                        outcells: vec![Coord::d2(3, 3)],
                        payload: vec![1, 2, 3],
                    },
                ],
            },
            Request::Lookup {
                session: 3,
                steps: vec![LookupStep {
                    op_id: 7,
                    direction: Direction::Backward,
                    input_idx: 1,
                    queries: vec![
                        cellset(Shape::d2(8, 8), &[&[0, 0], &[7, 7]]),
                        cellset(Shape::d2(8, 8), &[]),
                    ],
                }],
            },
            Request::FinishSession { session: 3 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let shape = Shape::d2(4, 4);
        let resps = vec![
            Response::SessionOpened { session: 11 },
            Response::SessionClosed,
            Response::BatchStored {
                accepted: false,
                shed_total: 5,
            },
            Response::LookupDone {
                steps: vec![vec![WireOutcome {
                    result: cellset(shape, &[&[1, 1]]),
                    covered: cellset(shape, &[&[0, 1], &[2, 3]]),
                    entries_fetched: 9,
                    scanned: true,
                }]],
            },
            Response::SessionFinished { shed_total: 0 },
            Response::Stats(ServerStats {
                sessions: 1,
                shards: 4,
                store_batches: 100,
                lookup_steps: 7,
                shed_batches: 2,
                commits: 3,
                evicted_sessions: 1,
            }),
            Response::ShuttingDown,
            Response::Error {
                message: "no such session".into(),
            },
        ];
        for resp in resps {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let req = Request::Lookup {
            session: 1,
            steps: vec![LookupStep {
                op_id: 2,
                direction: Direction::Forward,
                input_idx: 0,
                queries: vec![cellset(Shape::d2(8, 8), &[&[1, 2], &[3, 4]])],
            }],
        };
        let bytes = encode_request(&req);
        for cut in 0..bytes.len() {
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut data = Vec::new();
        data.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        let err = read_frame(&mut data.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::FrameTooLarge(_)));
    }

    #[test]
    fn clean_eof_is_none_and_torn_frame_is_error() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &*empty).unwrap().is_none());
        let torn: &[u8] = &[3, 0, 0, 0, 1];
        assert!(read_frame(&mut &*torn).is_err());
        let half_len: &[u8] = &[3, 0];
        assert!(read_frame(&mut &*half_len).is_err());
    }

    #[test]
    fn every_encoding_kind_round_trips() {
        let shape = Shape::d2(8, 8);
        // Scattered cells pick the sparse frame, a saturated set the run
        // frame, and an every-other-cell set the dense word frame.  The
        // shape of d2(8, 8) encodes in three bytes, so the kind tag is at
        // offset 3.
        let cases = [
            (
                CellSet::from_coords(
                    shape,
                    vec![Coord::d2(0, 0), Coord::d2(2, 1), Coord::d2(7, 7)],
                ),
                CELLSET_SPARSE,
            ),
            (CellSet::full(shape), CELLSET_RUNS),
            (
                CellSet::from_coords(shape, (0..64).step_by(2).map(|i| shape.unravel(i))),
                CELLSET_DENSE,
            ),
        ];
        for (cs, want_kind) in cases {
            let mut buf = Vec::new();
            write_cellset(&mut buf, &cs);
            assert_eq!(buf[3], want_kind, "encoder picked the wrong frame");
            let mut pos = 0;
            let mut budget = CellBudget::new();
            let back = read_cellset(&buf, &mut pos, &mut budget).unwrap();
            assert_eq!(pos, buf.len(), "trailing bytes");
            assert_eq!(back, cs);
        }
    }

    #[test]
    fn huge_empty_and_full_cellsets_decode_cheaply() {
        // Under the old one-bitmap-per-set representation, 64 empty sets
        // declaring a MAX_WIRE_CELLS shape decoded into 64 × 32 MiB of
        // bitmaps and had to be refused outright.  Adaptive containers
        // decode them (and full-array answers) into a few bytes each, so
        // the same packing now sails under the footprint budget.
        let huge = Shape::d2(1 << 14, 1 << 14);
        assert_eq!(huge.num_cells(), MAX_WIRE_CELLS);
        let req = Request::Lookup {
            session: 1,
            steps: vec![LookupStep {
                op_id: 7,
                direction: Direction::Backward,
                input_idx: 0,
                queries: vec![CellSet::empty(huge); 64],
            }],
        };
        let bytes = encode_request(&req);
        assert!(bytes.len() < 1024, "empty sets are ~8 wire bytes each");
        assert_eq!(decode_request(&bytes).unwrap(), req);

        // A full-array answer is one run frame, not a 32 MiB bitmap.
        let full = Request::Lookup {
            session: 1,
            steps: vec![LookupStep {
                op_id: 7,
                direction: Direction::Backward,
                input_idx: 0,
                queries: vec![CellSet::full(huge); 4],
            }],
        };
        let bytes = encode_request(&full);
        assert!(bytes.len() < 256, "full sets are ~15 wire bytes each");
        assert_eq!(decode_request(&bytes).unwrap(), full);
    }

    #[test]
    fn chunk_table_amplification_exhausts_the_frame_budget() {
        // The footprint attack against adaptive containers: a ~20-byte
        // dense frame carrying one word aimed at the *last* chunk of a
        // maximum-size shape forces the decoder to size the set's chunk
        // table for all 4096 chunks (~128 KiB).  Packing thousands of
        // them must trip the decoded-footprint budget, not multiply into
        // gigabytes of chunk tables.
        let huge = Shape::d2(1 << 14, 1 << 14);
        let last_word = (huge.num_cells() / 64 - 1) as u64;
        let n_queries = 2000u64;
        let mut buf = vec![REQ_LOOKUP];
        write_varint(&mut buf, 1); // session
        write_varint(&mut buf, 1); // one step
        write_varint(&mut buf, 7); // op_id
        buf.push(0); // direction
        write_varint(&mut buf, 0); // input_idx
        write_varint(&mut buf, n_queries);
        for _ in 0..n_queries {
            write_shape(&mut buf, &huge);
            buf.push(CELLSET_DENSE);
            write_varint(&mut buf, last_word);
            write_varint(&mut buf, 1); // one word...
            buf.extend_from_slice(&1u64.to_le_bytes()); // ...one bit
        }
        assert!(buf.len() < 64 << 10, "the attack frame itself is tiny");
        let err = decode_request(&buf).unwrap_err();
        assert!(
            matches!(err, ProtocolError::Malformed(m) if m.contains("footprint")),
            "{err}"
        );
        // A handful of the same sets decodes fine.
        let mut ok = vec![REQ_LOOKUP];
        write_varint(&mut ok, 1);
        write_varint(&mut ok, 1);
        write_varint(&mut ok, 7);
        ok.push(0);
        write_varint(&mut ok, 0);
        write_varint(&mut ok, 4);
        for _ in 0..4 {
            write_shape(&mut ok, &huge);
            ok.push(CELLSET_DENSE);
            write_varint(&mut ok, last_word);
            write_varint(&mut ok, 1);
            ok.extend_from_slice(&1u64.to_le_bytes());
        }
        assert!(decode_request(&ok).is_ok());
    }

    #[test]
    fn dense_frames_reject_bits_past_the_shape() {
        // d2(3, 3) has nine cells in one word; bit 9 is out of bounds.
        let shape = Shape::d2(3, 3);
        let mut buf = Vec::new();
        write_shape(&mut buf, &shape);
        buf.push(CELLSET_DENSE);
        write_varint(&mut buf, 0); // first word
        write_varint(&mut buf, 1); // one word
        buf.extend_from_slice(&(1u64 << 9).to_le_bytes());
        let mut pos = 0;
        let mut budget = CellBudget::new();
        let err = read_cellset(&buf, &mut pos, &mut budget).unwrap_err();
        assert!(
            matches!(err, ProtocolError::Malformed(m) if m.contains("exceeds shape")),
            "{err}"
        );
    }

    #[test]
    fn corrupt_counts_do_not_allocate() {
        // A StoreBatch claiming u32::MAX pairs in a 16-byte frame must be
        // rejected by the count guard, not by exhausting memory.
        let mut buf = vec![REQ_STORE];
        write_varint(&mut buf, 1);
        write_varint(&mut buf, 2);
        write_varint(&mut buf, u64::from(u32::MAX));
        assert!(decode_request(&buf).is_err());
    }
}
