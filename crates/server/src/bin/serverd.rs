//! `subzero-serverd` — the lineage daemon binary.
//!
//! ```text
//! subzero-serverd --socket /run/subzero.sock --data-dir /var/lib/subzero \
//!                 [--shards N] [--queue-depth N] [--policy block|drop-newest] \
//!                 [--session-ttl SECS]
//! ```
//!
//! Runs until a client sends the `Shutdown` request, then drains every
//! shard queue, flushes the datastores and persists their sidecar indexes
//! before exiting.

use std::path::PathBuf;
use std::process::ExitCode;

use subzero::capture::OverflowPolicy;
use subzero_server::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: subzero-serverd --socket <path> [--data-dir <dir>] [--shards <n>] \
         [--queue-depth <n>] [--policy block|drop-newest] [--session-ttl <secs>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("subzero-serverd: {name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--socket" => match value("--socket") {
                Some(v) => socket = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--data-dir" => match value("--data-dir") {
                Some(v) => config.data_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--shards" => match value("--shards").and_then(|v| v.parse().ok()) {
                Some(n) => config.shards = n,
                None => return usage(),
            },
            "--queue-depth" => match value("--queue-depth").and_then(|v| v.parse().ok()) {
                Some(n) => config.queue_depth = n,
                None => return usage(),
            },
            "--policy" => match value("--policy").as_deref() {
                Some("block") => config.ingest_policy = OverflowPolicy::Block,
                Some("drop-newest") => config.ingest_policy = OverflowPolicy::DropNewest,
                _ => return usage(),
            },
            "--session-ttl" => match value("--session-ttl").and_then(|v| v.parse().ok()) {
                Some(secs) => {
                    config.session_ttl = Some(std::time::Duration::from_secs(secs));
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(socket) = socket else {
        return usage();
    };
    let server = match Server::start(&socket, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "subzero-serverd: failed to start on {}: {e}",
                socket.display()
            );
            return ExitCode::FAILURE;
        }
    };
    eprintln!("subzero-serverd: listening on {}", socket.display());
    server.wait();
    eprintln!("subzero-serverd: shut down");
    ExitCode::SUCCESS
}
