//! The daemon coordinator: unix-socket accept loop, session registry, and
//! request routing onto the shard workers.
//!
//! One connection handler thread per client reads frames, routes each job
//! to the shard that owns the target operator ([`crate::shard::shard_of`]),
//! and writes the response.  Ingest admission uses the connection's
//! per-shard [`BoundedQueue`] lane with the server's configured
//! [`OverflowPolicy`] — under `Block` a slow shard back-pressures the
//! client through its own socket, under `DropNewest` the batch is shed and
//! the client is told so in the acknowledgement (never silently).  Control
//! and lookup jobs always push with `Block`, so queries and durability
//! barriers are never shed.
//!
//! Multi-step lookups are fanned out: every step is enqueued on its owning
//! shard first, then the coordinator collects the slots in step order and
//! merges them into one response — shards answer concurrently, the client
//! sees deterministic ordering.
//!
//! Shutdown (a client `Shutdown` request, [`Server::shutdown`], or drop)
//! closes every lane, drains the shard queues, and *harvests*: each worker
//! flushes its datastores and persists their sidecar indexes, so a
//! restarted daemon reopens warm.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::Shutdown as SocketShutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use subzero::capture::{BoundedQueue, OverflowPolicy};
use subzero::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use subzero::sync::{lock_or_recover, thread, Mutex};
use subzero_engine::workflow::OpId;
use subzero_store::failpoint;
use subzero_store::wal::{recover_dir, WalRecord, WriteAheadLog};

use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, ServerStats,
};
use crate::shard::{shard_of, worker_loop, Counters, JobSlot, Shard, ShardJob};

/// Tuning knobs of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Root directory for the per-shard datastore directories
    /// (`<dir>/shard<i>/`).  `None` keeps every datastore in memory —
    /// useful for tests, pointless for a daemon meant to survive restarts.
    pub data_dir: Option<PathBuf>,
    /// Number of shard worker threads; operators are hash-partitioned
    /// across them (clamped to at least 1).
    pub shards: usize,
    /// Depth of each per-connection, per-shard job lane.
    pub queue_depth: usize,
    /// What a full lane does with the next *ingest* batch.  Control and
    /// lookup jobs always block instead.
    pub ingest_policy: OverflowPolicy,
    /// Artificial per-ingest-batch stall in the shard workers, emulating a
    /// slow storage device.  Zero (the default) outside saturation tests
    /// and benchmarks.
    pub store_stall: Duration,
    /// Session lease: a session idle (no open/ingest/lookup/finish traffic)
    /// for longer than this is evicted — its shard-side state is dropped
    /// exactly as an explicit `CloseSession` would.  `None` (the default)
    /// keeps sessions forever, the pre-lease behaviour.
    pub session_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            data_dir: None,
            shards: 4,
            queue_depth: 64,
            ingest_policy: OverflowPolicy::Block,
            store_stall: Duration::ZERO,
            session_ttl: None,
        }
    }
}

/// File name of the coordinator's commit log inside `data_dir`.
///
/// The two-phase protocol splits the write-ahead state: each shard's own
/// `wal.log` records *prepares* (which files a transaction flushed, and to
/// what length), while the decision — the single `Commit` record that
/// atomically publishes the transaction across every shard — lives here.
/// On restart the set of committed transaction ids from this log is handed
/// to every shard's recovery as the `extra_committed` set.
pub const COMMIT_WAL: &str = "commit.wal";

/// The coordinator's decision log plus the set of committed transactions
/// whose per-shard checkpoints have not all landed yet.  Both live under
/// one lock so the commit record and the bookkeeping can never disagree.
struct CommitLog {
    wal: WriteAheadLog,
    uncheckpointed: HashSet<u64>,
}

#[derive(Default)]
struct SessionTable {
    by_name: HashMap<String, u64>,
    names: HashMap<u64, String>,
    /// Operators usable per session: only those whose shard-side opens
    /// *all* succeeded are registered, and ingest/lookup admission rejects
    /// targets outside this set — so a batch can never be acknowledged and
    /// then silently dropped at a shard that never opened the operator.
    ops: HashMap<u64, HashSet<OpId>>,
    /// Lease bookkeeping: when each session last saw traffic.  Only
    /// consulted when a session TTL is configured.
    last_active: HashMap<u64, Instant>,
    next: u64,
}

impl SessionTable {
    fn touch(&mut self, session: u64) {
        self.last_active.insert(session, Instant::now());
    }

    fn forget(&mut self, session: u64) -> Option<String> {
        let name = self.names.remove(&session)?;
        self.by_name.remove(&name);
        self.ops.remove(&session);
        self.last_active.remove(&session);
        Some(name)
    }
}

struct Inner {
    socket_path: PathBuf,
    queue_depth: usize,
    ingest_policy: OverflowPolicy,
    shards: Vec<Arc<Shard>>,
    counters: Arc<Counters>,
    sessions: Mutex<SessionTable>,
    shutdown: AtomicBool,
    /// Clones of every live connection's stream, so shutdown can unblock
    /// handlers parked in a blocking read.
    conns: Mutex<Vec<UnixStream>>,
    /// The coordinator's decision log; `None` when serving from memory
    /// (no `data_dir`), in which case `FinishSession` degrades to a plain
    /// flush with transaction id 0.
    commit_log: Option<Mutex<CommitLog>>,
    /// Next transaction id to hand out; seeded past everything the commit
    /// log and the shard WALs have ever seen.
    next_txn: AtomicU64,
    /// Evict sessions idle longer than this (see [`ServerConfig`]).
    session_ttl: Option<Duration>,
}

impl Inner {
    /// Registers a connection for shutdown teardown.  Returns `false` when
    /// the daemon is already shutting down (the connection is refused);
    /// flag and registry are checked under one lock so a concurrent
    /// shutdown can never miss a just-registered stream.
    fn register_conn(&self, stream: &UnixStream) -> bool {
        let mut conns = lock_or_recover(&self.conns);
        if self.shutdown.load(Ordering::Acquire) {
            return false;
        }
        match stream.try_clone() {
            Ok(clone) => {
                conns.push(clone);
                true
            }
            Err(_) => false,
        }
    }

    fn trigger_shutdown(&self) {
        {
            let conns = lock_or_recover(&self.conns);
            if self.shutdown.swap(true, Ordering::AcqRel) {
                return;
            }
            for c in conns.iter() {
                let _ = c.shutdown(SocketShutdown::Both);
            }
        }
        for shard in &self.shards {
            shard.initiate_shutdown();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.socket_path);
    }
}

/// A running daemon instance (the library form of `subzero-serverd`).
///
/// Dropping the handle shuts the daemon down gracefully: lanes close,
/// shards drain, datastores are flushed and their indexes persisted.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
    sweeper: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `socket_path` and starts the shard workers and accept loop.
    /// A stale socket file from a previous (crashed) daemon is replaced.
    pub fn start(socket_path: impl Into<PathBuf>, config: ServerConfig) -> io::Result<Server> {
        let socket_path = socket_path.into();
        if socket_path.exists() {
            std::fs::remove_file(&socket_path)?;
        }
        let nshards = config.shards.max(1);
        let mut commit_log = None;
        let mut next_txn = 1u64;
        if let Some(dir) = &config.data_dir {
            std::fs::create_dir_all(dir)?;
            // Crash recovery, before any worker touches a file.  The
            // decision log names the committed transactions; each shard's
            // recovery rolls its `.kv` files back to the last committed
            // lengths, treating prepares whose decision landed only in the
            // coordinator's log as committed.
            let mut commit_wal = WriteAheadLog::open(dir.join(COMMIT_WAL))?;
            let committed = commit_wal.committed_txns();
            next_txn = commit_wal.next_txn();
            for i in 0..nshards {
                let shard_dir = dir.join(format!("shard{i}"));
                std::fs::create_dir_all(&shard_dir)?;
                let (shard_wal, report) = recover_dir(&shard_dir, Some(&committed))?;
                next_txn = next_txn.max(shard_wal.next_txn());
                if report.truncated + report.deleted + report.finished_compactions > 0 {
                    eprintln!(
                        "subzero-server: shard {i}: recovered ({} truncated, \
                         {} deleted, {} compactions finished)",
                        report.truncated, report.deleted, report.finished_compactions
                    );
                }
            }
            // Every decided transaction is now folded into the shard
            // baselines (recovery ends each shard WAL with a healing
            // checkpoint), so the decision log restarts empty.
            commit_wal.checkpoint(&[], next_txn, Vec::new())?;
            commit_log = Some(Mutex::new(CommitLog {
                wal: commit_wal,
                uncheckpointed: HashSet::new(),
            }));
        }
        let counters = Arc::new(Counters::default());
        let shards: Vec<Arc<Shard>> = (0..nshards)
            .map(|i| {
                Shard::new(
                    i,
                    config
                        .data_dir
                        .as_ref()
                        .map(|d| d.join(format!("shard{i}"))),
                    config.store_stall,
                    Arc::clone(&counters),
                )
            })
            .collect();
        let workers = shards
            .iter()
            .map(|s| {
                let shard = Arc::clone(s);
                thread::spawn(move || worker_loop(shard))
            })
            .collect();
        let listener = UnixListener::bind(&socket_path)?;
        let inner = Arc::new(Inner {
            socket_path,
            queue_depth: config.queue_depth,
            ingest_policy: config.ingest_policy,
            shards,
            counters,
            sessions: Mutex::new(SessionTable::default()),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            commit_log,
            next_txn: AtomicU64::new(next_txn),
            session_ttl: config.session_ttl,
        });
        let handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let inner = Arc::clone(&inner);
            let handlers = Arc::clone(&handlers);
            thread::spawn(move || accept_loop(listener, inner, handlers))
        };
        let sweeper = inner.session_ttl.map(|ttl| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || lease_sweeper(inner, ttl))
        });
        Ok(Server {
            inner,
            accept: Some(accept),
            workers,
            handlers,
            sweeper,
        })
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.inner.socket_path
    }

    /// Initiates a graceful shutdown without waiting for it.
    pub fn shutdown(&self) {
        self.inner.trigger_shutdown();
    }

    /// Blocks until the daemon has shut down (a client `Shutdown` request
    /// or a concurrent [`shutdown`](Server::shutdown) call) and every
    /// worker has harvested its datastores.
    pub fn wait(mut self) {
        self.finish();
    }

    /// [`shutdown`](Server::shutdown) then [`wait`](Server::wait).
    pub fn shutdown_and_wait(self) {
        self.inner.trigger_shutdown();
        self.wait();
    }

    fn finish(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        loop {
            let drained: Vec<thread::JoinHandle<()>> = {
                let mut handlers = lock_or_recover(&self.handlers);
                handlers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(&self.inner.socket_path);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.trigger_shutdown();
        self.finish();
    }
}

fn accept_loop(
    listener: UnixListener,
    inner: Arc<Inner>,
    handlers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if !inner.register_conn(&stream) {
            break;
        }
        let conn_inner = Arc::clone(&inner);
        let handle = thread::spawn(move || handle_connection(conn_inner, stream));
        let mut registry = lock_or_recover(&handlers);
        // Reap finished handlers while we hold the lock anyway, so a
        // long-lived daemon serving many short connections doesn't
        // accumulate dead JoinHandles without bound.  Joining a finished
        // thread returns immediately.
        let mut i = 0;
        while i < registry.len() {
            if registry[i].is_finished() {
                let _ = registry.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        registry.push(handle);
    }
}

/// Lease enforcement: periodically evicts sessions idle past the TTL.
///
/// The sweeper owns its own per-shard job lanes (exactly like a connection
/// handler) and pushes the same `Close` jobs an explicit `CloseSession`
/// would, so eviction and client-driven close share one code path on the
/// shards.  Expiry is re-checked under the session lock immediately before
/// unregistering, so a request that touches the session in the meantime
/// wins and the lease renews.
fn lease_sweeper(inner: Arc<Inner>, ttl: Duration) {
    let lanes: Vec<Arc<BoundedQueue<ShardJob>>> = inner
        .shards
        .iter()
        .map(|shard| {
            let queue = Arc::new(BoundedQueue::new(inner.queue_depth, OverflowPolicy::Block));
            shard.register_lane(Arc::clone(&queue));
            queue
        })
        .collect();
    // Sleep in short steps so shutdown never waits on a long TTL.
    let step = ttl
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(1));
    let mut last_sweep = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        thread::sleep(step);
        if last_sweep.elapsed() < ttl.min(Duration::from_millis(500)) {
            continue;
        }
        last_sweep = Instant::now();
        let candidates: Vec<u64> = {
            let table = lock_or_recover(&inner.sessions);
            table
                .last_active
                .iter()
                .filter(|(_, at)| at.elapsed() > ttl)
                .map(|(&s, _)| s)
                .collect()
        };
        for session in candidates {
            let evicted = {
                let mut table = lock_or_recover(&inner.sessions);
                match table.last_active.get(&session) {
                    Some(at) if at.elapsed() > ttl => table.forget(session).is_some(),
                    _ => false,
                }
            };
            if !evicted {
                continue;
            }
            let mut pending = Vec::with_capacity(lanes.len());
            for (shard_idx, queue) in lanes.iter().enumerate() {
                let done = JobSlot::new();
                let job = ShardJob::Close {
                    session,
                    done: Arc::clone(&done),
                };
                if queue.push_with_policy(job, OverflowPolicy::Block).is_ok() {
                    inner.shards[shard_idx].notify();
                    pending.push(done);
                }
            }
            for done in pending {
                done.wait();
            }
            inner
                .counters
                .evicted_sessions
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    for (queue, shard) in lanes.iter().zip(&inner.shards) {
        queue.close();
        shard.notify();
    }
}

/// What the connection loop does after writing a response.
enum After {
    Continue,
    ShutdownServer,
}

fn handle_connection(inner: Arc<Inner>, mut stream: UnixStream) {
    // One job lane per shard, registered for the round-robin sweep.  The
    // lane's own policy is the ingest policy; control jobs override it.
    let lanes: Vec<Arc<BoundedQueue<ShardJob>>> = inner
        .shards
        .iter()
        .map(|shard| {
            let queue = Arc::new(BoundedQueue::new(inner.queue_depth, inner.ingest_policy));
            shard.register_lane(Arc::clone(&queue));
            queue
        })
        .collect();
    let mut shed_total: u64 = 0;
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        // Framing is length-prefixed, so a payload that fails to decode
        // does not desynchronise the stream: report and keep serving.
        let (response, after) = match decode_request(&payload) {
            Ok(request) => handle_request(&inner, &lanes, &mut shed_total, request),
            Err(e) => (
                Response::Error {
                    message: format!("bad request: {e}"),
                },
                After::Continue,
            ),
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            break;
        }
        if let After::ShutdownServer = after {
            inner.trigger_shutdown();
            break;
        }
    }
    // Disconnect: close our lanes so the shard sweeps drop them once
    // drained (any already-admitted ingest still lands).
    for (queue, shard) in lanes.iter().zip(&inner.shards) {
        queue.close();
        shard.notify();
    }
}

/// Pushes a control/lookup job, blocking on a full lane (never shedding).
fn push_control(
    inner: &Inner,
    lanes: &[Arc<BoundedQueue<ShardJob>>],
    shard_idx: usize,
    job: ShardJob,
) -> Result<(), Response> {
    match lanes[shard_idx].push_with_policy(job, OverflowPolicy::Block) {
        Ok(_) => {
            inner.shards[shard_idx].notify();
            Ok(())
        }
        Err(e) => Err(Response::Error {
            message: format!("server is shutting down: {e}"),
        }),
    }
}

fn handle_request(
    inner: &Inner,
    lanes: &[Arc<BoundedQueue<ShardJob>>],
    shed_total: &mut u64,
    request: Request,
) -> (Response, After) {
    let nshards = inner.shards.len();
    let err = |message: String| (Response::Error { message }, After::Continue);
    match request {
        Request::OpenSession { name, ops } => {
            if name.is_empty() {
                return err("session name must not be empty".into());
            }
            let (session, created) = {
                let mut table = lock_or_recover(&inner.sessions);
                match table.by_name.get(&name) {
                    Some(&id) => (id, false),
                    None => {
                        let id = table.next;
                        table.next += 1;
                        table.by_name.insert(name.clone(), id);
                        table.names.insert(id, name.clone());
                        (id, true)
                    }
                }
            };
            let op_ids: Vec<OpId> = ops.iter().map(|spec| spec.op_id).collect();
            let mut pending = Vec::with_capacity(ops.len());
            let mut push_err: Option<Response> = None;
            for spec in ops {
                let shard_idx = shard_of(spec.op_id, nshards);
                let done = JobSlot::new();
                let job = ShardJob::Open {
                    session,
                    name: name.clone(),
                    spec,
                    done: Arc::clone(&done),
                };
                if let Err(resp) = push_control(inner, lanes, shard_idx, job) {
                    push_err = Some(resp);
                    break;
                }
                pending.push(done);
            }
            // Wait for every submitted open before judging the request: a
            // partial failure must never leave the session half-live.
            let mut first_err: Option<String> = None;
            for done in pending {
                if let Err(message) = done.wait() {
                    first_err.get_or_insert(message);
                }
            }
            if push_err.is_none() && first_err.is_none() {
                let mut table = lock_or_recover(&inner.sessions);
                table.ops.entry(session).or_default().extend(op_ids);
                table.touch(session);
                return (Response::SessionOpened { session }, After::Continue);
            }
            // Roll back a session this request created: unregister it and
            // drop whatever ops did open on the shards, so a failed open
            // leaves no live-but-broken session behind.  On a reattach the
            // pre-existing session stays as it was; ops first opened by
            // the failed request are simply never registered, so admission
            // rejects traffic to them.
            if created {
                {
                    let mut table = lock_or_recover(&inner.sessions);
                    table.forget(session);
                }
                let mut closes = Vec::with_capacity(nshards);
                for shard_idx in 0..nshards {
                    let done = JobSlot::new();
                    let job = ShardJob::Close {
                        session,
                        done: Arc::clone(&done),
                    };
                    // A push failure here means shutdown, where the shard
                    // workers drop their state anyway.
                    if push_control(inner, lanes, shard_idx, job).is_ok() {
                        closes.push(done);
                    }
                }
                for done in closes {
                    done.wait();
                }
            }
            match push_err {
                Some(resp) => (resp, After::Continue),
                None => err(first_err.expect("open failed without an error")),
            }
        }
        Request::CloseSession { session } => {
            {
                let mut table = lock_or_recover(&inner.sessions);
                if table.forget(session).is_none() {
                    return err(format!("unknown session {session}"));
                }
            }
            let mut pending = Vec::with_capacity(nshards);
            for shard_idx in 0..nshards {
                let done = JobSlot::new();
                let job = ShardJob::Close {
                    session,
                    done: Arc::clone(&done),
                };
                if let Err(resp) = push_control(inner, lanes, shard_idx, job) {
                    return (resp, After::Continue);
                }
                pending.push(done);
            }
            for done in pending {
                done.wait();
            }
            (Response::SessionClosed, After::Continue)
        }
        Request::StoreBatch {
            session,
            op_id,
            pairs,
        } => {
            {
                let mut table = lock_or_recover(&inner.sessions);
                if !table.names.contains_key(&session) {
                    return err(format!("unknown session {session}"));
                }
                if !table.ops.get(&session).is_some_and(|s| s.contains(&op_id)) {
                    return err(format!("op {op_id} is not registered in session {session}"));
                }
                table.touch(session);
            }
            let shard_idx = shard_of(op_id, nshards);
            let job = ShardJob::Store {
                session,
                op_id,
                pairs,
            };
            match lanes[shard_idx].push(job) {
                Ok(true) => {
                    inner.shards[shard_idx].notify();
                    (
                        Response::BatchStored {
                            accepted: true,
                            shed_total: *shed_total,
                        },
                        After::Continue,
                    )
                }
                Ok(false) => {
                    *shed_total += 1;
                    inner.counters.shed_batches.fetch_add(1, Ordering::Relaxed);
                    (
                        Response::BatchStored {
                            accepted: false,
                            shed_total: *shed_total,
                        },
                        After::Continue,
                    )
                }
                Err(e) => err(format!("server is shutting down: {e}")),
            }
        }
        Request::Lookup { session, steps } => {
            {
                let mut table = lock_or_recover(&inner.sessions);
                if !table.names.contains_key(&session) {
                    return err(format!("unknown session {session}"));
                }
                let registered = table.ops.get(&session);
                for step in &steps {
                    if !registered.is_some_and(|s| s.contains(&step.op_id)) {
                        return err(format!(
                            "op {} is not registered in session {session}",
                            step.op_id
                        ));
                    }
                }
                table.touch(session);
            }
            // Fan out: every step goes to its owning shard first, then the
            // slots are collected in step order — shards work concurrently,
            // the response ordering stays deterministic.
            let mut pending = Vec::with_capacity(steps.len());
            for step in steps {
                let shard_idx = shard_of(step.op_id, nshards);
                let done = JobSlot::new();
                let job = ShardJob::Lookup {
                    session,
                    step,
                    done: Arc::clone(&done),
                };
                if let Err(resp) = push_control(inner, lanes, shard_idx, job) {
                    return (resp, After::Continue);
                }
                pending.push(done);
            }
            let mut merged = Vec::with_capacity(pending.len());
            for done in pending {
                match done.wait() {
                    Ok(outcomes) => merged.push(outcomes),
                    Err(message) => return err(message),
                }
            }
            (Response::LookupDone { steps: merged }, After::Continue)
        }
        Request::FinishSession { session } => {
            {
                let mut table = lock_or_recover(&inner.sessions);
                if !table.names.contains_key(&session) {
                    return err(format!("unknown session {session}"));
                }
                table.touch(session);
            }
            let Some(commit_log) = &inner.commit_log else {
                // In-memory serving: no decision log to write, so the
                // finish is a plain parallel flush (transaction id 0 tells
                // the shards to skip their prepare records).
                let mut pending = Vec::with_capacity(nshards);
                for shard_idx in 0..nshards {
                    let done = JobSlot::new();
                    let job = ShardJob::Finish {
                        session,
                        txn: 0,
                        done: Arc::clone(&done),
                    };
                    if let Err(resp) = push_control(inner, lanes, shard_idx, job) {
                        return (resp, After::Continue);
                    }
                    pending.push(done);
                }
                for done in pending {
                    if let Err(message) = done.wait() {
                        return err(message);
                    }
                }
                return (
                    Response::SessionFinished {
                        shed_total: *shed_total,
                    },
                    After::Continue,
                );
            };
            // Two-phase commit.  Phase one: every shard flushes the
            // session's stores and durably records the prepared lengths in
            // its own WAL.  Shards prepare sequentially so the mid-prepare
            // crash point deterministically leaves some shards prepared and
            // others not — recovery must roll both kinds back, since no
            // decision was written.
            let txn = inner.next_txn.fetch_add(1, Ordering::Relaxed);
            failpoint::crash_if_armed(failpoint::PRE_PREPARE);
            for shard_idx in 0..nshards {
                let done = JobSlot::new();
                let job = ShardJob::Finish {
                    session,
                    txn,
                    done: Arc::clone(&done),
                };
                if let Err(resp) = push_control(inner, lanes, shard_idx, job) {
                    return (resp, After::Continue);
                }
                if let Err(message) = done.wait() {
                    // Abort: no decision record is ever written, so the
                    // prepares already on disk are rolled back on the next
                    // restart, and the client sees the failure.
                    return err(message);
                }
                if shard_idx == 0 {
                    failpoint::crash_if_armed(failpoint::MID_PREPARE);
                }
            }
            // Phase two: the single decision record.  Once this append is
            // synced the transaction is committed on every shard at once;
            // before it, the transaction never happened.
            failpoint::crash_if_armed(failpoint::PRE_COMMIT);
            {
                let mut log = lock_or_recover(commit_log);
                let append = log
                    .wal
                    .append_record(WalRecord::Commit { txn })
                    .and_then(|()| log.wal.sync());
                if let Err(e) = append {
                    return err(format!("write commit record: {e}"));
                }
                log.uncheckpointed.insert(txn);
            }
            inner.counters.commits.fetch_add(1, Ordering::Relaxed);
            failpoint::crash_if_armed(failpoint::POST_COMMIT);
            // Fold the decision into the shard baselines: each shard
            // checkpoints its WAL (retiring this transaction's prepare) and
            // opportunistically compacts the session's stores.  A failure
            // here does NOT fail the request — the commit record is
            // durable, and the next restart folds it instead.
            let mut pending = Vec::with_capacity(nshards);
            for shard_idx in 0..nshards {
                let done = JobSlot::new();
                let job = ShardJob::Checkpoint {
                    session,
                    txn,
                    done: Arc::clone(&done),
                };
                match push_control(inner, lanes, shard_idx, job) {
                    Ok(()) => pending.push(done),
                    Err(_) => break,
                }
            }
            let all_folded =
                pending.len() == nshards && pending.into_iter().all(|done| done.wait().is_ok());
            if all_folded {
                let mut log = lock_or_recover(commit_log);
                log.uncheckpointed.remove(&txn);
                let retain: Vec<WalRecord> = log
                    .uncheckpointed
                    .iter()
                    .map(|&t| WalRecord::Commit { txn: t })
                    .collect();
                let next = inner.next_txn.load(Ordering::Relaxed);
                if let Err(e) = log.wal.checkpoint(&[], next, retain) {
                    eprintln!("subzero-server: commit log checkpoint: {e}");
                    log.uncheckpointed.insert(txn);
                }
            }
            (
                Response::SessionFinished {
                    shed_total: *shed_total,
                },
                After::Continue,
            )
        }
        Request::Stats => {
            let sessions = lock_or_recover(&inner.sessions).names.len() as u64;
            (
                Response::Stats(ServerStats {
                    sessions,
                    shards: nshards as u64,
                    store_batches: inner.counters.store_batches.load(Ordering::Relaxed),
                    lookup_steps: inner.counters.lookup_steps.load(Ordering::Relaxed),
                    shed_batches: inner.counters.shed_batches.load(Ordering::Relaxed),
                    commits: inner.counters.commits.load(Ordering::Relaxed),
                    evicted_sessions: inner.counters.evicted_sessions.load(Ordering::Relaxed),
                }),
                After::Continue,
            )
        }
        Request::Shutdown => (Response::ShuttingDown, After::ShutdownServer),
    }
}
