//! The typed client: a thin request/response wrapper over the unix socket,
//! plus [`RemoteSession`] — a client-side traversal composer that mirrors
//! the in-process query engine edge for edge.
//!
//! [`RemoteSession::backward_many`]/[`forward_many`](RemoteSession::forward_many)
//! derive the same DAG plan as `QuerySession`
//! ([`subzero_engine::paths::backward_plan`] and its forward twin),
//! seed the same per-query frontier, skip the same all-empty edges, issue
//! one batched lookup per edge, and union results identically — which is
//! what makes daemon answers byte-identical to a local `QuerySession` run
//! over the same stored lineage.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use subzero::model::Direction;
use subzero_array::{CellSet, Coord, Shape};
use subzero_engine::lineage::RegionPair;
use subzero_engine::paths::{backward_plan, forward_plan, ArrayNode, Edge};
use subzero_engine::workflow::{InputSource, OpId, Workflow};
use subzero_engine::OpMeta;

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, LookupStep, OpSpec, ProtocolError,
    Request, Response, ServerStats, WireOutcome,
};

/// Anything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon sent something this client cannot decode.
    Protocol(ProtocolError),
    /// The daemon answered with an error response.
    Server(String),
    /// The daemon answered with the wrong response kind, or the client-side
    /// traversal plan could not be derived.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Acknowledgement of one ingest batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchAck {
    /// Whether the batch was admitted (`false` means the daemon's
    /// `DropNewest` policy shed it; resend or accept the lineage hole).
    pub accepted: bool,
    /// The connection's running shed count.
    pub shed_total: u64,
}

/// Connection and request resilience knobs for [`Client::connect_with`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Connection attempts before giving up (clamped to at least 1).
    /// Useful against a daemon that is still binding its socket.
    pub connect_attempts: u32,
    /// Backoff before the second connection attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Socket read/write timeout per request round-trip.  `None` (the
    /// default) blocks indefinitely, which is the right call for ingest
    /// under a `Block` admission policy — back-pressure is not a failure.
    pub request_timeout: Option<Duration>,
    /// Reconnect-and-resend attempts after a transport failure, applied
    /// only to idempotent requests (session open/lookup/stats/close).
    /// Ingest batches and commits are never resent: the daemon may have
    /// applied them before the connection died, and replaying them would
    /// double lineage or double-commit.
    pub request_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_attempts: 5,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_secs(1),
            request_timeout: None,
            request_retries: 0,
        }
    }
}

/// Whether a request can be safely resent on a fresh connection.
fn is_idempotent(request: &Request) -> bool {
    match request {
        // Re-opening a session reattaches; lookups and stats are reads;
        // closing an already-closed session fails loudly but mutates
        // nothing beyond the first attempt.
        Request::OpenSession { .. }
        | Request::Lookup { .. }
        | Request::Stats
        | Request::CloseSession { .. } => true,
        // A replayed batch would double lineage; a replayed finish would
        // commit whatever happens to be staged at the time; a replayed
        // shutdown races the socket teardown.
        Request::StoreBatch { .. } | Request::FinishSession { .. } | Request::Shutdown => false,
    }
}

fn connect_stream(socket_path: &Path, policy: &RetryPolicy) -> io::Result<UnixStream> {
    let attempts = policy.connect_attempts.max(1);
    let mut delay = policy.base_delay.min(policy.max_delay);
    for attempt in 1..=attempts {
        match UnixStream::connect(socket_path) {
            Ok(stream) => {
                stream.set_read_timeout(policy.request_timeout)?;
                stream.set_write_timeout(policy.request_timeout)?;
                return Ok(stream);
            }
            Err(e) if attempt == attempts => return Err(e),
            Err(_) => {
                subzero::sync::thread::sleep(delay);
                delay = (delay * 2).min(policy.max_delay);
            }
        }
    }
    unreachable!("connect loop returns on the last attempt")
}

/// A blocking client for one daemon connection.
///
/// ```
/// use subzero::model::{Direction, StorageStrategy};
/// use subzero_array::{CellSet, Coord, Shape};
/// use subzero_engine::lineage::RegionPair;
/// use subzero_server::{Client, LookupStep, OpSpec, Server};
///
/// // An in-process daemon on a scratch socket (in-memory stores).
/// let dir = std::env::temp_dir().join(format!("subzero-client-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let socket = dir.join("daemon.sock");
/// let server = Server::start(&socket, Default::default()).unwrap();
///
/// let shape = Shape::d2(4, 4);
/// let mut client = Client::connect(&socket).unwrap();
/// let session = client
///     .open_session(
///         "client-doc",
///         vec![OpSpec {
///             op_id: 0,
///             input_shapes: vec![shape],
///             output_shape: shape,
///             strategies: vec![StorageStrategy::full_one()],
///         }],
///     )
///     .unwrap();
///
/// // Store one region pair: output (1, 2) came from input (2, 1).
/// let ack = client
///     .store_batch(
///         session,
///         0,
///         vec![RegionPair::Full {
///             outcells: vec![Coord::d2(1, 2)],
///             incells: vec![vec![Coord::d2(2, 1)]],
///         }],
///     )
///     .unwrap();
/// assert!(ack.accepted);
/// client.finish_session(session).unwrap();
///
/// // Trace the output cell backward over the wire.
/// let outcomes = client
///     .lookup(
///         session,
///         vec![LookupStep {
///             op_id: 0,
///             direction: Direction::Backward,
///             input_idx: 0,
///             queries: vec![CellSet::from_coords(shape, [Coord::d2(1, 2)])],
///         }],
///     )
///     .unwrap();
/// assert_eq!(outcomes[0][0].result.to_coords(), vec![Coord::d2(2, 1)]);
///
/// drop(client);
/// server.shutdown_and_wait();
/// std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct Client {
    stream: UnixStream,
    socket_path: PathBuf,
    policy: RetryPolicy,
}

impl Client {
    /// Connects to a daemon's unix socket in one attempt, with no request
    /// timeout and no retries (the [`RetryPolicy`] fields governing those
    /// are zeroed; see [`connect_with`](Client::connect_with)).
    pub fn connect(socket_path: impl AsRef<Path>) -> io::Result<Client> {
        Client::connect_with(
            socket_path,
            RetryPolicy {
                connect_attempts: 1,
                ..RetryPolicy::default()
            },
        )
    }

    /// Connects with bounded-exponential-backoff connection retries, a
    /// per-request timeout, and transparent reconnect-and-resend for
    /// idempotent requests — all per `policy`.
    pub fn connect_with(socket_path: impl AsRef<Path>, policy: RetryPolicy) -> io::Result<Client> {
        let socket_path = socket_path.as_ref().to_path_buf();
        let stream = connect_stream(&socket_path, &policy)?;
        Ok(Client {
            stream,
            socket_path,
            policy,
        })
    }

    fn call_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match decode_response(&payload)? {
            Response::Error { message } => Err(ClientError::Server(message)),
            resp => Ok(resp),
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut retries_left = if is_idempotent(request) {
            self.policy.request_retries
        } else {
            0
        };
        loop {
            match self.call_once(request) {
                Err(ClientError::Io(_)) if retries_left > 0 => {
                    retries_left -= 1;
                    self.stream = connect_stream(&self.socket_path, &self.policy)?;
                }
                outcome => return outcome,
            }
        }
    }

    /// Opens (or reattaches to) the named session, registering its
    /// operators.  Returns the session handle.
    pub fn open_session(&mut self, name: &str, ops: Vec<OpSpec>) -> Result<u64, ClientError> {
        match self.call(&Request::OpenSession {
            name: name.to_string(),
            ops,
        })? {
            Response::SessionOpened { session } => Ok(session),
            other => Err(ClientError::Unexpected(format!(
                "expected SessionOpened, got {other:?}"
            ))),
        }
    }

    /// Ingests one batch of region pairs into an operator's datastores.
    pub fn store_batch(
        &mut self,
        session: u64,
        op_id: OpId,
        pairs: Vec<RegionPair>,
    ) -> Result<BatchAck, ClientError> {
        match self.call(&Request::StoreBatch {
            session,
            op_id,
            pairs,
        })? {
            Response::BatchStored {
                accepted,
                shed_total,
            } => Ok(BatchAck {
                accepted,
                shed_total,
            }),
            other => Err(ClientError::Unexpected(format!(
                "expected BatchStored, got {other:?}"
            ))),
        }
    }

    /// Executes lookup steps; `result[i][q]` answers step `i`'s query `q`.
    pub fn lookup(
        &mut self,
        session: u64,
        steps: Vec<LookupStep>,
    ) -> Result<Vec<Vec<WireOutcome>>, ClientError> {
        match self.call(&Request::Lookup { session, steps })? {
            Response::LookupDone { steps } => Ok(steps),
            other => Err(ClientError::Unexpected(format!(
                "expected LookupDone, got {other:?}"
            ))),
        }
    }

    /// Quiesces and persists the session's datastores (the durability
    /// barrier).  Returns the connection's total shed-batch count.
    pub fn finish_session(&mut self, session: u64) -> Result<u64, ClientError> {
        match self.call(&Request::FinishSession { session })? {
            Response::SessionFinished { shed_total } => Ok(shed_total),
            other => Err(ClientError::Unexpected(format!(
                "expected SessionFinished, got {other:?}"
            ))),
        }
    }

    /// Drops the session's in-memory state daemon-side.
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        match self.call(&Request::CloseSession { session })? {
            Response::SessionClosed => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected SessionClosed, got {other:?}"
            ))),
        }
    }

    /// Fetches daemon-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Unexpected(format!(
                "expected Stats, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully (drain, harvest, exit).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}

/// The [`ArrayNode`] an operator input edge reads from (the same mapping
/// the in-process query engine applies).
fn array_node_of(src: &InputSource) -> ArrayNode {
    match src {
        InputSource::Operator(op) => ArrayNode::Output(*op),
        InputSource::External(name) => ArrayNode::External(name.clone()),
    }
}

/// Client-side multi-hop traversal over a daemon session.
///
/// Holds the workflow DAG and per-operator metadata (the daemon itself is
/// operator-agnostic beyond shapes), derives plans locally, and issues one
/// batched remote lookup per edge.
pub struct RemoteSession<'a> {
    client: &'a mut Client,
    session: u64,
    workflow: &'a Workflow,
    metas: HashMap<OpId, OpMeta>,
}

impl<'a> RemoteSession<'a> {
    /// Wraps an open session.  `metas` must cover every operator a
    /// traversal can cross.
    pub fn new(
        client: &'a mut Client,
        session: u64,
        workflow: &'a Workflow,
        metas: impl IntoIterator<Item = (OpId, OpMeta)>,
    ) -> Self {
        RemoteSession {
            client,
            session,
            workflow,
            metas: metas.into_iter().collect(),
        }
    }

    /// Traces batches of output cells of `from` back to the array `to`;
    /// one result per batch.
    pub fn backward_many(
        &mut self,
        from: OpId,
        to: &ArrayNode,
        batches: &[Vec<Coord>],
    ) -> Result<Vec<CellSet>, ClientError> {
        let plan = backward_plan(self.workflow, from, to)
            .map_err(|e| ClientError::Unexpected(format!("no backward plan: {e:?}")))?;
        self.run_edges(
            Direction::Backward,
            &plan.edges,
            &ArrayNode::Output(from),
            to,
            batches,
        )
    }

    /// Traces batches of cells of the array `from` forward to the output
    /// of `to`; one result per batch.
    pub fn forward_many(
        &mut self,
        from: &ArrayNode,
        to: OpId,
        batches: &[Vec<Coord>],
    ) -> Result<Vec<CellSet>, ClientError> {
        let plan = forward_plan(self.workflow, from, to)
            .map_err(|e| ClientError::Unexpected(format!("no forward plan: {e:?}")))?;
        self.run_edges(
            Direction::Forward,
            &plan.edges,
            from,
            &ArrayNode::Output(to),
            batches,
        )
    }

    fn array_shape(&self, node: &ArrayNode) -> Result<Shape, ClientError> {
        match node {
            ArrayNode::Output(op) => self
                .metas
                .get(op)
                .map(|m| m.output_shape)
                .ok_or_else(|| ClientError::Unexpected(format!("no meta for op {op}"))),
            ArrayNode::External(name) => {
                for n in self.workflow.nodes() {
                    for (idx, src) in n.inputs.iter().enumerate() {
                        if matches!(src, InputSource::External(x) if x == name) {
                            let meta = self.metas.get(&n.id).ok_or_else(|| {
                                ClientError::Unexpected(format!("no meta for op {}", n.id))
                            })?;
                            return Ok(meta.input_shapes[idx]);
                        }
                    }
                }
                Err(ClientError::Unexpected(format!(
                    "unknown external array {name:?}"
                )))
            }
        }
    }

    /// The same frontier composition as the in-process engine: seed the
    /// start array, cross each planned edge in order (skipping all-empty
    /// intermediates without a round-trip), union into the target array,
    /// and collect the destination.
    fn run_edges(
        &mut self,
        direction: Direction,
        edges: &[Edge],
        from: &ArrayNode,
        to: &ArrayNode,
        batches: &[Vec<Coord>],
    ) -> Result<Vec<CellSet>, ClientError> {
        let nq = batches.len();
        let from_shape = self.array_shape(from)?;
        let mut frontier: HashMap<ArrayNode, Vec<CellSet>> = HashMap::new();
        frontier.insert(
            from.clone(),
            batches
                .iter()
                .map(|cells| CellSet::from_coords(from_shape, cells.iter().copied()))
                .collect(),
        );
        for &(op_id, input_idx) in edges {
            let node = self
                .workflow
                .node(op_id)
                .map_err(|e| ClientError::Unexpected(format!("bad plan edge: {e:?}")))?;
            let Some(src) = node.inputs.get(input_idx) else {
                return Err(ClientError::Unexpected(format!(
                    "op {op_id} has no input {input_idx}"
                )));
            };
            let side_array = array_node_of(src);
            let (input_node, target_node) = match direction {
                Direction::Backward => (ArrayNode::Output(op_id), side_array),
                Direction::Forward => (side_array, ArrayNode::Output(op_id)),
            };
            let target_shape = self.array_shape(&target_node)?;
            let queries: Option<Vec<CellSet>> = match frontier.get(&input_node) {
                Some(inputs) if !inputs.iter().all(CellSet::is_empty) => Some(inputs.clone()),
                _ => None,
            };
            let entry = frontier
                .entry(target_node)
                .or_insert_with(|| vec![CellSet::empty(target_shape); nq]);
            let Some(queries) = queries else {
                continue;
            };
            let step = LookupStep {
                op_id,
                direction,
                input_idx: input_idx as u32,
                queries,
            };
            let mut outcomes = self.client.lookup(self.session, vec![step])?;
            let outcomes = outcomes
                .pop()
                .ok_or_else(|| ClientError::Unexpected("lookup returned no step results".into()))?;
            if outcomes.len() != nq {
                return Err(ClientError::Unexpected(format!(
                    "lookup returned {} outcomes for {nq} queries",
                    outcomes.len()
                )));
            }
            for (acc, outcome) in entry.iter_mut().zip(&outcomes) {
                acc.union_with(&outcome.result);
            }
        }
        let to_shape = self.array_shape(to)?;
        Ok(frontier
            .remove(to)
            .unwrap_or_else(|| vec![CellSet::empty(to_shape); nq]))
    }
}
