//! The genomics (relapse prediction) workflow end to end, with the lineage
//! strategy chosen automatically by the optimizer under a storage budget —
//! the clinician-visualisation scenario of §II-B.
//!
//! Run with `cargo run --release -p subzero-bench --example genomics_prediction`.

use subzero::SubZero;
use subzero_array::Coord;
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::report::mb;
use subzero_optimizer::{Optimizer, OptimizerConfig, QueryWorkload};

fn main() {
    let config = CohortConfig::default();
    println!(
        "generating a synthetic cohort: {} features x {} patients (training + test)",
        config.features,
        config.patients * config.scale
    );
    let (train, test) = CohortGenerator::new(config).generate();
    let wf = GenomicsWorkflow::build(&config);
    let inputs = GenomicsWorkflow::inputs(train, test);

    // 1. Profiling run: black-box everywhere except the UDFs, which emit
    //    their cheapest pair-producing mode so the optimizer can see pair
    //    counts, fanin/fanout and payload sizes.
    let mut profiler = SubZero::new();
    profiler.set_strategy(Optimizer::profiling_strategy(&wf.workflow));
    let profile_run = profiler.execute(&wf.workflow, &inputs).unwrap();
    let stats: std::collections::HashMap<_, _> = profiler
        .runtime()
        .run_stats(profile_run.run_id)
        .into_iter()
        .map(|(op, s)| (op, s.clone()))
        .collect();

    // 2. Describe the query workload the visualisation will issue (an equal
    //    mix of backward and forward queries) and run the optimizer with a
    //    20 MB lineage budget.
    let sample: Vec<_> = wf
        .queries(&mut profiler, &profile_run)
        .into_iter()
        .map(|nq| (nq.spec, 1.0))
        .collect();
    let workload = QueryWorkload::from_specs(&wf.workflow, &sample);
    let optimizer = Optimizer::new(OptimizerConfig::with_disk_budget_mb(20.0));
    let plan = optimizer.optimize(&wf.workflow, &stats, &workload);
    println!("\noptimizer picked (20 MB budget):");
    for choice in &plan.per_op {
        let labels = if choice.strategies.is_empty() {
            "BlackBox".to_string()
        } else {
            choice
                .strategies
                .iter()
                .map(|s| s.label())
                .collect::<Vec<_>>()
                .join(" + ")
        };
        let name = &wf
            .workflow
            .node(choice.op_id)
            .unwrap()
            .operator
            .name()
            .to_string();
        println!(
            "  {:24} -> {:28} (predicted {:>8.2} KB, {:.4} s/query)",
            name,
            labels,
            choice.disk_bytes / 1024.0,
            choice.query_secs
        );
    }

    // 3. Re-run the workflow under the chosen strategy and serve queries.
    let mut subzero = SubZero::new();
    subzero.set_strategy(plan.strategy);
    let run = subzero.execute(&wf.workflow, &inputs).unwrap();
    println!(
        "\nexecuted in {:?}; lineage stored: {} MB",
        run.total_elapsed,
        mb(subzero.lineage_bytes(run.run_id))
    );

    let predictions = subzero.engine().output_of(&run, wf.predict_round).unwrap();
    let relapses = predictions.coords_where(|v| v > 0.5);
    println!(
        "predicted relapse for {} of {} patients",
        relapses.len(),
        predictions.shape().cols()
    );

    // Clinician clicks a prediction: why does the model think this patient
    // will relapse?
    let patient = relapses.first().copied().unwrap_or(Coord::d2(0, 0));
    // The session derives the prediction -> model -> training traversal
    // from the DAG.
    let answer = subzero
        .session(&run)
        .backward(vec![patient])
        .from(wf.predict_round)
        .to_source("training")
        .unwrap();
    println!(
        "\nprediction for patient column {} is supported by {} training-matrix cells (query took {:?})",
        patient.get(1),
        answer.cells.len(),
        answer.report.total_elapsed
    );

    // Forward: which predictions would change if one suspicious training
    // value were corrected?
    let answer = subzero
        .session(&run)
        .forward(vec![Coord::d2(1, 0)])
        .from_source("training")
        .to(wf.predict_round)
        .unwrap();
    println!(
        "training cell (feature 1, patient 0) influences {} predictions (query took {:?})",
        answer.cells.len(),
        answer.report.total_elapsed
    );
}
