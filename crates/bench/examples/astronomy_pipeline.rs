//! The astronomy (LSST-style) workflow end to end: generate a synthetic sky,
//! execute the 26-operator pipeline under the paper's `SubZero` strategy
//! (composite lineage for the UDFs), and interactively debug a detected star
//! by walking its lineage back to the raw exposure.
//!
//! Run with `cargo run --release -p subzero-bench --example astronomy_pipeline`.

use subzero::model::{LineageStrategy, StorageStrategy};

use subzero::SubZero;
use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::report::mb;

fn main() {
    let config = SkyConfig::default();
    println!(
        "generating two {} exposures of the same synthetic sky...",
        config.shape
    );
    let (exp1, exp2) = SkyGenerator::new(config).generate();

    let wf = AstronomyWorkflow::build(config.shape);
    println!(
        "built the LSST-style workflow: {} operators ({} built-in mapping operators, {} UDFs)",
        wf.workflow.len(),
        wf.builtins().len(),
        wf.udfs().len()
    );

    // The strategy the paper's optimizer picks for this workload: composite
    // lineage (PayOne-encoded overrides + mapping defaults) for every UDF.
    let mut strategy = LineageStrategy::new();
    for udf in wf.udfs() {
        strategy.set(udf, vec![StorageStrategy::composite_one()]);
    }
    let mut subzero = SubZero::new();
    subzero.set_strategy(strategy);

    let inputs = AstronomyWorkflow::inputs(exp1, exp2);
    let run = subzero.execute(&wf.workflow, &inputs).unwrap();
    println!(
        "executed in {:?}; lineage stored: {} MB (inputs: {} MB, intermediates: {} MB)",
        run.total_elapsed,
        mb(subzero.lineage_bytes(run.run_id)),
        mb(inputs.values().map(|a| a.size_bytes()).sum()),
        mb(subzero.array_bytes()),
    );

    // Find the brightest detected star and trace it back to the first
    // exposure — the paper's motivating debugging scenario.
    let stars = subzero.engine().output_of(&run, wf.star_detect).unwrap();
    let star_cells = stars.coords_where(|v| v > 0.0);
    println!(
        "star detector labelled {} pixels as celestial bodies",
        star_cells.len()
    );
    let Some(&star) = star_cells.first() else {
        println!("no stars detected — try increasing SkyConfig::num_stars");
        return;
    };

    // The session derives the traversal from the DAG: star detector back to
    // the first exposure, fanning out over every path (composite image and
    // cosmic-ray mask) and unioning the per-branch answers.
    let result = subzero
        .session(&run)
        .backward(vec![star])
        .from(wf.star_detect)
        .to_source("exposure1")
        .unwrap();
    println!(
        "\nbackward lineage of star pixel {star}: {} pixels of exposure 1 (query took {:?})",
        result.cells.len(),
        result.report.total_elapsed
    );
    for step in &result.report.steps {
        println!(
            "  op {:2} answered via {:16} -> {:6} cells in {:?}",
            step.op_id,
            step.method.to_string(),
            step.result_cells,
            step.elapsed
        );
    }

    // And the forward direction: did any cosmic-ray pixel leak into the
    // star catalogue?
    let crd = subzero.engine().output_of(&run, wf.crd[0]).unwrap();
    let cr_cells: Vec<_> = crd.coords_where(|v| v > 0.0).into_iter().take(8).collect();
    if !cr_cells.is_empty() {
        let result = subzero
            .session(&run)
            .forward(cr_cells.clone())
            .from(wf.clamp[0])
            .to(wf.star_detect)
            .unwrap();
        let contaminated = result.cells.iter().filter(|c| stars.get(c) > 0.0).count();
        println!(
            "\nforward lineage of {} cosmic-ray pixels reaches {} catalogue pixels ({} inside stars)",
            cr_cells.len(),
            result.cells.len(),
            contaminated
        );
    }
}
