//! Multi-query batching throughput: `backward_many` vs one-at-a-time.
//!
//! The micro workload's synthetic operator is captured under a
//! forward-optimized store and then queried *backward*, so every stored-
//! lineage step degrades to a full datastore scan — the mismatched-direction
//! penalty the ROADMAP calls out.  A batch of N queries answered through
//! [`QuerySession::backward_many`] shares ONE streamed scan (and the decoded
//! entries) across the whole batch, where the one-at-a-time loop pays for N
//! scans; the matched-direction (indexed) configuration is measured alongside
//! for context, over both the in-memory and the append-only-file backends.
//!
//! Prints one line per configuration and writes the full result set,
//! including batched-vs-one-at-a-time speedups, to `BENCH_query.json` at the
//! repository root.  Run with `cargo bench -p subzero-bench --bench query`;
//! `--smoke` runs a seconds-long validity check (used by CI) without
//! touching the JSON.
//!
//! [`QuerySession::backward_many`]: subzero::query::QuerySession::backward_many

use std::path::PathBuf;
use std::time::{Duration, Instant};

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::query::QueryOptions;
use subzero::SubZero;
use subzero_array::{Coord, Shape};
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::timing::Sample;
use subzero_store::codec::{
    decode_cells_at, decode_cells_block, encode_cells_into, pack_coord, ScanFrame,
};

struct Config {
    micro: MicroConfig,
    num_queries: usize,
    cells_per_query: usize,
    target: Duration,
    smoke: bool,
}

fn workload() -> Config {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let micro = MicroConfig {
        shape: if paper_scale {
            Shape::d2(1000, 1000)
        } else if smoke {
            Shape::d2(64, 64)
        } else {
            Shape::d2(300, 300)
        },
        fanin: 10,
        fanout: 1,
        coverage: 0.1,
        seed: 42,
    };
    Config {
        micro,
        num_queries: if smoke { 4 } else { 16 },
        cells_per_query: if smoke { 25 } else { 100 },
        target: Duration::from_millis(if smoke {
            100
        } else if paper_scale {
            4000
        } else {
            2000
        }),
        smoke,
    }
}

struct Row {
    config: String,
    backend: String,
    mode: String,
    queries_per_sec: f64,
    speedup_vs_one_at_a_time: f64,
}

/// One measurement pass: run the batch one-at-a-time or batched, returning
/// the elapsed time and the total result cells (a cross-mode checksum).
fn query_pass(
    sz: &mut SubZero,
    run: &subzero_engine::executor::WorkflowRun,
    op: subzero_engine::OpId,
    batches: &[Vec<subzero_array::Coord>],
    batched: bool,
) -> (Duration, usize) {
    let start = Instant::now();
    let mut checksum = 0usize;
    let mut session = sz.session(run);
    if batched {
        let results = session
            .backward_many(batches.to_vec())
            .from(op)
            .to_source("input")
            .expect("batched queries execute");
        checksum += results.iter().map(|r| r.cells.len()).sum::<usize>();
    } else {
        for cells in batches {
            let result = session
                .backward(cells.clone())
                .from(op)
                .to_source("input")
                .expect("query executes");
            checksum += result.cells.len();
        }
    }
    (start.elapsed(), checksum)
}

/// The scan-decode micro-measurement: legacy per-coord cells-block decoding
/// (`decode_cells_at`, one `Vec<Coord>` per block) vs the columnar decoder
/// (`decode_cells_block`, linear indices into one reused [`ScanFrame`]) over
/// the same synthetic block set — the per-entry work a mismatched-direction
/// scan performs for every stored entry.
struct ScanDecodeRow {
    blocks: usize,
    cells: usize,
    legacy_mcells_per_s: f64,
    columnar_mcells_per_s: f64,
    speedup: f64,
}

fn scan_decode_bench(smoke: bool) -> ScanDecodeRow {
    let shape = Shape::d2(300, 300);
    let num_cells = shape.num_cells() as u64;
    let blocks = if smoke { 64 } else { 1024 };
    let per_block = if smoke { 32 } else { 200 };
    // Deterministic pseudo-random cell picks (LCG), no RNG dependency.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        let coords: Vec<Coord> = (0..per_block)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                shape.unravel((state >> 16) as usize % shape.num_cells())
            })
            .collect();
        let mut buf = Vec::new();
        encode_cells_into(&mut buf, &shape, &coords);
        bufs.push(buf);
    }

    // Parity up front: both decoders must see the same cells.
    let mut frame = ScanFrame::new();
    let mut cells = 0usize;
    for buf in &bufs {
        let mut pos = 0usize;
        let coords = decode_cells_at(&shape, buf, &mut pos).expect("legacy decode");
        let mut cpos = 0usize;
        let run = decode_cells_block(&mut frame, num_cells, buf, &mut cpos).expect("block decode");
        let legacy: Vec<u64> = coords.iter().map(|c| pack_coord(&shape, c)).collect();
        assert_eq!(frame.run(run), legacy.as_slice(), "decoders disagree");
        assert_eq!(cpos, pos, "decoders consumed different bytes");
        cells += legacy.len();
        frame.clear();
    }

    let target = Duration::from_millis(if smoke { 20 } else { 400 });
    let mut totals = [Duration::ZERO; 2];
    let mut iters = [0u64; 2];
    while totals.iter().sum::<Duration>() < target * 2 {
        let start = Instant::now();
        let mut n = 0usize;
        for buf in &bufs {
            let mut pos = 0usize;
            n += decode_cells_at(&shape, buf, &mut pos)
                .expect("legacy decode")
                .len();
        }
        assert_eq!(n, cells);
        totals[0] += start.elapsed();
        iters[0] += 1;

        let start = Instant::now();
        let mut n = 0usize;
        for buf in &bufs {
            let mut pos = 0usize;
            let run =
                decode_cells_block(&mut frame, num_cells, buf, &mut pos).expect("block decode");
            n += frame.run(run).len();
            frame.clear();
        }
        assert_eq!(n, cells);
        totals[1] += start.elapsed();
        iters[1] += 1;
    }
    let mcells = |i: usize| (cells as f64 * iters[i] as f64) / totals[i].as_secs_f64() / 1e6;
    let (legacy_mcells_per_s, columnar_mcells_per_s) = (mcells(0), mcells(1));
    ScanDecodeRow {
        blocks,
        cells,
        legacy_mcells_per_s,
        columnar_mcells_per_s,
        speedup: if legacy_mcells_per_s > 0.0 {
            columnar_mcells_per_s / legacy_mcells_per_s
        } else {
            0.0
        },
    }
}

fn main() {
    let cfg = workload();
    let micro = MicroWorkflow::build(cfg.micro);
    let inputs = micro.inputs();
    let batches = micro.backward_batches(cfg.num_queries, cfg.cells_per_query);
    println!(
        "Multi-query batching — array {}, {} backward queries x {} cells{}\n",
        cfg.micro.shape,
        batches.len(),
        cfg.cells_per_query,
        if cfg.smoke { " (smoke)" } else { "" },
    );

    let scratch = std::env::temp_dir().join(format!("subzero-querybench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // (name, strategy): the mismatched configuration stores forward-optimized
    // lineage and answers backward queries (full scans — the batching
    // headline); the indexed configuration stores backward-optimized lineage
    // (point lookups — batching only shares decoded entries).
    let configs: Vec<(&str, StorageStrategy)> = vec![
        ("mismatched_scan", StorageStrategy::full_one_forward()),
        ("indexed", StorageStrategy::full_one()),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (config_name, strategy) in &configs {
        for backend in ["mem", "file"] {
            let mut sz = match backend {
                "mem" => SubZero::new(),
                _ => SubZero::with_storage_dir(scratch.join(config_name)),
            };
            sz.set_strategy(LineageStrategy::uniform([micro.op], vec![*strategy]));
            let run = sz.execute(&micro.workflow, &inputs).expect("capture run");
            sz.finish_capture(run.run_id);
            // Static execution: pin the stored path so the measurement is
            // scan-vs-shared-scan, not the re-execution fallback.
            sz.set_query_options(QueryOptions {
                entire_array_optimization: true,
                query_time_optimizer: false,
            });

            // Warmup + answer checksum parity between the two modes.
            let (_, one_sum) = query_pass(&mut sz, &run, micro.op, &batches, false);
            let (_, many_sum) = query_pass(&mut sz, &run, micro.op, &batches, true);
            assert_eq!(one_sum, many_sum, "modes disagree on {config_name}");

            // Interleaved passes so drift hits both modes equally.
            let mut totals = [Duration::ZERO; 2];
            let mut iters = [0u64; 2];
            while totals.iter().sum::<Duration>() < cfg.target * 2 {
                for (i, batched) in [(0, false), (1, true)] {
                    let (elapsed, _) = query_pass(&mut sz, &run, micro.op, &batches, batched);
                    totals[i] += elapsed;
                    iters[i] += 1;
                }
            }
            let qps = |i: usize| {
                let per_iter = totals[i].as_secs_f64() / iters[i] as f64;
                batches.len() as f64 / per_iter
            };
            let (one_qps, many_qps) = (qps(0), qps(1));
            for (mode, q) in [("one_at_a_time", one_qps), ("batched", many_qps)] {
                let sample = Sample {
                    name: format!("query/{config_name}/{backend}/{mode}"),
                    iters: iters[if mode == "batched" { 1 } else { 0 }],
                    total: totals[if mode == "batched" { 1 } else { 0 }],
                };
                println!("{}", sample.report());
                rows.push(Row {
                    config: config_name.to_string(),
                    backend: backend.to_string(),
                    mode: mode.to_string(),
                    queries_per_sec: q,
                    speedup_vs_one_at_a_time: if one_qps > 0.0 { q / one_qps } else { 0.0 },
                });
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "\n{:<16} {:>6} {:>15} {:>14} {:>9}",
        "config", "kv", "mode", "queries/sec", "speedup"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>15} {:>14.1} {:>8.2}x",
            r.config, r.backend, r.mode, r.queries_per_sec, r.speedup_vs_one_at_a_time
        );
    }
    let scan_min = rows
        .iter()
        .filter(|r| r.mode == "batched" && r.config == "mismatched_scan")
        .map(|r| r.speedup_vs_one_at_a_time)
        .fold(f64::INFINITY, f64::min);
    println!("\nmismatched-direction batched speedup, min over backends: {scan_min:.2}x");

    let sd = scan_decode_bench(cfg.smoke);
    println!(
        "scan decode: {} blocks / {} cells — legacy {:.1} Mcells/s, columnar {:.1} Mcells/s ({:.2}x)",
        sd.blocks, sd.cells, sd.legacy_mcells_per_s, sd.columnar_mcells_per_s, sd.speedup
    );

    if cfg.smoke {
        println!("smoke run: skipping BENCH_query.json");
        return;
    }
    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::from("{\n");
    // `encode`/`key_dedup` record that capture ran the arena write path with
    // write-side key dedup; `query_fanout_workers` that the batched lookups
    // fanned across the scoped worker threads.
    json.push_str(&format!(
        "  \"workload\": {{\"shape\": \"{}\", \"queries\": {}, \"cells_per_query\": {}, \"fanin\": {}, \"fanout\": {}, \"encode\": \"arena\", \"key_dedup\": true, \"query_fanout_workers\": {}}},\n",
        cfg.micro.shape, batches.len(), cfg.cells_per_query, cfg.micro.fanin, cfg.micro.fanout,
        subzero::parallel::default_workers()
    ));
    json.push_str(&format!(
        "  \"mismatched_scan_min_batched_speedup\": {scan_min:.3},\n"
    ));
    json.push_str(&format!(
        "  \"scan_decode\": {{\"blocks\": {}, \"cells\": {}, \"legacy_mcells_per_s\": {:.1}, \"columnar_mcells_per_s\": {:.1}, \"speedup\": {:.3}}},\n",
        sd.blocks, sd.cells, sd.legacy_mcells_per_s, sd.columnar_mcells_per_s, sd.speedup
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"backend\": \"{}\", \"mode\": \"{}\", \"queries_per_sec\": {:.1}, \"speedup_vs_one_at_a_time\": {:.3}}}{}\n",
            r.config,
            r.backend,
            r.mode,
            r.queries_per_sec,
            r.speedup_vs_one_at_a_time,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_query.json");
    std::fs::write(&out, json).expect("write BENCH_query.json");
    println!("wrote {}", out.display());
}
