//! Operator wall-clock under capture off / sync / async.
//!
//! The paper's central tension is keeping fine-grained capture cheap enough
//! to leave on during workflow execution.  This bench measures exactly that
//! on the astronomy workload: every operator stores `FullOne` lineage, and
//! the workflow is executed three ways —
//!
//! * `nocapture` — black-box only (operators skip lineage generation),
//! * `sync`      — [`CaptureMode::Sync`]: encode + store on the executor
//!   thread, so operator wall-clock carries the capture cost,
//! * `async`     — [`CaptureMode::Async`]: completed batches go to the
//!   bounded queue and background flushers; the wall-clock of `execute()`
//!   pays only for the hand-off, and the drain to idle is timed separately.
//!
//! Prints one line per mode and writes `BENCH_capture.json` at the
//! repository root with an `overhead_vs_nocapture` stanza that CI's
//! `ci/bench_guard.py` enforces (async overhead must stay below sync
//! overhead).  Run with `cargo bench -p subzero-bench --bench capture`;
//! `--smoke` is a seconds-long validity check that leaves the JSON
//! untouched, `--paper-scale` uses the full astronomy exposure,
//! `--queue-depth N` / `--flushers N` override the pipeline shape.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use subzero::capture::{CaptureConfig, CaptureMode, OverflowPolicy};
use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::SubZero;
use subzero_array::{Array, Shape};
use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::harness::arg_value;
use subzero_bench::timing::format_duration;

struct Config {
    sky: SkyConfig,
    target: Duration,
    smoke: bool,
    capture: CaptureConfig,
}

fn workload() -> Config {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sky = if paper_scale {
        SkyConfig::default() // the full 128x500 quarter-scale exposure
    } else if smoke {
        SkyConfig::tiny()
    } else {
        SkyConfig {
            shape: Shape::d2(96, 256),
            num_stars: 16,
            ..Default::default()
        }
    };
    Config {
        sky,
        target: if smoke {
            Duration::from_millis(200)
        } else {
            Duration::from_secs(if paper_scale { 20 } else { 8 })
        },
        smoke,
        capture: CaptureConfig {
            // Deep enough that the executor never waits on the queue for
            // this workload; the drain after execute() absorbs the backlog.
            queue_depth: arg_value("--queue-depth").unwrap_or(512),
            flushers: arg_value("--flushers").unwrap_or(2),
            policy: OverflowPolicy::Block,
        },
    }
}

/// `FullOne` on every operator (the runtime skips operators that don't
/// support Full): the capture-heaviest strategy, which is exactly the case
/// async capture exists for.
fn full_capture_strategy(wf: &AstronomyWorkflow) -> LineageStrategy {
    let mut strategy = LineageStrategy::new();
    for node in wf.workflow.nodes() {
        strategy.set(node.id, vec![StorageStrategy::full_one()]);
    }
    strategy
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    NoCapture,
    Sync,
    Async,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::NoCapture => "nocapture",
            Mode::Sync => "sync",
            Mode::Async => "async",
        }
    }
}

struct Pass {
    /// Wall-clock of `execute()` — the operator-facing latency.
    wall: Duration,
    /// Time to drain the capture backlog to idle (async only; sync and
    /// nocapture pay zero here because nothing is deferred).
    drain: Duration,
    /// Pairs stored across the run (0 for nocapture).
    pairs: u64,
}

fn one_pass(
    mode: Mode,
    wf: &AstronomyWorkflow,
    inputs: &HashMap<String, Array>,
    capture: CaptureConfig,
) -> Pass {
    let mut sz = SubZero::new();
    match mode {
        Mode::NoCapture => {}
        Mode::Sync => sz.set_strategy(full_capture_strategy(wf)),
        Mode::Async => {
            sz.set_strategy(full_capture_strategy(wf));
            sz.set_capture_config(capture);
            sz.set_capture_mode(CaptureMode::Async);
        }
    }
    let start = Instant::now();
    let run = sz
        .execute(&wf.workflow, inputs)
        .expect("astronomy workflow executes");
    let wall = start.elapsed();
    let drain_start = Instant::now();
    sz.flush_capture().expect("capture pipeline drains cleanly");
    let drain = drain_start.elapsed();
    let pairs = sz.capture_stats(run.run_id).pairs;
    Pass { wall, drain, pairs }
}

fn main() {
    let cfg = workload();
    let wf = AstronomyWorkflow::build(cfg.sky.shape);
    let (exp1, exp2) = SkyGenerator::new(cfg.sky).generate();
    let inputs = AstronomyWorkflow::inputs(exp1, exp2);
    println!(
        "Capture overhead — astronomy {}, {} operators, FullOne on all, queue depth {}, {} flushers\n",
        cfg.sky.shape,
        wf.workflow.nodes().len(),
        cfg.capture.queue_depth,
        cfg.capture.flushers,
    );

    const MODES: [Mode; 3] = [Mode::NoCapture, Mode::Sync, Mode::Async];
    let mut best: Vec<Option<Pass>> = vec![None, None, None];
    let mut iters = [0u64; 3];
    // Warmup round, then interleave modes round-robin until the budget is
    // spent, keeping each mode's best (minimum-wall) pass: background noise
    // only ever slows a round down.
    for &mode in &MODES {
        one_pass(mode, &wf, &inputs, cfg.capture);
    }
    let budget_start = Instant::now();
    loop {
        for (i, &mode) in MODES.iter().enumerate() {
            let pass = one_pass(mode, &wf, &inputs, cfg.capture);
            iters[i] += 1;
            if best[i].as_ref().is_none_or(|b| pass.wall < b.wall) {
                best[i] = Some(pass);
            }
        }
        if budget_start.elapsed() >= cfg.target {
            break;
        }
    }
    let best: Vec<&Pass> = best.iter().map(|p| p.as_ref().expect("measured")).collect();
    let pairs = best[1].pairs;
    assert_eq!(
        best[2].pairs, pairs,
        "async capture must store exactly the sync pair count"
    );

    let base = best[0].wall.as_secs_f64();
    let overhead = |wall: Duration| (wall.as_secs_f64() - base) / base;
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>20}",
        "mode", "wall/run", "drain/run", "pairs", "overhead_vs_nocapture"
    );
    for (i, &mode) in MODES.iter().enumerate() {
        println!(
            "{:<10} {:>12} {:>12} {:>10} {:>19.1}%  ({} iters)",
            mode.label(),
            format_duration(best[i].wall),
            format_duration(best[i].drain),
            best[i].pairs,
            overhead(best[i].wall) * 100.0,
            iters[i],
        );
    }
    let sync_overhead = overhead(best[1].wall);
    let async_overhead = overhead(best[2].wall);
    println!(
        "\nasync capture keeps {:.1}% of sync capture's operator wall-clock overhead",
        100.0 * async_overhead / sync_overhead.max(1e-12)
    );

    if cfg.smoke {
        println!("smoke run: skipping BENCH_capture.json");
        return;
    }
    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"workflow\": \"astronomy\", \"shape\": \"{}\", \"operators\": {}, \"strategy\": \"full_one_all_ops\", \"pairs\": {}, \"queue_depth\": {}, \"flushers\": {}, \"policy\": \"block\"}},\n",
        cfg.sky.shape,
        wf.workflow.nodes().len(),
        pairs,
        cfg.capture.queue_depth,
        cfg.capture.flushers,
    ));
    json.push_str(&format!(
        "  \"overhead_vs_nocapture\": {{\"sync\": {:.4}, \"async\": {:.4}, \"async_share_of_sync\": {:.4}}},\n",
        sync_overhead,
        async_overhead,
        async_overhead / sync_overhead.max(1e-12),
    ));
    json.push_str("  \"results\": [\n");
    for (i, &mode) in MODES.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_ms\": {:.3}, \"drain_ms\": {:.3}, \"pairs\": {}, \"overhead_vs_nocapture\": {:.4}}}{}\n",
            mode.label(),
            best[i].wall.as_secs_f64() * 1e3,
            best[i].drain.as_secs_f64() * 1e3,
            best[i].pairs,
            overhead(best[i].wall),
            if i + 1 == MODES.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_capture.json");
    std::fs::write(&out, json).expect("write BENCH_capture.json");
    println!("wrote {}", out.display());
}
