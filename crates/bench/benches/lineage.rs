//! Microbenchmarks for the lineage hot paths: encoding region pairs,
//! capturing lineage under each storage strategy (at several capture batch
//! sizes), and answering backward/forward lookups.  These are the building
//! blocks behind Figures 8 and 9; the figure binaries sweep them at full
//! scale, while these benches give tight per-operation numbers and act as a
//! regression harness.
//!
//! Run with `cargo bench -p subzero-bench --bench lineage`.

use std::time::Duration;

use subzero::model::StorageStrategy;
use subzero::SubZero;
use subzero_array::{Coord, Shape};
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::timing::run_reported;
use subzero_store::codec::{decode_cells, encode_cells};

fn bench_encoding(target: Duration) {
    let shape = Shape::d2(1000, 1000);
    for &n in &[10usize, 100, 1000] {
        let cells: Vec<Coord> = (0..n as u32)
            .map(|i| Coord::d2(i % 1000, (i * 7) % 1000))
            .collect();
        run_reported(format!("encoding/encode_cells/{n}"), target, || {
            encode_cells(&shape, &cells)
        });
        let encoded = encode_cells(&shape, &cells);
        run_reported(format!("encoding/decode_cells/{n}"), target, || {
            decode_cells(&shape, &encoded).unwrap()
        });
    }
}

fn micro_config() -> MicroConfig {
    MicroConfig {
        shape: Shape::d2(200, 200),
        fanin: 25,
        fanout: 4,
        coverage: 0.1,
        seed: 42,
    }
}

fn bench_capture(target: Duration) {
    let micro = MicroWorkflow::build(micro_config());
    let inputs = micro.inputs();
    let strategies = [
        ("blackbox", vec![]),
        ("full_one", vec![StorageStrategy::full_one()]),
        ("full_many", vec![StorageStrategy::full_many()]),
        ("pay_one", vec![StorageStrategy::pay_one()]),
        ("pay_many", vec![StorageStrategy::pay_many()]),
    ];
    // Capture batch size 1 is the legacy per-pair hand-off; the larger sizes
    // exercise the batched ingestion pipeline that is now the default.
    for batch_size in [1usize, 64, 4096] {
        for (name, strategy) in &strategies {
            run_reported(
                format!("capture/workflow/{name}/batch{batch_size}"),
                target,
                || {
                    let mut sz = SubZero::new();
                    sz.set_capture_batch_size(batch_size);
                    if !strategy.is_empty() {
                        let mut ls = subzero::model::LineageStrategy::new();
                        ls.set(micro.op, strategy.clone());
                        sz.set_strategy(ls);
                    }
                    sz.execute(&micro.workflow, &inputs).unwrap()
                },
            );
        }
    }
}

fn bench_query(target: Duration) {
    let micro = MicroWorkflow::build(micro_config());
    let inputs = micro.inputs();
    let strategies = [
        ("blackbox", vec![]),
        ("full_one", vec![StorageStrategy::full_one()]),
        ("full_many", vec![StorageStrategy::full_many()]),
        ("pay_one", vec![StorageStrategy::pay_one()]),
        ("fwd_full_one", vec![StorageStrategy::full_one_forward()]),
    ];
    for (name, strategy) in strategies {
        let mut sz = SubZero::new();
        if !strategy.is_empty() {
            let mut ls = subzero::model::LineageStrategy::new();
            ls.set(micro.op, strategy.clone());
            sz.set_strategy(ls);
        }
        let run = sz.execute(&micro.workflow, &inputs).unwrap();
        let backward = micro.backward_query(200);
        let forward = micro.forward_query(200);
        run_reported(format!("query/backward_200/{name}"), target, || {
            sz.session(&run).query(&backward.spec).unwrap()
        });
        run_reported(format!("query/forward_200/{name}"), target, || {
            sz.session(&run).query(&forward.spec).unwrap()
        });
    }
}

fn main() {
    let target = Duration::from_secs(2);
    bench_encoding(target);
    bench_capture(target);
    bench_query(target);
}
