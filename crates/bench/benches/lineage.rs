//! Criterion microbenchmarks for the lineage hot paths: encoding region
//! pairs, capturing lineage under each storage strategy, and answering
//! backward/forward lookups.  These are the building blocks behind Figures 8
//! and 9; the figure binaries sweep them at full scale, while these benches
//! give tight per-operation numbers and act as a regression harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use subzero::model::StorageStrategy;
use subzero::SubZero;
use subzero_array::{Coord, Shape};
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_store::codec::{decode_cells, encode_cells};

fn bench_encoding(c: &mut Criterion) {
    let shape = Shape::d2(1000, 1000);
    let mut group = c.benchmark_group("encoding");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    for &n in &[10usize, 100, 1000] {
        let cells: Vec<Coord> = (0..n as u32).map(|i| Coord::d2(i % 1000, (i * 7) % 1000)).collect();
        group.bench_with_input(BenchmarkId::new("encode_cells", n), &cells, |b, cells| {
            b.iter(|| encode_cells(&shape, cells));
        });
        let encoded = encode_cells(&shape, &cells);
        group.bench_with_input(BenchmarkId::new("decode_cells", n), &encoded, |b, buf| {
            b.iter(|| decode_cells(&shape, buf).unwrap());
        });
    }
    group.finish();
}

fn micro_config() -> MicroConfig {
    MicroConfig {
        shape: Shape::d2(200, 200),
        fanin: 25,
        fanout: 4,
        coverage: 0.1,
        seed: 42,
    }
}

fn bench_capture(c: &mut Criterion) {
    let micro = MicroWorkflow::build(micro_config());
    let inputs = micro.inputs();
    let mut group = c.benchmark_group("capture");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    let strategies = [
        ("blackbox", vec![]),
        ("full_one", vec![StorageStrategy::full_one()]),
        ("full_many", vec![StorageStrategy::full_many()]),
        ("pay_one", vec![StorageStrategy::pay_one()]),
        ("pay_many", vec![StorageStrategy::pay_many()]),
    ];
    for (name, strategy) in strategies {
        group.bench_function(BenchmarkId::new("workflow", name), |b| {
            b.iter(|| {
                let mut sz = SubZero::new();
                if !strategy.is_empty() {
                    let mut ls = subzero::model::LineageStrategy::new();
                    ls.set(micro.op, strategy.clone());
                    sz.set_strategy(ls);
                }
                sz.execute(&micro.workflow, &inputs).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let micro = MicroWorkflow::build(micro_config());
    let inputs = micro.inputs();
    let mut group = c.benchmark_group("query");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    let strategies = [
        ("blackbox", vec![]),
        ("full_one", vec![StorageStrategy::full_one()]),
        ("full_many", vec![StorageStrategy::full_many()]),
        ("pay_one", vec![StorageStrategy::pay_one()]),
        ("fwd_full_one", vec![StorageStrategy::full_one_forward()]),
    ];
    for (name, strategy) in strategies {
        let mut sz = SubZero::new();
        if !strategy.is_empty() {
            let mut ls = subzero::model::LineageStrategy::new();
            ls.set(micro.op, strategy.clone());
            sz.set_strategy(ls);
        }
        let run = sz.execute(&micro.workflow, &inputs).unwrap();
        let backward = micro.backward_query(200);
        let forward = micro.forward_query(200);
        group.bench_function(BenchmarkId::new("backward_200", name), |b| {
            b.iter(|| sz.query(&run, &backward.query).unwrap());
        });
        group.bench_function(BenchmarkId::new("forward_200", name), |b| {
            b.iter(|| sz.query(&run, &forward.query).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_capture, bench_query);
criterion_main!(benches);
