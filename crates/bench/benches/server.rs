//! Lineage daemon throughput: concurrent clients over the unix socket.
//!
//! Measures the `subzero-server` subsystem end to end — wire protocol,
//! per-connection lanes, round-robin shard workers, datastore ingest and
//! batched lookups — with everything on one machine, so the numbers are the
//! daemon's own overhead rather than network noise:
//!
//! * `ingest`  — N concurrent clients stream region-pair batches into their
//!   own operators (hash-partitioned across the shards); reports batches/s
//!   and pairs/s across all clients.
//! * `lookup`  — after a durability barrier, backward lookups two ways:
//!   one query per request (a round-trip per cell) and batched in bounded
//!   steps (`lookup_chunk` queries per request).  The batched/single speedup
//!   is the headline number: batching amortises framing, syscalls and the
//!   shard rendezvous, and must never fall below 1.0
//!   (`batched_lookup_min_speedup`, enforced by `ci/bench_guard.py`).
//!
//! The batch size used to be capped at 32: with one flat bitmap per query
//! and answer, a bigger batch materialised its whole answer set at once and
//! fell out of cache.  Adaptive `CellSet` containers (sparse / run / dense
//! per 2^16-cell chunk) shrank both the in-memory answers and their wire
//! frames, so the default chunk is now 128 — `--lookup-chunk N` overrides
//! it, and `ci/bench_guard.py` pins the floor so the cap never silently
//! creeps back down.  The recorded stanza also counts which container
//! representations the batched answers actually used (`container_mix`), so
//! a refresh that degenerates into all-dense answers is visible in review.
//!
//! Run with `cargo bench -p subzero-bench --bench server`; `--smoke` is a
//! seconds-long validity check that leaves `BENCH_server.json` untouched.
//! `--clients N` / `--shards N` override the topology.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use subzero::capture::OverflowPolicy;
use subzero::model::{Direction, StorageStrategy};
use subzero_array::{CellSet, Coord, ReprCounts, Shape};
use subzero_bench::harness::arg_value;
use subzero_engine::lineage::RegionPair;
use subzero_server::{Client, LookupStep, OpSpec, Server, ServerConfig};

struct Config {
    shape: Shape,
    clients: usize,
    shards: usize,
    ops_per_client: u32,
    batches_per_op: u32,
    pairs_per_batch: u32,
    queries: u32,
    lookup_chunk: u32,
    target: Duration,
    smoke: bool,
}

fn workload() -> Config {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients = arg_value("--clients").unwrap_or(4);
    let shards = arg_value("--shards").unwrap_or(4);
    if smoke {
        Config {
            shape: Shape::d2(32, 32),
            clients: clients.min(2),
            shards: shards.min(2),
            ops_per_client: 1,
            batches_per_op: 8,
            pairs_per_batch: 16,
            queries: 32,
            lookup_chunk: 16,
            target: Duration::from_millis(200),
            smoke,
        }
    } else {
        Config {
            shape: Shape::d2(256, 256),
            clients,
            shards,
            ops_per_client: 2,
            batches_per_op: 64,
            pairs_per_batch: 64,
            queries: arg_value("--queries").unwrap_or(512),
            lookup_chunk: arg_value("--lookup-chunk").unwrap_or(128),
            target: Duration::from_secs(8),
            smoke,
        }
    }
}

/// Deterministic structural pairs for one operator: output cell `i` depends
/// on a mirrored input cell, so lookups have non-trivial answers.
fn pairs_of(op: u32, shape: Shape, count: u32) -> Vec<RegionPair> {
    let (rows, cols) = (shape.dims()[0], shape.dims()[1]);
    let n = rows * cols;
    (0..count)
        .map(|i| {
            let lin = (i.wrapping_mul(2654435761).wrapping_add(op)) % n;
            let (r, c) = (lin / cols, lin % cols);
            RegionPair::Full {
                outcells: vec![Coord::d2(r, c)],
                incells: vec![vec![
                    Coord::d2(rows - 1 - r, cols - 1 - c),
                    Coord::d2(r, cols - 1 - c),
                ]],
            }
        })
        .collect()
}

fn spec_of(op: u32, shape: Shape) -> OpSpec {
    OpSpec {
        op_id: op,
        input_shapes: vec![shape],
        output_shape: shape,
        strategies: vec![StorageStrategy::full_one()],
    }
}

struct Pass {
    ingest_wall: Duration,
    single_wall: Duration,
    batched_wall: Duration,
    /// Container representations across every batched answer set (result and
    /// covered); the workload is deterministic, so this is identical each
    /// round.
    mix: ReprCounts,
}

fn one_pass(cfg: &Config, dir: &std::path::Path, round: usize) -> Pass {
    let socket = dir.join(format!("bench-{round}.sock"));
    let server = Server::start(
        &socket,
        ServerConfig {
            data_dir: None,
            shards: cfg.shards,
            queue_depth: 64,
            ingest_policy: OverflowPolicy::Block,
            store_stall: Duration::ZERO,
            session_ttl: None,
        },
    )
    .expect("bench server starts");

    let nops = cfg.clients as u32 * cfg.ops_per_client;
    let specs: Vec<OpSpec> = (0..nops).map(|op| spec_of(op, cfg.shape)).collect();
    let mut admin = Client::connect(&socket).expect("admin connect");
    let session = admin
        .open_session("bench", specs)
        .expect("open bench session");

    // --- Concurrent ingest ------------------------------------------------
    let ingest_start = Instant::now();
    let workers: Vec<_> = (0..cfg.clients)
        .map(|cid| {
            let socket = socket.clone();
            let cfg_ops = cfg.ops_per_client;
            let (shape, batches, per_batch) = (cfg.shape, cfg.batches_per_op, cfg.pairs_per_batch);
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).expect("client connect");
                for k in 0..cfg_ops {
                    let op = cid as u32 * cfg_ops + k;
                    let pairs = pairs_of(op, shape, batches * per_batch);
                    for chunk in pairs.chunks(per_batch as usize) {
                        let ack = client
                            .store_batch(session, op, chunk.to_vec())
                            .expect("bench store");
                        assert!(ack.accepted, "Block admission never sheds");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("ingest client");
    }
    admin.finish_session(session).expect("durability barrier");
    let ingest_wall = ingest_start.elapsed();

    // --- Lookups: one query per request vs batched ------------------------
    let cells: Vec<Coord> = pairs_of(0, cfg.shape, cfg.queries)
        .iter()
        .map(|p| p.outcells()[0])
        .collect();
    let step_of = |queries: Vec<CellSet>| LookupStep {
        op_id: 0,
        direction: Direction::Backward,
        input_idx: 0,
        queries,
    };

    let single_start = Instant::now();
    let mut single_hits = 0u64;
    for &cell in &cells {
        let out = admin
            .lookup(
                session,
                vec![step_of(vec![CellSet::from_coords(cfg.shape, [cell])])],
            )
            .expect("single lookup");
        single_hits += u64::from(!out[0][0].result.is_empty());
    }
    let single_wall = single_start.elapsed();

    let batched_start = Instant::now();
    let mut batched_hits = 0u64;
    let mut mix = ReprCounts::default();
    for chunk in cells.chunks(cfg.lookup_chunk as usize) {
        let queries: Vec<CellSet> = chunk
            .iter()
            .map(|&c| CellSet::from_coords(cfg.shape, [c]))
            .collect();
        let out = admin
            .lookup(session, vec![step_of(queries)])
            .expect("batched lookup");
        for o in &out[0] {
            batched_hits += u64::from(!o.result.is_empty());
            mix.merge(&o.result.repr_counts());
            mix.merge(&o.covered.repr_counts());
        }
    }
    let batched_wall = batched_start.elapsed();
    assert_eq!(
        batched_hits, single_hits,
        "batched lookups must answer identically to single lookups"
    );
    assert!(single_hits > 0, "the lookup workload must actually hit");

    drop(admin);
    server.shutdown_and_wait();
    Pass {
        ingest_wall,
        single_wall,
        batched_wall,
        mix,
    }
}

fn main() {
    let cfg = workload();
    let dir = std::env::temp_dir().join(format!("subzero-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    let nops = cfg.clients as u32 * cfg.ops_per_client;
    let total_batches = u64::from(nops * cfg.batches_per_op);
    let total_pairs = total_batches * u64::from(cfg.pairs_per_batch);
    println!(
        "Lineage daemon — {} shards, {} clients x {} ops, {} batches x {} pairs, {} lookups ({}/step)\n",
        cfg.shards, cfg.clients, cfg.ops_per_client, total_batches, cfg.pairs_per_batch,
        cfg.queries, cfg.lookup_chunk,
    );

    // Warmup, then best-of rounds until the budget is spent: each stage keeps
    // its own minimum across rounds (noise only ever slows a round down).
    one_pass(&cfg, &dir, 0);
    let mut best: Option<Pass> = None;
    let mut rounds = 0usize;
    let budget = Instant::now();
    loop {
        rounds += 1;
        let pass = one_pass(&cfg, &dir, rounds);
        best = Some(match best {
            None => pass,
            Some(b) => Pass {
                ingest_wall: b.ingest_wall.min(pass.ingest_wall),
                single_wall: b.single_wall.min(pass.single_wall),
                batched_wall: b.batched_wall.min(pass.batched_wall),
                mix: pass.mix,
            },
        });
        if budget.elapsed() >= cfg.target {
            break;
        }
    }
    let best = best.expect("at least one round");
    let _ = std::fs::remove_dir_all(&dir);

    let batches_per_sec = total_batches as f64 / best.ingest_wall.as_secs_f64();
    let pairs_per_sec = total_pairs as f64 / best.ingest_wall.as_secs_f64();
    let single_qps = f64::from(cfg.queries) / best.single_wall.as_secs_f64();
    let batched_qps = f64::from(cfg.queries) / best.batched_wall.as_secs_f64();
    let speedup = batched_qps / single_qps;
    println!("{:<28} {:>14} {:>14}", "metric", "value", "per second");
    println!(
        "{:<28} {:>14.3?} {:>14.0}",
        "ingest wall (all clients)", best.ingest_wall, batches_per_sec
    );
    println!(
        "{:<28} {:>14} {:>14.0}",
        "ingest pairs", total_pairs, pairs_per_sec
    );
    println!(
        "{:<28} {:>14.3?} {:>14.0}",
        "lookup single (round-trips)", best.single_wall, single_qps
    );
    println!(
        "{:<28} {:>14.3?} {:>14.0}",
        "lookup batched (chunked)", best.batched_wall, batched_qps
    );
    println!(
        "\nbatching lookups over the wire is {speedup:.1}x the per-request round-trip path \
         ({rounds} rounds); answer containers: {} sparse, {} runs, {} dense",
        best.mix.sparse, best.mix.runs, best.mix.dense,
    );

    if cfg.smoke {
        println!("smoke run: skipping BENCH_server.json");
        return;
    }
    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"shape\": \"{}\", \"shards\": {}, \"clients\": {}, \"ops\": {}, \"batches\": {}, \"pairs_per_batch\": {}, \"queries\": {}, \"lookup_chunk\": {}, \"policy\": \"block\", \"container_mix\": {{\"sparse\": {}, \"runs\": {}, \"dense\": {}}}}},\n",
        cfg.shape, cfg.shards, cfg.clients, nops, total_batches, cfg.pairs_per_batch, cfg.queries,
        cfg.lookup_chunk, best.mix.sparse, best.mix.runs, best.mix.dense,
    ));
    json.push_str(&format!(
        "  \"batched_lookup_min_speedup\": {speedup:.4},\n"
    ));
    json.push_str("  \"results\": [\n");
    json.push_str(&format!(
        "    {{\"stage\": \"ingest\", \"wall_ms\": {:.3}, \"batches_per_sec\": {:.1}, \"pairs_per_sec\": {:.1}}},\n",
        best.ingest_wall.as_secs_f64() * 1e3,
        batches_per_sec,
        pairs_per_sec,
    ));
    json.push_str(&format!(
        "    {{\"stage\": \"lookup_single\", \"wall_ms\": {:.3}, \"queries_per_sec\": {:.1}}},\n",
        best.single_wall.as_secs_f64() * 1e3,
        single_qps,
    ));
    json.push_str(&format!(
        "    {{\"stage\": \"lookup_batched\", \"wall_ms\": {:.3}, \"queries_per_sec\": {:.1}}}\n",
        best.batched_wall.as_secs_f64() * 1e3,
        batched_qps,
    ));
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    std::fs::write(&out, json).expect("write BENCH_server.json");
    println!("wrote {}", out.display());
}
