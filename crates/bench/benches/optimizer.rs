//! Benchmarks for the lineage strategy optimizer: ILP solve time (the paper
//! reports "about 1 ms" for the benchmark-sized problems) and the end-to-end
//! optimize call on the genomics workflow.
//!
//! Run with `cargo bench -p subzero-bench --bench optimizer`.

use std::time::Duration;

use subzero::SubZero;
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::timing::run_reported;
use subzero_optimizer::ilp::{IlpChoice, IlpProblem};
use subzero_optimizer::{Optimizer, OptimizerConfig, QueryWorkload};

fn synthetic_problem(groups: usize, choices: usize) -> IlpProblem {
    let mut seed = 0xC0FFEEu64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) % 10_000) as f64
    };
    IlpProblem {
        groups: (0..groups)
            .map(|g| {
                (0..choices)
                    .map(|c| IlpChoice {
                        label: format!("g{g}c{c}"),
                        query_cost: next(),
                        disk: next(),
                        runtime: next() / 1000.0,
                    })
                    .collect()
            })
            .collect(),
        max_disk: 5_000.0 * groups as f64,
        max_runtime: f64::INFINITY,
        epsilon: 1e-6,
        beta: 1.0,
    }
}

fn bench_ilp(target: Duration) {
    for &(groups, choices) in &[(4usize, 4usize), (14, 8), (26, 12)] {
        let problem = synthetic_problem(groups, choices);
        run_reported(
            format!("ilp_solve/{groups}ops_x_{choices}strategies"),
            target,
            || problem.solve(),
        );
    }
}

fn bench_end_to_end_optimize(target: Duration) {
    let config = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(config).generate();
    let wf = GenomicsWorkflow::build(&config);
    let inputs = GenomicsWorkflow::inputs(train, test);
    let mut profiler = SubZero::new();
    profiler.set_strategy(Optimizer::profiling_strategy(&wf.workflow));
    let run = profiler.execute(&wf.workflow, &inputs).unwrap();
    let stats: std::collections::HashMap<_, _> = profiler
        .runtime()
        .run_stats(run.run_id)
        .into_iter()
        .map(|(op, s)| (op, s.clone()))
        .collect();
    let queries: Vec<_> = wf
        .queries(&mut profiler, &run)
        .into_iter()
        .map(|nq| (nq.spec, 1.0))
        .collect();
    let workload = QueryWorkload::from_specs(&wf.workflow, &queries);

    let optimizer = Optimizer::new(OptimizerConfig::with_disk_budget_mb(20.0));
    run_reported("optimizer/genomics_optimize_20mb", target, || {
        optimizer.optimize(&wf.workflow, &stats, &workload)
    });
}

fn main() {
    let target = Duration::from_secs(2);
    bench_ilp(target);
    bench_end_to_end_optimize(target);
}
