//! Criterion benchmarks for the lineage strategy optimizer: ILP solve time
//! (the paper reports "about 1 ms" for the benchmark-sized problems) and the
//! end-to-end optimize call on the genomics workflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use subzero::SubZero;
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_optimizer::ilp::{IlpChoice, IlpProblem};
use subzero_optimizer::{Optimizer, OptimizerConfig, QueryWorkload};

fn synthetic_problem(groups: usize, choices: usize) -> IlpProblem {
    let mut seed = 0xC0FFEEu64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) % 10_000) as f64
    };
    IlpProblem {
        groups: (0..groups)
            .map(|g| {
                (0..choices)
                    .map(|c| IlpChoice {
                        label: format!("g{g}c{c}"),
                        query_cost: next(),
                        disk: next(),
                        runtime: next() / 1000.0,
                    })
                    .collect()
            })
            .collect(),
        max_disk: 5_000.0 * groups as f64,
        max_runtime: f64::INFINITY,
        epsilon: 1e-6,
        beta: 1.0,
    }
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_solve");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    for &(groups, choices) in &[(4usize, 4usize), (14, 8), (26, 12)] {
        let problem = synthetic_problem(groups, choices);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{groups}ops_x_{choices}strategies")),
            &problem,
            |b, p| b.iter(|| p.solve()),
        );
    }
    group.finish();
}

fn bench_end_to_end_optimize(c: &mut Criterion) {
    let config = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(config).generate();
    let wf = GenomicsWorkflow::build(&config);
    let inputs = GenomicsWorkflow::inputs(train, test);
    let mut profiler = SubZero::new();
    profiler.set_strategy(Optimizer::profiling_strategy(&wf.workflow));
    let run = profiler.execute(&wf.workflow, &inputs).unwrap();
    let stats: std::collections::HashMap<_, _> = profiler
        .runtime()
        .run_stats(run.run_id)
        .into_iter()
        .map(|(op, s)| (op, s.clone()))
        .collect();
    let queries: Vec<_> = wf
        .queries(&mut profiler, &run)
        .into_iter()
        .map(|nq| (nq.query, 1.0))
        .collect();
    let workload = QueryWorkload::from_queries(&queries);

    let mut group = c.benchmark_group("optimizer");
    group.measurement_time(Duration::from_secs(2)).sample_size(30);
    group.bench_function("genomics_optimize_20mb", |b| {
        let optimizer = Optimizer::new(OptimizerConfig::with_disk_budget_mb(20.0));
        b.iter(|| optimizer.optimize(&wf.workflow, &stats, &workload));
    });
    group.finish();
}

criterion_group!(benches, bench_ilp, bench_end_to_end_optimize);
criterion_main!(benches);
