//! Lineage ingestion throughput: batched vs per-pair capture.
//!
//! Feeds the micro-overhead workload's region pairs straight into an
//! [`OpDatastore`] — the `lwrite -> encode -> kv put -> index` chain of the
//! capture hot path, without workflow execution noise — once through the
//! legacy per-pair path and once through the batched pipeline at batch sizes
//! 64 and 4096, over the in-memory and the append-only-file backends.
//!
//! Prints one line per configuration and writes the full result set,
//! including batched-vs-per-pair speedups, to `BENCH_ingest.json` at the
//! repository root.  Run with `cargo bench -p subzero-bench --bench ingest`.
//!
//! Two knobs beyond `--smoke`/`--paper-scale`:
//!
//! * `--dedup-rate R` (0.0..=1.0, default 0) rewrites a fraction `R` of the
//!   synthetic pairs to repeat their predecessor's cells, so the write-side
//!   key dedup of the batched path has a *measurable* amount of repeated
//!   keys instead of whatever the generator produces incidentally.
//! * `encode_only` rows (`backend: "none"`) isolate the pure arena-encode
//!   cost of each strategy — no key-value table involved — so the JSON
//!   attributes where batched ingest time goes (encode vs table insert).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use subzero::encoder::{self, PackedCellKey};
use subzero::model::{Direction, Granularity, StorageStrategy};
use subzero::parallel::default_workers;
use subzero::OpDatastore;
use subzero_array::{Coord, Shape};
use subzero_bench::harness::arg_value;
use subzero_bench::micro::{MicroConfig, SyntheticOp};
use subzero_bench::timing::Sample;
use subzero_engine::{LineageMode, OpMeta, RegionPair};
use subzero_store::kv::{FileBackend, KvBackend, MemBackend};
use subzero_store::Arena;

const BATCH_SIZES: [usize; 2] = [64, 4096];

struct Config {
    micro: MicroConfig,
    target: Duration,
    smoke: bool,
    dedup_rate: f64,
}

fn workload() -> Config {
    // The paper's default micro-overhead point: fanin 10, fanout 1, 10%
    // coverage (§VIII-C); `--paper-scale` uses the full 1000x1000 array,
    // `--smoke` a seconds-long CI validity check that leaves
    // BENCH_ingest.json untouched.
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let micro = MicroConfig {
        shape: if paper_scale {
            Shape::d2(1000, 1000)
        } else if smoke {
            Shape::d2(64, 64)
        } else {
            Shape::d2(400, 400)
        },
        fanin: 10,
        fanout: 1,
        coverage: 0.1,
        seed: 42,
    };
    Config {
        micro,
        target: if smoke {
            Duration::from_millis(50)
        } else {
            Duration::from_secs(if paper_scale { 4 } else { 2 })
        },
        smoke,
        dedup_rate: arg_value::<f64>("--dedup-rate")
            .unwrap_or(0.0)
            .clamp(0.0, 1.0),
    }
}

/// Rewrites a `rate` fraction of the pairs to repeat their predecessor's
/// cells.  Every duplicated pair re-touches exactly the keys its predecessor
/// touched, so `rate` directly controls how much work the batched path's
/// write-side key dedup can coalesce.
fn inject_duplicates(pairs: &mut [RegionPair], rate: f64) {
    if rate <= 0.0 {
        return;
    }
    for i in 1..pairs.len() {
        if (i as f64 * rate) as u64 > ((i - 1) as f64 * rate) as u64 {
            pairs[i] = pairs[i - 1].clone();
        }
    }
}

fn backend_for(kind: &str, scratch: &Path, n: &mut u64) -> Box<dyn KvBackend> {
    match kind {
        "mem" => Box::new(MemBackend::new()),
        "file" => {
            *n += 1;
            let path = scratch.join(format!("ingest-{n}.kv"));
            let _ = std::fs::remove_file(&path);
            Box::new(FileBackend::open(&path).expect("open scratch kv file"))
        }
        other => panic!("unknown backend {other}"),
    }
}

struct Row {
    strategy: String,
    backend: String,
    mode: String,
    batch_size: usize,
    pairs_per_sec: f64,
    speedup_vs_per_pair: f64,
}

fn ingest_pass(
    pairs: &[RegionPair],
    make_store: &mut dyn FnMut() -> OpDatastore,
    batch_size: usize,
    workers: usize,
) -> Duration {
    let mut ds = make_store();
    let start = std::time::Instant::now();
    if batch_size == 1 {
        for pair in pairs {
            ds.store_pair(pair);
        }
    } else {
        for chunk in pairs.chunks(batch_size) {
            ds.store_batch(chunk, workers);
        }
    }
    // Charge index building and flushing to ingestion, not to the first
    // query, for both paths.
    ds.finish_ingest();
    let elapsed = start.elapsed();
    std::hint::black_box(ds);
    elapsed
}

/// One pass of the pure encode share of a strategy: every entry body is
/// serialised into a reused arena and every cell key packed, with no
/// key-value table involved.  The difference between this and a full ingest
/// pass is, by construction, table-insert plus index cost.
fn encode_pass(pairs: &[RegionPair], strategy: &StorageStrategy, meta: &OpMeta) -> Duration {
    let out_shape = meta.output_shape;
    let in_shapes = &meta.input_shapes;
    let empty_incells: Vec<Vec<Coord>> = vec![Vec::new(); in_shapes.len()];
    let mut arena = Arena::new();
    let mut keys: Vec<PackedCellKey> = Vec::new();
    let start = Instant::now();
    for pair in pairs {
        match (strategy.mode, pair) {
            (LineageMode::Full, RegionPair::Full { outcells, incells }) => {
                match (strategy.granularity, strategy.direction) {
                    (Granularity::One, Direction::Backward) => {
                        encoder::encode_full_entry_into(
                            arena.buf_mut(),
                            &out_shape,
                            in_shapes,
                            &[],
                            incells,
                            false,
                        );
                        keys.extend(
                            outcells
                                .iter()
                                .map(|oc| PackedCellKey::out_cell(&out_shape, oc)),
                        );
                    }
                    (Granularity::One, Direction::Forward) => {
                        encoder::encode_full_entry_into(
                            arena.buf_mut(),
                            &out_shape,
                            in_shapes,
                            outcells,
                            &empty_incells,
                            true,
                        );
                        for (j, cells) in incells.iter().enumerate() {
                            keys.extend(
                                cells
                                    .iter()
                                    .map(|ic| PackedCellKey::in_cell(&in_shapes[j], j, ic)),
                            );
                        }
                    }
                    (Granularity::Many, _) => {
                        encoder::encode_full_entry_into(
                            arena.buf_mut(),
                            &out_shape,
                            in_shapes,
                            outcells,
                            incells,
                            true,
                        );
                    }
                }
            }
            (LineageMode::Pay | LineageMode::Comp, RegionPair::Payload { outcells, payload }) => {
                match strategy.granularity {
                    Granularity::One => {
                        // The real path packs one key per output cell AND
                        // serialises the payload into each cell's staged
                        // delta; mirror both so this row isolates exactly
                        // the table-insert share.
                        for oc in outcells {
                            keys.push(PackedCellKey::out_cell(&out_shape, oc));
                            encoder::append_payload(arena.buf_mut(), payload);
                        }
                    }
                    Granularity::Many => {
                        encoder::encode_pay_entry_into(
                            arena.buf_mut(),
                            &out_shape,
                            outcells,
                            payload,
                        );
                    }
                }
            }
            _ => {}
        }
    }
    let elapsed = start.elapsed();
    std::hint::black_box((arena, keys));
    elapsed
}

/// Measures every batch size of one (strategy, backend) configuration with
/// interleaved passes — per-pair, then each batched size, round-robin until
/// the time budget is spent — so background-load drift hits all modes
/// equally instead of whichever happened to run last.
///
/// Returns, per mode, the mean-based [`Sample`] (for the human report) and
/// the mode's *best* round.  Throughput and speedups are computed from the
/// best rounds: on shared hardware, transient scheduler and steal noise only
/// ever makes a round slower, so min-time is the least-biased estimate of
/// what each mode actually costs.
fn measure_config(
    labels: &[String],
    batch_sizes: &[usize],
    target: Duration,
    pairs: &[RegionPair],
    make_store: &mut dyn FnMut() -> OpDatastore,
) -> Vec<(Sample, Duration)> {
    let workers = default_workers();
    let mut totals = vec![Duration::ZERO; batch_sizes.len()];
    let mut best = vec![Duration::MAX; batch_sizes.len()];
    let mut iters = vec![0u64; batch_sizes.len()];
    // Warmup round (populates caches, triggers lazy allocation).
    for &bs in batch_sizes {
        ingest_pass(pairs, make_store, bs, workers);
    }
    while totals.iter().sum::<Duration>() < target * batch_sizes.len() as u32 {
        for (i, &bs) in batch_sizes.iter().enumerate() {
            let elapsed = ingest_pass(pairs, make_store, bs, workers);
            totals[i] += elapsed;
            best[i] = best[i].min(elapsed);
            iters[i] += 1;
        }
    }
    batch_sizes
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let sample = Sample {
                name: labels[i].clone(),
                iters: iters[i],
                total: totals[i],
            };
            println!("{}", sample.report());
            (sample, best[i])
        })
        .collect()
}

fn main() {
    let cfg = workload();
    let op = SyntheticOp::new(cfg.micro);
    let meta = OpMeta::new(vec![cfg.micro.shape], cfg.micro.shape);
    let mut full_pairs = op.region_pairs(LineageMode::Full);
    let mut pay_pairs = op.region_pairs(LineageMode::Pay);
    inject_duplicates(&mut full_pairs, cfg.dedup_rate);
    inject_duplicates(&mut pay_pairs, cfg.dedup_rate);
    let n_pairs = full_pairs.len() as u64;
    println!(
        "Ingestion throughput — array {}, {} pairs, fanin {}, fanout {}, dedup rate {}, {} workers\n",
        cfg.micro.shape,
        n_pairs,
        cfg.micro.fanin,
        cfg.micro.fanout,
        cfg.dedup_rate,
        default_workers(),
    );

    let scratch = std::env::temp_dir().join(format!("subzero-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let mut file_counter = 0u64;

    let strategies: Vec<(StorageStrategy, &[RegionPair])> = vec![
        (StorageStrategy::full_one(), &full_pairs),
        (StorageStrategy::full_many(), &full_pairs),
        (StorageStrategy::full_one_forward(), &full_pairs),
        (StorageStrategy::pay_one(), &pay_pairs),
        (StorageStrategy::pay_many(), &pay_pairs),
    ];

    let mut rows: Vec<Row> = Vec::new();
    let batch_sizes: Vec<usize> = std::iter::once(1).chain(BATCH_SIZES).collect();
    for (strategy, pairs) in &strategies {
        for backend in ["mem", "file"] {
            let labels: Vec<String> = batch_sizes
                .iter()
                .map(|&bs| {
                    let mode = if bs == 1 { "per_pair" } else { "batched" };
                    format!("ingest/{strategy}/{backend}/{mode}{bs}")
                })
                .collect();
            let mut make_store = || {
                OpDatastore::new(
                    "bench",
                    *strategy,
                    &meta,
                    backend_for(backend, &scratch, &mut file_counter),
                )
            };
            let samples = measure_config(&labels, &batch_sizes, cfg.target, pairs, &mut make_store);
            let best_pps = |best: Duration| n_pairs as f64 / best.as_secs_f64().max(1e-12);
            let per_pair_pps = best_pps(samples[0].1);
            for ((_, best), &batch_size) in samples.iter().zip(&batch_sizes) {
                let pps = best_pps(*best);
                rows.push(Row {
                    strategy: strategy.label(),
                    backend: backend.to_string(),
                    mode: if batch_size == 1 {
                        "per_pair"
                    } else {
                        "batched"
                    }
                    .to_string(),
                    batch_size,
                    pairs_per_sec: pps,
                    speedup_vs_per_pair: if per_pair_pps > 0.0 {
                        pps / per_pair_pps
                    } else {
                        0.0
                    },
                });
            }
            if backend == "mem" {
                // Encode-isolation row: the same pairs through the arena
                // encoders alone.  `speedup_vs_per_pair` is relative to the
                // mem per-pair pass, so a value of e.g. 4.0 says encode is a
                // quarter of full per-pair mem ingest time — the rest is
                // table insert and index work.
                let mut total = Duration::ZERO;
                let mut best = Duration::MAX;
                let mut iters = 0u64;
                while total < cfg.target / 4 {
                    let elapsed = encode_pass(pairs, strategy, &meta);
                    total += elapsed;
                    best = best.min(elapsed);
                    iters += 1;
                }
                let sample = Sample {
                    name: format!("ingest/{strategy}/none/encode_only"),
                    iters,
                    total,
                };
                println!("{}", sample.report());
                let pps = best_pps(best);
                rows.push(Row {
                    strategy: strategy.label(),
                    backend: "none".to_string(),
                    mode: "encode_only".to_string(),
                    batch_size: 0,
                    pairs_per_sec: pps,
                    speedup_vs_per_pair: if per_pair_pps > 0.0 {
                        pps / per_pair_pps
                    } else {
                        0.0
                    },
                });
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "\n{:<14} {:>6} {:>10} {:>14} {:>9}",
        "strategy", "kv", "batch", "pairs/sec", "speedup"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>10} {:>14.0} {:>8.2}x",
            r.strategy, r.backend, r.batch_size, r.pairs_per_sec, r.speedup_vs_per_pair
        );
    }
    // The indexed (*Many*) strategies exercise the full synchronous
    // `lwrite -> encode -> kv put -> R-tree insert` chain this refactor
    // targets; summarise those separately from the index-less One layouts,
    // whose per-record cost is hash-table bound and only benefits from
    // batching through ownership transfer and group flushing (and, on
    // multi-core hosts, parallel encoding).
    let speedup_over = |pred: &dyn Fn(&&Row) -> bool| {
        rows.iter()
            .filter(|r| r.mode == "batched")
            .filter(pred)
            .map(|r| r.speedup_vs_per_pair)
            .fold(f64::INFINITY, f64::min)
    };
    let indexed_chain = speedup_over(&|r| r.strategy.contains("Many"));
    let worst_batched = speedup_over(&|_| true);
    println!("\nindexed-chain (R-tree) batched speedup, min over configs: {indexed_chain:.2}x");
    println!("worst batched-vs-per-pair speedup across all configs: {worst_batched:.2}x");

    if cfg.smoke {
        println!("smoke run: skipping BENCH_ingest.json");
        return;
    }
    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::from("{\n");
    // `backend_hasher` records that the kv tables are keyed through the
    // FxHash-style hasher (`subzero_store::hash`); the One-granularity
    // per-pair baselines are hash-table bound, so these numbers are not
    // comparable to runs recorded under the default SipHash.  `encode` and
    // `key_dedup` record that the batched rows ran the zero-copy arena
    // encode path with write-side key dedup.
    json.push_str(&format!(
        "  \"workload\": {{\"shape\": \"{}\", \"fanin\": {}, \"fanout\": {}, \"coverage\": {}, \"pairs\": {}, \"workers\": {}, \"backend_hasher\": \"fx\", \"encode\": \"arena\", \"key_dedup\": true, \"dedup_rate\": {}}},\n",
        cfg.micro.shape, cfg.micro.fanin, cfg.micro.fanout, cfg.micro.coverage, n_pairs, default_workers(), cfg.dedup_rate
    ));
    json.push_str(&format!(
        "  \"indexed_chain_min_speedup\": {indexed_chain:.3},\n  \"worst_batched_speedup\": {worst_batched:.3},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"backend\": \"{}\", \"mode\": \"{}\", \"batch_size\": {}, \"pairs_per_sec\": {:.1}, \"speedup_vs_per_pair\": {:.3}}}{}\n",
            r.strategy,
            r.backend,
            r.mode,
            r.batch_size,
            r.pairs_per_sec,
            r.speedup_vs_per_pair,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest.json");
    std::fs::write(&out, json).expect("write BENCH_ingest.json");
    println!("wrote {}", out.display());
}
