//! The genomics (medulloblastoma relapse prediction) benchmark of §II-B /
//! §VIII-B.
//!
//! A two-phase workflow: a modelling phase that extracts the predictive
//! features from a training patient-feature matrix and computes a naive
//! Bayesian-style model (UDFs *E* and *F*), and a testing phase that extracts
//! the same features from a test matrix and predicts relapse per patient
//! (UDFs *G* and *H*).  Ten built-in mapping operators surround the four
//! UDFs, matching Figure 2 of the paper.
//!
//! The Broad Institute's real 56×100 patient-feature matrix is replaced by a
//! synthetic cohort generator with the same shape and, as in the paper, the
//! cohort is replicated (`scale`) to produce larger datasets.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subzero::query::QuerySpec;
use subzero::SubZero;
use subzero_array::{Array, ArrayRef, Coord, Shape};
use subzero_engine::executor::WorkflowRun;
use subzero_engine::ops::{
    AggregateKind, AxisAggregate, BinaryKind, Elementwise1, Elementwise2, GlobalAggregate,
    Transpose, UnaryKind,
};
use subzero_engine::{InputSource, LineageMode, LineageSink, OpId, OpMeta, Operator, Workflow};

use crate::harness::NamedQuery;

/// Parameters of the synthetic cohort.
#[derive(Clone, Copy, Debug)]
pub struct CohortConfig {
    /// Number of features (rows); the paper's matrix has 55 features plus a
    /// relapse label row.
    pub features: u32,
    /// Number of patients (columns) before replication.
    pub patients: u32,
    /// Replication factor applied to the patient axis (the paper reports
    /// results for the dataset scaled by 100×).
    pub scale: u32,
    /// Number of features that actually carry signal (selected by UDF E).
    pub informative_features: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig {
            features: 56,
            patients: 100,
            scale: 10,
            informative_features: 12,
            seed: 11,
        }
    }
}

impl CohortConfig {
    /// The paper's configuration: the 56×100 matrix replicated 100×.
    pub fn paper_scale() -> Self {
        CohortConfig {
            scale: 100,
            ..Default::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        CohortConfig {
            features: 12,
            patients: 20,
            scale: 1,
            informative_features: 4,
            seed: 11,
        }
    }

    /// Shape of the generated matrices: features × (patients × scale).
    pub fn shape(&self) -> Shape {
        Shape::d2(self.features, self.patients * self.scale)
    }
}

/// Generates training and test patient-feature matrices.
///
/// Row 0 of the training matrix holds the relapse label; informative feature
/// rows are correlated with it, the rest are noise.
#[derive(Clone, Debug)]
pub struct CohortGenerator {
    config: CohortConfig,
}

impl CohortGenerator {
    /// Creates a generator.
    pub fn new(config: CohortConfig) -> Self {
        CohortGenerator { config }
    }

    fn matrix(&self, rng: &mut StdRng) -> Array {
        let cfg = &self.config;
        let shape = cfg.shape();
        let mut m = Array::zeros(shape);
        for p in 0..shape.cols() {
            let relapse = if rng.gen_bool(0.4) { 1.0 } else { 0.0 };
            m.set(&Coord::d2(0, p), relapse);
            for f in 1..cfg.features {
                let v = if f <= cfg.informative_features {
                    // Correlated with relapse, with noise.
                    relapse * 0.8 + rng.gen_range(-0.3..0.3)
                } else {
                    rng.gen_range(0.0..1.0)
                };
                m.set(&Coord::d2(f, p), v.clamp(0.0, 1.0));
            }
        }
        m
    }

    /// Generates the `(training, test)` matrices.
    pub fn generate(&self) -> (Array, Array) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (self.matrix(&mut rng), self.matrix(&mut rng))
    }
}

// ---------------------------------------------------------------------------
// UDFs
// ---------------------------------------------------------------------------

/// UDFs *E* and *G*: extract the informative feature rows from a
/// patient-feature matrix.
///
/// The rows to keep are chosen from the data (by variance against row 0), so
/// the operator is not a mapping operator; each output cell depends on one
/// input cell and the payload stores the source row index.
#[derive(Debug, Clone)]
pub struct ExtractFeatures {
    /// Number of feature rows to keep.
    pub keep: u32,
}

impl ExtractFeatures {
    /// Creates an extractor keeping the `keep` most label-correlated rows.
    pub fn new(keep: u32) -> Self {
        ExtractFeatures { keep }
    }

    /// The source rows selected for the given input, ordered by output row.
    fn selected_rows(&self, input: &Array) -> Vec<u32> {
        let shape = input.shape();
        // Score each feature row by absolute correlation with row 0 (label).
        let label: Vec<f64> = (0..shape.cols())
            .map(|p| input.get(&Coord::d2(0, p)))
            .collect();
        let label_mean = label.iter().sum::<f64>() / label.len() as f64;
        let mut scored: Vec<(u32, f64)> = (1..shape.rows())
            .map(|f| {
                let row: Vec<f64> = (0..shape.cols())
                    .map(|p| input.get(&Coord::d2(f, p)))
                    .collect();
                let row_mean = row.iter().sum::<f64>() / row.len() as f64;
                let cov: f64 = row
                    .iter()
                    .zip(&label)
                    .map(|(r, l)| (r - row_mean) * (l - label_mean))
                    .sum();
                (f, cov.abs())
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut rows: Vec<u32> = scored
            .into_iter()
            .take(self.keep as usize)
            .map(|(f, _)| f)
            .collect();
        rows.sort_unstable();
        rows
    }
}

impl Operator for ExtractFeatures {
    fn name(&self) -> &str {
        "udf_extract_features"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        Shape::d2(self.keep, input_shapes[0].cols())
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Full, LineageMode::Pay, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let rows = self.selected_rows(input);
        let out_shape = Shape::d2(rows.len() as u32, shape.cols());
        let mut out = Array::zeros(out_shape);
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay) || cur_modes.contains(&LineageMode::Comp);
        for (out_row, &src_row) in rows.iter().enumerate() {
            for p in 0..shape.cols() {
                let oc = Coord::d2(out_row as u32, p);
                let ic = Coord::d2(src_row, p);
                out.set(&oc, input.get(&ic));
                if full {
                    sink.lwrite(vec![oc], vec![vec![ic]]);
                }
                if pay {
                    sink.lwrite_payload(vec![oc], (src_row as u16).to_le_bytes().to_vec());
                }
            }
        }
        out
    }

    fn map_payload(
        &self,
        outcell: &Coord,
        payload: &[u8],
        _i: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        if payload.len() < 2 {
            return Some(vec![]);
        }
        let src_row = u16::from_le_bytes([payload[0], payload[1]]) as u32;
        let shape = meta.input_shape(0);
        if src_row < shape.rows() && outcell.get(1) < shape.cols() {
            Some(vec![Coord::d2(src_row, outcell.get(1))])
        } else {
            Some(vec![])
        }
    }
}

/// UDF *F*: compute the model.
///
/// For each extracted feature the model stores, per class (no relapse /
/// relapse), the mean feature value over the training patients of that class
/// — a naive-Bayes style summary.  Every model cell depends on the feature's
/// entire row of the extracted training matrix plus the label row; the
/// payload stores the feature (row) index.
#[derive(Debug, Clone, Default)]
pub struct ComputeModel;

impl Operator for ComputeModel {
    fn name(&self) -> &str {
        "udf_compute_model"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        Shape::d2(input_shapes[0].rows(), 2)
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Full, LineageMode::Pay, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let features = &inputs[0]; // extracted features × patients
        let labels = &inputs[1]; // 1 × patients (relapse labels)
        let shape = features.shape();
        let patients = shape.cols();
        let out_shape = Shape::d2(shape.rows(), 2);
        let mut out = Array::zeros(out_shape);
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay) || cur_modes.contains(&LineageMode::Comp);
        for f in 0..shape.rows() {
            let mut sums = [0.0f64; 2];
            let mut counts = [0.0f64; 2];
            for p in 0..patients {
                let class = if labels.get(&Coord::d2(0, p)) > 0.5 {
                    1
                } else {
                    0
                };
                sums[class] += features.get(&Coord::d2(f, p));
                counts[class] += 1.0;
            }
            for class in 0..2 {
                let mean = if counts[class] > 0.0 {
                    sums[class] / counts[class]
                } else {
                    0.0
                };
                out.set(&Coord::d2(f, class as u32), mean);
            }
            let feature_row: Vec<Coord> = (0..patients).map(|p| Coord::d2(f, p)).collect();
            let label_row: Vec<Coord> = (0..patients).map(|p| Coord::d2(0, p)).collect();
            let outcells = vec![Coord::d2(f, 0), Coord::d2(f, 1)];
            if full {
                sink.lwrite(outcells.clone(), vec![feature_row, label_row]);
            }
            if pay {
                sink.lwrite_payload(outcells, (f as u16).to_le_bytes().to_vec());
            }
        }
        out
    }

    fn map_payload(
        &self,
        _outcell: &Coord,
        payload: &[u8],
        input_idx: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        if payload.len() < 2 {
            return Some(vec![]);
        }
        let f = u16::from_le_bytes([payload[0], payload[1]]) as u32;
        let patients = meta.input_shape(0).cols();
        Some(match input_idx {
            0 => (0..patients).map(|p| Coord::d2(f, p)).collect(),
            _ => (0..patients).map(|p| Coord::d2(0, p)).collect(),
        })
    }

    fn spans_entire_array(&self, input_idx: usize, backward: bool) -> bool {
        // The whole extracted matrix feeds the model and vice versa; the
        // label row (input 1) is entirely consumed too, but the model's
        // backward lineage into input 1 is only row 0 of the *training*
        // matrix further upstream — still the entire input at this step.
        let _ = (input_idx, backward);
        true
    }
}

/// UDF *H*: predict relapse per test patient.
///
/// Each prediction compares the patient's extracted feature column against
/// the two class profiles of the model; it therefore depends on the entire
/// model and on that patient's column.  The payload stores the patient
/// (column) index.
#[derive(Debug, Clone, Default)]
pub struct PredictRelapse;

impl Operator for PredictRelapse {
    fn name(&self) -> &str {
        "udf_predict_relapse"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        Shape::d2(1, input_shapes[1].cols())
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Full, LineageMode::Pay, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let model = &inputs[0]; // features × 2
        let test = &inputs[1]; // features × patients
        let features = model.shape().rows();
        let patients = test.shape().cols();
        let mut out = Array::zeros(Shape::d2(1, patients));
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay) || cur_modes.contains(&LineageMode::Comp);
        let model_cells: Vec<Coord> = model.shape().iter().collect();
        for p in 0..patients {
            // Distance to each class profile; predict the closer class's
            // posterior-like score in [0, 1].
            let mut dist = [0.0f64; 2];
            for f in 0..features {
                let v = test.get(&Coord::d2(f, p));
                for (class, d) in dist.iter_mut().enumerate() {
                    let m = model.get(&Coord::d2(f, class as u32));
                    *d += (v - m) * (v - m);
                }
            }
            let score = dist[0] / (dist[0] + dist[1]).max(1e-12);
            out.set(&Coord::d2(0, p), score);
            let column: Vec<Coord> = (0..features).map(|f| Coord::d2(f, p)).collect();
            if full {
                sink.lwrite(vec![Coord::d2(0, p)], vec![model_cells.clone(), column]);
            }
            if pay {
                sink.lwrite_payload(vec![Coord::d2(0, p)], { p }.to_le_bytes().to_vec());
            }
        }
        out
    }

    fn map_payload(
        &self,
        _outcell: &Coord,
        payload: &[u8],
        input_idx: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        if payload.len() < 4 {
            return Some(vec![]);
        }
        let p = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]);
        Some(match input_idx {
            0 => meta.input_shape(0).iter().collect(),
            _ => {
                let features = meta.input_shape(1).rows();
                (0..features).map(|f| Coord::d2(f, p)).collect()
            }
        })
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Workflow
// ---------------------------------------------------------------------------

/// The genomics workflow: 10 built-in operators and 4 UDFs.
#[derive(Debug, Clone)]
pub struct GenomicsWorkflow {
    /// The workflow specification.
    pub workflow: Arc<Workflow>,
    /// Shape of the training/test matrices.
    pub matrix_shape: Shape,
    /// Training-side clamp (built-in).
    pub train_clamp: OpId,
    /// Training-side centering (built-in).
    pub train_center: OpId,
    /// Training-side scaling (built-in).
    pub train_scale: OpId,
    /// Training label-row per-feature mean (built-in, QC sink).
    pub train_row_mean: OpId,
    /// UDF E: extract features from the training matrix.
    pub extract_train: OpId,
    /// Transposed extraction (built-in, visualisation sink).
    pub extract_t: OpId,
    /// UDF F: compute the model.
    pub compute_model: OpId,
    /// Model normalisation (built-in).
    pub model_scale: OpId,
    /// Test-side clamp (built-in).
    pub test_clamp: OpId,
    /// Test-side centering (built-in).
    pub test_center: OpId,
    /// Test-side scaling (built-in).
    pub test_scale: OpId,
    /// UDF G: extract features from the test matrix.
    pub extract_test: OpId,
    /// UDF H: predict relapse per patient.
    pub predict: OpId,
    /// Thresholded predictions (built-in).
    pub predict_round: OpId,
    /// Total predicted relapses (built-in, all-to-all sink).
    pub relapse_count: OpId,
}

impl GenomicsWorkflow {
    /// Builds the workflow for the given cohort configuration.
    pub fn build(config: &CohortConfig) -> Self {
        let mut b = Workflow::builder("genomics");
        let keep = config.informative_features;

        // Training phase.
        let train_clamp = b.add(
            Arc::new(Elementwise1::new(UnaryKind::Clamp(0.0, 1.0))),
            vec![InputSource::External("training".to_string())],
        );
        let train_center = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Offset(-0.5))),
            train_clamp,
        );
        let train_scale = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))),
            train_center,
        );
        let train_row_mean = b.add_unary(
            Arc::new(AxisAggregate::new(AggregateKind::Mean, 1)),
            train_clamp,
        );
        let extract_train = b.add_unary(Arc::new(ExtractFeatures::new(keep)), train_scale);
        let extract_t = b.add_unary(Arc::new(Transpose), extract_train);
        // The model consumes the extracted features and the (clamped) label
        // row; the label row is obtained by slicing row 0 of the training
        // matrix with a built-in.
        let label_row = b.add_unary(
            Arc::new(subzero_engine::ops::SliceOp::new(
                Coord::d2(0, 0),
                Coord::d2(0, config.shape().cols() - 1),
            )),
            train_clamp,
        );
        let compute_model = b.add_binary(Arc::new(ComputeModel), extract_train, label_row);
        let model_scale = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Scale(1.0))),
            compute_model,
        );

        // Testing phase.
        let test_clamp = b.add(
            Arc::new(Elementwise1::new(UnaryKind::Clamp(0.0, 1.0))),
            vec![InputSource::External("test".to_string())],
        );
        let test_center = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Offset(-0.5))),
            test_clamp,
        );
        let test_scale = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))),
            test_center,
        );
        let extract_test = b.add_unary(Arc::new(ExtractFeatures::new(keep)), test_scale);
        let predict = b.add_binary(Arc::new(PredictRelapse), model_scale, extract_test);
        let predict_round = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Threshold(0.5))),
            predict,
        );
        let relapse_count = b.add_unary(
            Arc::new(GlobalAggregate::new(AggregateKind::Sum)),
            predict_round,
        );
        // One more built-in provides a relapse-rate style sink that combines
        // the count with itself (a stand-in for a report-formatting step).
        let _relapse_rate = b.add_binary(
            Arc::new(Elementwise2::new(BinaryKind::Min)),
            relapse_count,
            relapse_count,
        );

        let workflow = Arc::new(b.build().expect("genomics workflow is a valid DAG"));
        GenomicsWorkflow {
            workflow,
            matrix_shape: config.shape(),
            train_clamp,
            train_center,
            train_scale,
            train_row_mean,
            extract_train,
            extract_t,
            compute_model,
            model_scale,
            test_clamp,
            test_center,
            test_scale,
            extract_test,
            predict,
            predict_round,
            relapse_count,
        }
    }

    /// Ids of the four UDFs (E, F, G, H).
    pub fn udfs(&self) -> Vec<OpId> {
        vec![
            self.extract_train,
            self.compute_model,
            self.extract_test,
            self.predict,
        ]
    }

    /// External input map.
    pub fn inputs(training: Array, test: Array) -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert("training".to_string(), training);
        m.insert("test".to_string(), test);
        m
    }

    /// The benchmark's lineage queries: two backward, two forward, matching
    /// the visualisation-driven queries of §II-B.
    pub fn queries(&self, sz: &mut SubZero, run: &WorkflowRun) -> Vec<NamedQuery> {
        let predictions = sz
            .engine()
            .output_of(run, self.predict_round)
            .expect("prediction output");
        // The first predicted relapse (or patient 0 if none).
        let relapse_cell = predictions
            .coords_where(|v| v > 0.5)
            .first()
            .copied()
            .unwrap_or(Coord::d2(0, 0));

        // The traversals are derived from the workflow DAG by the query
        // session — each query names only its endpoint arrays, and multi-path
        // fan-out at joins is automatic.

        // BQ 0: a relapse prediction -> training matrix (through the model).
        let bq0 = QuerySpec::backward_to_source(vec![relapse_cell], self.predict_round, "training");

        // BQ 1: a model feature -> training matrix.
        let bq1 =
            QuerySpec::backward_to_source(vec![Coord::d2(0, 1)], self.compute_model, "training");

        // A handful of training cells: one informative feature's values for
        // the first few patients.
        let training_cells: Vec<Coord> = (0..8.min(self.matrix_shape.cols()))
            .map(|p| Coord::d2(1, p))
            .collect();

        // FQ 0: training cells -> the model.
        let fq0 =
            QuerySpec::forward_from_source(training_cells.clone(), "training", self.compute_model);

        // FQ 1: training cells -> the final predictions.
        let fq1 = QuerySpec::forward_from_source(training_cells, "training", self.predict_round);

        vec![
            NamedQuery::new("BQ 0", bq0),
            NamedQuery::new("BQ 1", bq1),
            NamedQuery::new("FQ 0", fq0),
            NamedQuery::new("FQ 1", fq1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero::model::{LineageStrategy, StorageStrategy};
    use subzero_engine::OperatorExt;

    #[test]
    fn cohort_generator_shapes_and_determinism() {
        let cfg = CohortConfig::tiny();
        let (train, test) = CohortGenerator::new(cfg).generate();
        assert_eq!(train.shape(), cfg.shape());
        assert_eq!(test.shape(), cfg.shape());
        let (train2, _) = CohortGenerator::new(cfg).generate();
        assert_eq!(train, train2);
        // Labels are binary.
        for p in 0..cfg.shape().cols() {
            let label = train.get(&Coord::d2(0, p));
            assert!(label == 0.0 || label == 1.0);
        }
    }

    #[test]
    fn paper_scale_replicates_patients() {
        let cfg = CohortConfig::paper_scale();
        assert_eq!(cfg.shape(), Shape::d2(56, 10_000));
    }

    #[test]
    fn workflow_structure() {
        let cfg = CohortConfig::tiny();
        let wf = GenomicsWorkflow::build(&cfg);
        assert_eq!(wf.udfs().len(), 4);
        // 4 UDFs + built-ins; every UDF is a non-mapping operator.
        for id in wf.udfs() {
            assert!(!wf.workflow.node(id).unwrap().operator.is_mapping());
        }
        let builtins = wf.workflow.len() - 4;
        assert!(
            builtins >= 10,
            "at least ten built-in operators, got {builtins}"
        );
    }

    #[test]
    fn extract_features_keeps_informative_rows() {
        let cfg = CohortConfig::tiny();
        let (train, _) = CohortGenerator::new(cfg).generate();
        let op = ExtractFeatures::new(cfg.informative_features);
        let rows = op.selected_rows(&train);
        assert_eq!(rows.len(), cfg.informative_features as usize);
        // The informative rows are 1..=informative_features by construction;
        // correlation-based selection should recover most of them.
        let informative: Vec<u32> = (1..=cfg.informative_features).collect();
        let recovered = rows.iter().filter(|r| informative.contains(r)).count();
        assert!(
            recovered * 2 >= informative.len(),
            "selected {rows:?}, expected mostly {informative:?}"
        );
        // map_p maps an output cell back to the stored source row.
        let meta = OpMeta::new(
            vec![cfg.shape()],
            Shape::d2(cfg.informative_features, cfg.shape().cols()),
        );
        let cells = op
            .map_payload(&Coord::d2(0, 3), &(5u16).to_le_bytes(), 0, &meta)
            .unwrap();
        assert_eq!(cells, vec![Coord::d2(5, 3)]);
    }

    #[test]
    fn compute_model_separates_classes() {
        let shape = Shape::d2(2, 6);
        // Feature row 0: high for relapse patients; labels alternate.
        let mut features = Array::zeros(shape);
        let mut labels = Array::zeros(Shape::d2(1, 6));
        for p in 0..6 {
            let relapse = p % 2 == 0;
            labels.set(&Coord::d2(0, p), if relapse { 1.0 } else { 0.0 });
            features.set(&Coord::d2(0, p), if relapse { 0.9 } else { 0.1 });
            features.set(&Coord::d2(1, p), 0.5);
        }
        let op = ComputeModel;
        let out = op.run(
            &[Arc::new(features), Arc::new(labels)],
            &[LineageMode::Blackbox],
            &mut subzero_engine::BufferSink::new(),
        );
        assert_eq!(out.shape(), Shape::d2(2, 2));
        assert!(out.get(&Coord::d2(0, 1)) > out.get(&Coord::d2(0, 0)));
        assert!((out.get(&Coord::d2(1, 0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_queries_return_lineage_under_all_strategies() {
        let cfg = CohortConfig::tiny();
        let (train, test) = CohortGenerator::new(cfg).generate();
        let wf = GenomicsWorkflow::build(&cfg);

        for strategy_ctor in [
            LineageStrategy::new(),
            {
                let mut s = LineageStrategy::new();
                for udf in wf.udfs() {
                    s.set(udf, vec![StorageStrategy::pay_one()]);
                }
                s
            },
            {
                let mut s = LineageStrategy::new();
                for udf in wf.udfs() {
                    s.set(
                        udf,
                        vec![
                            StorageStrategy::full_one(),
                            StorageStrategy::full_one_forward(),
                        ],
                    );
                }
                s
            },
        ] {
            let mut sz = SubZero::new();
            sz.set_strategy(strategy_ctor);
            let run = sz
                .execute(
                    &wf.workflow,
                    &GenomicsWorkflow::inputs(train.clone(), test.clone()),
                )
                .unwrap();
            let queries = wf.queries(&mut sz, &run);
            assert_eq!(queries.len(), 4);
            for nq in &queries {
                let result = sz.session(&run).query(&nq.spec).expect("query executes");
                assert!(
                    !result.cells.is_empty(),
                    "query {} returned no lineage",
                    nq.name
                );
            }
        }
    }

    #[test]
    fn forward_and_backward_answers_are_consistent() {
        // If a training cell appears in the backward lineage of a prediction,
        // that prediction must appear in the training cell's forward lineage.
        let cfg = CohortConfig::tiny();
        let (train, test) = CohortGenerator::new(cfg).generate();
        let wf = GenomicsWorkflow::build(&cfg);
        let mut sz = SubZero::new();
        let run = sz
            .execute(&wf.workflow, &GenomicsWorkflow::inputs(train, test))
            .unwrap();
        let queries = wf.queries(&mut sz, &run);
        let bq0 = &queries[0];
        let fq1 = &queries[3];
        let backward = sz.session(&run).query(&bq0.spec).unwrap();
        // The backward query returns training-matrix cells; FQ1 starts from
        // feature row 1 cells.  If any of those cells are in the backward
        // result, the forward result must contain the original prediction.
        let overlap = fq1.spec.cells.iter().any(|c| backward.cells.contains(c));
        if overlap {
            let forward = sz.session(&run).query(&fq1.spec).unwrap();
            assert!(forward.cells.contains(&bq0.spec.cells[0]));
        }
    }
}
