//! A minimal benchmark harness used by the `cargo bench` targets.
//!
//! The build environment has no crates.io access, so criterion is not
//! available; this module provides the small slice of it the benches need:
//! auto-calibrated measurement loops, per-iteration times, throughput, and a
//! uniform one-line report format that is easy to grep and to parse.

use std::time::{Duration, Instant};

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Benchmark label, e.g. `capture/full_many/batch64`.
    pub name: String,
    /// Number of iterations measured.
    pub iters: u64,
    /// Total wall-clock time of the measured iterations.
    pub total: Duration,
}

impl Sample {
    /// Mean wall-clock time per iteration.
    pub fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }

    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iters as f64 / secs
        }
    }

    /// `elements_per_iter / seconds_per_iter` — throughput for benches whose
    /// iteration processes a known number of elements.
    pub fn throughput(&self, elements_per_iter: u64) -> f64 {
        self.per_sec() * elements_per_iter as f64
    }

    /// The standard one-line report.
    pub fn report(&self) -> String {
        format!(
            "bench {:<44} {:>12} /iter  ({} iters)",
            self.name,
            format_duration(self.per_iter()),
            self.iters
        )
    }
}

/// Formats a duration with a unit that keeps 3-4 significant digits.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Runs `f` repeatedly for roughly `target` wall-clock time (after one warmup
/// call) and returns the measurement.  The result of `f` is passed through
/// [`std::hint::black_box`] so the compiler cannot elide the work.
pub fn run<R>(name: impl Into<String>, target: Duration, mut f: impl FnMut() -> R) -> Sample {
    // Warmup + calibration: time one call to pick an iteration batch size.
    let start = Instant::now();
    std::hint::black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(50));

    let mut iters: u64 = 0;
    let mut total = Duration::ZERO;
    let batch = (target.as_nanos() / (once.as_nanos() * 20)).clamp(1, 10_000) as u64;
    while total < target {
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        total += start.elapsed();
        iters += batch;
    }
    Sample {
        name: name.into(),
        iters,
        total,
    }
}

/// Runs and immediately prints a benchmark, returning the sample for further
/// reporting (e.g. throughput lines or JSON emission).
pub fn run_reported<R>(name: impl Into<String>, target: Duration, f: impl FnMut() -> R) -> Sample {
    let sample = run(name, target, f);
    println!("{}", sample.report());
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_counts_iterations() {
        let mut count = 0u64;
        let s = run("t", Duration::from_millis(5), || {
            count += 1;
            // A dependent-multiply chain keeps one iteration above a
            // nanosecond; a sub-nanosecond closure would make per_iter()
            // truncate to Duration::ZERO and flake the assertion below.
            let mut acc = count;
            for i in 0..64 {
                acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(i));
            }
            acc
        });
        // One warmup call plus the measured iterations.
        assert_eq!(count, s.iters + 1);
        assert!(s.total >= Duration::from_millis(5));
        assert!(s.per_iter() > Duration::ZERO);
        assert!(s.per_sec() > 0.0);
        assert!(s.throughput(10) > s.per_sec());
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
