//! # subzero-bench
//!
//! The evaluation harness of the SubZero reproduction: the two end-to-end
//! scientific benchmarks of §II/§VIII (astronomy and genomics), the synthetic
//! microbenchmark of §VIII-C, the named strategy configurations of Table II,
//! and the binaries that regenerate every figure of the paper's evaluation.
//!
//! * [`astronomy`] — the LSST-style image-processing workflow (22 built-in
//!   operators + 4 UDFs), a synthetic sky generator, and the five backward /
//!   one forward lineage queries of Figure 5.
//! * [`genomics`] — the medulloblastoma-prediction workflow (10 built-in
//!   operators + 4 UDFs), a synthetic patient-feature cohort generator, and
//!   the two backward / two forward queries of Figure 6.
//! * [`micro`] — the tunable fanin/fanout synthetic operator of Figures 8–9.
//! * [`strategies`] — the named lineage strategies of Table II.
//! * [`harness`] — measurement helpers shared by the figure binaries:
//!   running a workload under a strategy, recording disk/runtime overheads
//!   and per-query latencies.
//! * [`report`] — plain-text table and CSV rendering.
//!
//! Figure binaries (run with `cargo run --release -p subzero-bench --bin …`):
//! `fig5_astronomy`, `fig6_genomics`, `fig7_optimizer`, `fig8_micro_overhead`,
//! `fig9_micro_query`, and `all_experiments` which runs everything.

pub mod astronomy;
pub mod genomics;
pub mod harness;
pub mod micro;
pub mod report;
pub mod strategies;
pub mod timing;

pub use harness::{BenchmarkMeasurement, NamedQuery, QueryMeasurement};
