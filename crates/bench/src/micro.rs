//! The synthetic microbenchmark of §VIII-C.
//!
//! A single operator processes a square array and generates lineage with
//! tunable characteristics: region pairs are created by picking a cluster of
//! output cells whose radius is defined by the *fanout*, and *fanin* input
//! cells from the same area, until the pairs cover a configurable fraction of
//! the output array (10% in the paper).  The payload variant stores
//! `fanin × 4` bytes per pair.  Figures 8 and 9 sweep the fanin and fanout of
//! this operator across the storage strategies.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subzero::query::QuerySpec;
use subzero::SubZero;
use subzero_array::{Array, ArrayRef, Coord, Shape};
use subzero_engine::executor::WorkflowRun;
use subzero_engine::{
    InputSource, LineageMode, LineageSink, OpId, OpMeta, Operator, RegionPair, Workflow,
};

use crate::harness::NamedQuery;

/// Parameters of the synthetic lineage generator.
#[derive(Clone, Copy, Debug)]
pub struct MicroConfig {
    /// Array shape (1000×1000 in the paper).
    pub shape: Shape,
    /// Number of input cells per region pair.
    pub fanin: usize,
    /// Number of output cells per region pair (the cluster radius follows
    /// from it).
    pub fanout: usize,
    /// Fraction of output cells covered by lineage (0.1 in the paper).
    pub coverage: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            shape: Shape::d2(1000, 1000),
            fanin: 10,
            fanout: 1,
            coverage: 0.1,
            seed: 42,
        }
    }
}

impl MicroConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        MicroConfig {
            shape: Shape::d2(64, 64),
            fanin: 5,
            fanout: 3,
            coverage: 0.1,
            seed: 42,
        }
    }

    /// Number of region pairs the generator will produce.
    pub fn num_pairs(&self) -> usize {
        let target = (self.shape.num_cells() as f64 * self.coverage) as usize;
        (target / self.fanout.max(1)).max(1)
    }
}

/// One synthetically generated region pair.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticPair {
    /// Output cells of the pair.
    pub outcells: Vec<Coord>,
    /// Input cells of the pair.
    pub incells: Vec<Coord>,
}

/// Deterministically generates the benchmark's region pairs from the config.
pub fn generate_pairs(config: &MicroConfig) -> Vec<SyntheticPair> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let shape = config.shape;
    let cluster_radius = ((config.fanout.max(config.fanin) as f64).sqrt().ceil() as u32).max(1);
    let mut pairs = Vec::with_capacity(config.num_pairs());
    for _ in 0..config.num_pairs() {
        let center = Coord::d2(
            rng.gen_range(0..shape.rows()),
            rng.gen_range(0..shape.cols()),
        );
        let area = shape.neighborhood(&center, cluster_radius * 2);
        let mut outcells = Vec::with_capacity(config.fanout);
        let mut incells = Vec::with_capacity(config.fanin);
        for i in 0..config.fanout {
            outcells.push(area[(i * 7) % area.len()]);
        }
        for i in 0..config.fanin {
            incells.push(area[(i * 11 + 3) % area.len()]);
        }
        outcells.sort_unstable();
        outcells.dedup();
        incells.sort_unstable();
        incells.dedup();
        pairs.push(SyntheticPair { outcells, incells });
    }
    pairs
}

/// The synthetic operator: copies its input and emits the generated pairs as
/// lineage in whatever modes are requested.
#[derive(Debug, Clone)]
pub struct SyntheticOp {
    config: MicroConfig,
    pairs: Vec<SyntheticPair>,
}

impl SyntheticOp {
    /// Creates the operator (pre-generating its pairs so repeated runs are
    /// identical — a requirement for black-box re-execution).
    pub fn new(config: MicroConfig) -> Self {
        SyntheticOp {
            pairs: generate_pairs(&config),
            config,
        }
    }

    /// The pairs this operator emits.
    pub fn pairs(&self) -> &[SyntheticPair] {
        &self.pairs
    }

    /// The generated pairs as engine [`RegionPair`]s of the given mode
    /// (`Full` pairs, or payload pairs for any payload-carrying mode).  Used
    /// by `run()` and by the ingestion benchmarks, which feed datastores
    /// directly.
    pub fn region_pairs(&self, mode: LineageMode) -> Vec<RegionPair> {
        self.pairs
            .iter()
            .map(|pair| {
                if mode == LineageMode::Full {
                    RegionPair::Full {
                        outcells: pair.outcells.clone(),
                        incells: vec![pair.incells.clone()],
                    }
                } else {
                    RegionPair::Payload {
                        outcells: pair.outcells.clone(),
                        payload: self.payload_for(pair),
                    }
                }
            })
            .collect()
    }

    fn payload_for(&self, pair: &SyntheticPair) -> Vec<u8> {
        // fanin × 4 bytes: the packed linear index of each input cell.
        let mut payload = Vec::with_capacity(pair.incells.len() * 4);
        for c in &pair.incells {
            payload.extend_from_slice(&(self.config.shape.ravel(c) as u32).to_le_bytes());
        }
        payload
    }
}

impl Operator for SyntheticOp {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![
            LineageMode::Full,
            LineageMode::Pay,
            LineageMode::Comp,
            LineageMode::Blackbox,
        ]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay) || cur_modes.contains(&LineageMode::Comp);
        // The generator has the whole pair set materialised, so it hands the
        // sink pre-built runs instead of issuing one lwrite() per pair.
        if full {
            sink.lwrite_batch(self.region_pairs(LineageMode::Full));
        }
        if pay {
            sink.lwrite_batch(self.region_pairs(LineageMode::Pay));
        }
        (*inputs[0]).clone()
    }

    fn map_payload(
        &self,
        _outcell: &Coord,
        payload: &[u8],
        _i: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        let shape = meta.input_shape(0);
        let mut cells = Vec::with_capacity(payload.len() / 4);
        for chunk in payload.chunks_exact(4) {
            let idx = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as usize;
            if idx < shape.num_cells() {
                cells.push(shape.unravel(idx));
            }
        }
        Some(cells)
    }
}

/// The single-operator micro workflow and helpers for building its queries.
#[derive(Debug, Clone)]
pub struct MicroWorkflow {
    /// The workflow (one synthetic operator reading one external array).
    pub workflow: Arc<Workflow>,
    /// Configuration used to build it.
    pub config: MicroConfig,
    /// The synthetic operator's id.
    pub op: OpId,
    /// The generated pairs (for query construction and oracles).
    pub pairs: Vec<SyntheticPair>,
}

impl MicroWorkflow {
    /// Builds the workflow.
    pub fn build(config: MicroConfig) -> Self {
        let op_impl = SyntheticOp::new(config);
        let pairs = op_impl.pairs().to_vec();
        let mut b = Workflow::builder("micro");
        let op = b.add(
            Arc::new(op_impl),
            vec![InputSource::External("input".to_string())],
        );
        MicroWorkflow {
            workflow: Arc::new(b.build().expect("micro workflow builds")),
            config,
            op,
            pairs,
        }
    }

    /// The external input map (a zero array: the operator's behaviour does
    /// not depend on values).
    pub fn inputs(&self) -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert("input".to_string(), Array::zeros(self.config.shape));
        m
    }

    /// `n` output cells that are known to have lineage.
    pub fn backward_cells(&self, n: usize) -> Vec<Coord> {
        self.pairs
            .iter()
            .flat_map(|p| p.outcells.iter().copied())
            .take(n)
            .collect()
    }

    /// `n` input cells that are known to have lineage.
    pub fn forward_cells(&self, n: usize) -> Vec<Coord> {
        self.pairs
            .iter()
            .flat_map(|p| p.incells.iter().copied())
            .take(n)
            .collect()
    }

    /// A backward query over `n` output cells that are known to have lineage.
    pub fn backward_query(&self, n: usize) -> NamedQuery {
        let cells = self.backward_cells(n);
        NamedQuery::new(
            format!("BQ({} cells)", cells.len()),
            QuerySpec::backward_to_source(cells, self.op, "input"),
        )
    }

    /// A forward query over `n` input cells that are known to have lineage.
    pub fn forward_query(&self, n: usize) -> NamedQuery {
        let cells = self.forward_cells(n);
        NamedQuery::new(
            format!("FQ({} cells)", cells.len()),
            QuerySpec::forward_from_source(cells, "input", self.op),
        )
    }

    /// `count` disjoint backward query batches of `n` cells each, for the
    /// multi-query benchmarks.
    pub fn backward_batches(&self, count: usize, n: usize) -> Vec<Vec<Coord>> {
        let cells: Vec<Coord> = self
            .pairs
            .iter()
            .flat_map(|p| p.outcells.iter().copied())
            .take(count * n)
            .collect();
        cells.chunks(n.max(1)).map(|c| c.to_vec()).collect()
    }

    /// Benchmark queries of §VIII-C: 1000-cell backward and forward queries.
    pub fn queries(&self, _sz: &mut SubZero, _run: &WorkflowRun) -> Vec<NamedQuery> {
        vec![self.backward_query(1000), self.forward_query(1000)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero::model::{LineageStrategy, StorageStrategy};

    #[test]
    fn pair_generation_is_deterministic_and_respects_coverage() {
        let cfg = MicroConfig::tiny();
        let a = generate_pairs(&cfg);
        let b = generate_pairs(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.num_pairs());
        let total_out: usize = a.iter().map(|p| p.outcells.len()).sum();
        let target = (cfg.shape.num_cells() as f64 * cfg.coverage) as usize;
        assert!(total_out <= target + cfg.fanout * 2);
        for pair in &a {
            assert!(!pair.outcells.is_empty());
            assert!(!pair.incells.is_empty());
            assert!(pair.incells.len() <= cfg.fanin);
            assert!(pair.outcells.len() <= cfg.fanout);
        }
    }

    #[test]
    fn fanout_controls_pair_count() {
        let low = MicroConfig {
            fanout: 1,
            ..MicroConfig::tiny()
        };
        let high = MicroConfig {
            fanout: 16,
            ..MicroConfig::tiny()
        };
        assert!(generate_pairs(&low).len() > generate_pairs(&high).len());
    }

    #[test]
    fn payload_roundtrips_through_map_payload() {
        let cfg = MicroConfig::tiny();
        let op = SyntheticOp::new(cfg);
        let meta = OpMeta::new(vec![cfg.shape], cfg.shape);
        let pair = &op.pairs()[0];
        let payload = op.payload_for(pair);
        assert_eq!(payload.len(), pair.incells.len() * 4);
        let cells = op
            .map_payload(&pair.outcells[0], &payload, 0, &meta)
            .unwrap();
        assert_eq!(cells.len(), pair.incells.len());
        for c in &pair.incells {
            assert!(cells.contains(c));
        }
    }

    #[test]
    fn queries_agree_across_strategies() {
        let cfg = MicroConfig::tiny();
        let micro = MicroWorkflow::build(cfg);
        let strategies: Vec<(&str, LineageStrategy)> = vec![
            ("blackbox", LineageStrategy::new()),
            (
                "full_one",
                LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_one()]),
            ),
            (
                "full_many",
                LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_many()]),
            ),
            (
                "pay_one",
                LineageStrategy::uniform([micro.op], vec![StorageStrategy::pay_one()]),
            ),
            (
                "pay_many",
                LineageStrategy::uniform([micro.op], vec![StorageStrategy::pay_many()]),
            ),
            (
                "full_fwd",
                LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_one_forward()]),
            ),
        ];
        let mut reference_back: Option<Vec<Coord>> = None;
        let mut reference_fwd: Option<Vec<Coord>> = None;
        for (name, strategy) in strategies {
            let mut sz = SubZero::new();
            sz.set_strategy(strategy);
            let run = sz.execute(&micro.workflow, &micro.inputs()).unwrap();
            let bq = micro.backward_query(50);
            let fq = micro.forward_query(50);
            let mut session = sz.session(&run);
            let back = session.query(&bq.spec).unwrap().cells.to_coords();
            let fwd = session.query(&fq.spec).unwrap().cells.to_coords();
            match &reference_back {
                None => {
                    reference_back = Some(back);
                    reference_fwd = Some(fwd);
                }
                Some(expected) => {
                    assert_eq!(&back, expected, "backward answer differs under {name}");
                    assert_eq!(
                        &fwd,
                        reference_fwd.as_ref().unwrap(),
                        "forward answer differs under {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn micro_queries_have_requested_sizes() {
        let micro = MicroWorkflow::build(MicroConfig::tiny());
        let bq = micro.backward_query(10);
        assert_eq!(bq.spec.cells.len(), 10);
        let fq = micro.forward_query(10);
        assert_eq!(fq.spec.cells.len(), 10);
        let batches = micro.backward_batches(4, 25);
        assert_eq!(batches.len(), 4);
        assert!(batches.iter().all(|b| b.len() == 25));
    }
}
