//! Measurement helpers shared by the figure binaries.
//!
//! A benchmark run is: build a workflow and its inputs, install a lineage
//! strategy, execute the workflow (recording capture overheads), then open a
//! query session and execute a set of named lineage queries (recording
//! per-query latency).  The paper's figures are different projections of
//! exactly these measurements.
//!
//! Queries are declarative [`QuerySpec`]s — endpoint arrays, no
//! hand-assembled `(operator, input)` paths; the session derives the
//! traversal from the workflow DAG at execution time.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use subzero::model::LineageStrategy;
use subzero::query::{QueryOptions, QuerySpec};
use subzero::SubZero;
use subzero_array::Array;
use subzero_engine::executor::WorkflowRun;
use subzero_engine::Workflow;

/// Parses `--name V` or `--name=V` from the process arguments (shared by
/// the bench binaries' ad-hoc knobs, e.g. `--dedup-rate 0.5` or
/// `--flushers 4`).  Returns `None` when the flag is absent or its value
/// fails to parse.
pub fn arg_value<T: FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return v.parse().ok();
        }
        if a == name {
            return args.get(i + 1).and_then(|v| v.parse().ok());
        }
    }
    None
}

/// A lineage query with a display name and per-query executor options.
#[derive(Clone, Debug)]
pub struct NamedQuery {
    /// Display name, e.g. `BQ 0` or `FQ 0 Slow`.
    pub name: String,
    /// The query itself: endpoint arrays + starting cells.
    pub spec: QuerySpec,
    /// Disable the entire-array optimization for this query (the paper's
    /// `FQ 0 Slow` variant).
    pub disable_entire_array: bool,
}

impl NamedQuery {
    /// A query with default options.
    pub fn new(name: impl Into<String>, spec: QuerySpec) -> Self {
        NamedQuery {
            name: name.into(),
            spec,
            disable_entire_array: false,
        }
    }

    /// The same query with the entire-array optimization disabled.
    pub fn without_entire_array(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self.disable_entire_array = true;
        self
    }
}

/// Latency and diagnostics of one query under one strategy.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// The query name.
    pub name: String,
    /// Wall-clock latency.
    pub elapsed: Duration,
    /// Number of result cells.
    pub result_cells: usize,
    /// Number of steps answered by operator re-execution.
    pub reexecutions: usize,
    /// Whether any step scanned a mismatched-index datastore.
    pub scanned: bool,
}

/// Everything measured for one `(workload, strategy)` pair.
#[derive(Clone, Debug)]
pub struct BenchmarkMeasurement {
    /// The strategy configuration name (Table II).
    pub strategy_name: String,
    /// Workflow execution time including lineage capture.
    pub workflow_runtime: Duration,
    /// Lineage bytes stored (hash entries + spatial indexes).
    pub lineage_bytes: usize,
    /// Bytes of the workflow's external input arrays (the paper's reference
    /// point for storage overhead).
    pub input_bytes: usize,
    /// Per-query measurements.
    pub queries: Vec<QueryMeasurement>,
}

impl BenchmarkMeasurement {
    /// Lineage storage overhead relative to the input arrays.
    pub fn disk_overhead_ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            0.0
        } else {
            self.lineage_bytes as f64 / self.input_bytes as f64
        }
    }

    /// Mean query latency across all measured queries.
    pub fn mean_query_secs(&self) -> f64 {
        if self.queries.is_empty() {
            0.0
        } else {
            self.queries
                .iter()
                .map(|q| q.elapsed.as_secs_f64())
                .sum::<f64>()
                / self.queries.len() as f64
        }
    }

    /// The latency of one named query, if it was measured.
    pub fn query_secs(&self, name: &str) -> Option<f64> {
        self.queries
            .iter()
            .find(|q| q.name == name)
            .map(|q| q.elapsed.as_secs_f64())
    }
}

/// Runs one benchmark configuration end to end: execute the workflow under
/// `strategy`, then run the queries produced by `queries_for`.
///
/// `queries_for` receives the executed system and run so it can derive query
/// cells from actual outputs (e.g. the coordinates of a detected star).
///
/// Each query runs in its own session so per-query latencies stay
/// independent (a shared session would let one query's cached re-execution
/// pairs speed up the next — good for production, wrong for a benchmark
/// that compares per-query costs across strategies).
pub fn run_benchmark(
    strategy_name: &str,
    workflow: &Arc<Workflow>,
    inputs: &HashMap<String, Array>,
    strategy: LineageStrategy,
    query_time_optimizer: bool,
    queries_for: impl Fn(&mut SubZero, &WorkflowRun) -> Vec<NamedQuery>,
) -> BenchmarkMeasurement {
    let mut sz = SubZero::new();
    sz.set_strategy(strategy);
    let run = sz
        .execute(workflow, inputs)
        .expect("benchmark workflow execution failed");
    // Build the deferred spatial indexes now and charge them to capture:
    // otherwise the first query per datastore would pay for the index build
    // and the per-query latencies would not be comparable.
    let finish_time = sz.finish_capture(run.run_id);
    let input_bytes: usize = inputs.values().map(|a| a.size_bytes()).sum();
    let lineage_bytes = sz.lineage_bytes(run.run_id);
    let workflow_runtime = run.total_elapsed + finish_time;

    let queries = queries_for(&mut sz, &run);
    let mut measurements = Vec::with_capacity(queries.len());
    for nq in queries {
        sz.set_query_options(QueryOptions {
            entire_array_optimization: !nq.disable_entire_array,
            query_time_optimizer,
        });
        let result = sz
            .session(&run)
            .query(&nq.spec)
            .unwrap_or_else(|e| panic!("query '{}' failed: {e}", nq.name));
        measurements.push(QueryMeasurement {
            name: nq.name,
            elapsed: result.report.total_elapsed,
            result_cells: result.cells.len(),
            reexecutions: result.report.reexecutions(),
            scanned: result.report.any_scan(),
        });
    }

    BenchmarkMeasurement {
        strategy_name: strategy_name.to_string(),
        workflow_runtime,
        lineage_bytes,
        input_bytes,
        queries: measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero_array::{Coord, Shape};
    use subzero_engine::ops::{Elementwise1, UnaryKind};

    #[test]
    fn run_benchmark_measures_workflow_and_queries() {
        let mut b = Workflow::builder("harness-test");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(2.0))), "x");
        let c = b.add_unary(Arc::new(Elementwise1::new(UnaryKind::Offset(1.0))), a);
        let wf = Arc::new(b.build().unwrap());
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), Array::filled(Shape::d2(4, 4), 1.0));

        let m = run_benchmark(
            "Default",
            &wf,
            &inputs,
            LineageStrategy::new(),
            true,
            |_sz, _run| {
                vec![
                    NamedQuery::new(
                        "BQ 0",
                        QuerySpec::backward_to_source(vec![Coord::d2(0, 0)], c, "x"),
                    ),
                    NamedQuery::new(
                        "FQ 0",
                        QuerySpec::forward_from_source(vec![Coord::d2(1, 1)], "x", c),
                    ),
                ]
            },
        );
        assert_eq!(m.strategy_name, "Default");
        assert_eq!(m.input_bytes, 4 * 4 * 8);
        assert_eq!(m.lineage_bytes, 0, "default strategy stores nothing");
        assert_eq!(m.queries.len(), 2);
        assert_eq!(m.queries[0].result_cells, 1);
        assert!(m.query_secs("BQ 0").is_some());
        assert!(m.query_secs("missing").is_none());
        assert!(m.mean_query_secs() >= 0.0);
        assert_eq!(m.disk_overhead_ratio(), 0.0);
    }

    #[test]
    fn named_query_without_entire_array() {
        let q = NamedQuery::new(
            "FQ 0",
            QuerySpec::forward_from_source(vec![Coord::d2(0, 0)], "x", 0),
        )
        .without_entire_array("FQ 0 Slow");
        assert_eq!(q.name, "FQ 0 Slow");
        assert!(q.disable_entire_array);
    }
}
