//! Plain-text table and CSV rendering for the figure binaries.

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are converted to strings by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — the harness
    /// never emits commas inside cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a byte count as megabytes with two decimals.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration in seconds with three decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio such as "x / baseline" with one decimal and an `x` suffix.
pub fn ratio(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}x", value / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["strategy", "disk(MB)", "runtime(s)"]);
        t.row(vec!["BlackBox".into(), "0.00".into(), "1.2".into()]);
        t.row(vec!["<-FullMany".into(), "120.55".into(), "44.0".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("strategy"));
        assert!(rendered.contains("<-FullMany"));
        // Columns are aligned: every data line has the same prefix width up
        // to the second column.
        let lines: Vec<&str> = rendered.lines().collect();
        let col = lines[1].find("disk(MB)").unwrap();
        assert_eq!(lines[3].find("0.00"), Some(col));
        assert_eq!(lines[4].find("120.55"), Some(col));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(mb(0), "0.00");
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(10.0, 0.0), "-");
    }
}
