//! Figure 7 — Genomics benchmark under the lineage strategy optimizer.
//!
//! Varies the storage constraint `MaxDISK` (1, 10, 20, 50, 100 MB as in the
//! paper, scaled down proportionally when the workload itself is scaled
//! down), runs the optimizer, installs the strategy it picks, and reports
//! the disk and runtime overhead per constraint (`SubZero-X`, panel 7a) and
//! the query costs per constraint (panel 7b), plus the chosen per-UDF
//! strategies so the "black-box when the budget is tiny → space-efficient →
//! query-optimized" progression is visible.

use subzero::query::QuerySpec;
use subzero::SubZero;
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::harness::run_benchmark;
use subzero_bench::report::{mb, secs, Table};
use subzero_optimizer::{Optimizer, OptimizerConfig, QueryWorkload};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let config = if paper_scale {
        CohortConfig::paper_scale()
    } else {
        CohortConfig::default()
    };
    println!(
        "Genomics optimizer benchmark (Figure 7) — matrices {}{}\n",
        config.shape(),
        if paper_scale { ", paper scale" } else { "" }
    );

    let (train, test) = CohortGenerator::new(config).generate();
    let wf = GenomicsWorkflow::build(&config);
    let inputs = GenomicsWorkflow::inputs(train, test);

    // --- Profiling run: gather lineage statistics for the cost model. ------
    let mut profiler = SubZero::new();
    profiler.set_strategy(Optimizer::profiling_strategy(&wf.workflow));
    let profile_run = profiler
        .execute(&wf.workflow, &inputs)
        .expect("profiling run");
    let stats: std::collections::HashMap<_, _> = profiler
        .runtime()
        .run_stats(profile_run.run_id)
        .into_iter()
        .map(|(op, s)| (op, s.clone()))
        .collect();

    // --- Sample query workload (equal mix of backward and forward). --------
    let sample_queries: Vec<(QuerySpec, f64)> = wf
        .queries(&mut profiler, &profile_run)
        .into_iter()
        .map(|nq| (nq.spec, 1.0))
        .collect();
    let workload = QueryWorkload::from_specs(&wf.workflow, &sample_queries);

    // The paper's constraints assume the 100x cohort; scale them with the
    // dataset so the small default configuration sees the same transitions.
    let scale_factor = if paper_scale {
        1.0
    } else {
        config.scale as f64 / 100.0
    };
    let budgets_mb = [1.0, 10.0, 20.0, 50.0, 100.0];

    let mut overhead = Table::new(
        "Figure 7(a): disk and runtime overhead vs storage constraint",
        &["configuration", "budget(MB)", "lineage(MB)", "workflow(s)"],
    );
    let mut query_cost = Table::new(
        "Figure 7(b): query costs vs storage constraint (seconds)",
        &["configuration", "BQ 0", "BQ 1", "FQ 0", "FQ 1"],
    );
    let mut choices = Table::new(
        "Optimizer choices per UDF",
        &[
            "configuration",
            "E extract",
            "F model",
            "G extract",
            "H predict",
        ],
    );

    // Baseline: black-box only.
    let baseline = run_benchmark(
        "BlackBox",
        &wf.workflow,
        &inputs,
        subzero::model::LineageStrategy::new(),
        true,
        |sz, run| wf.queries(sz, run),
    );
    overhead.row(vec![
        "BlackBox".into(),
        "0".into(),
        mb(baseline.lineage_bytes),
        secs(baseline.workflow_runtime),
    ]);
    let fmt_q = |m: &subzero_bench::BenchmarkMeasurement, name: &str| {
        m.query_secs(name)
            .map(|s| format!("{s:.4}"))
            .unwrap_or_else(|| "-".to_string())
    };
    query_cost.row(vec![
        "BlackBox".into(),
        fmt_q(&baseline, "BQ 0"),
        fmt_q(&baseline, "BQ 1"),
        fmt_q(&baseline, "FQ 0"),
        fmt_q(&baseline, "FQ 1"),
    ]);

    for budget in budgets_mb {
        let effective_mb = budget * scale_factor;
        let name = format!("SubZero{}", budget as u64);
        eprintln!("optimizing for {name} ({effective_mb:.2} MB effective budget) ...");
        let optimizer = Optimizer::new(OptimizerConfig::with_disk_budget_mb(effective_mb));
        let result = optimizer.optimize(&wf.workflow, &stats, &workload);

        let strategy_label = |op: subzero_engine::OpId| {
            result
                .strategy
                .get(op)
                .map(|ss| ss.iter().map(|s| s.label()).collect::<Vec<_>>().join("+"))
                .unwrap_or_else(|| "BlackBox".to_string())
        };
        choices.row(vec![
            name.clone(),
            strategy_label(wf.extract_train),
            strategy_label(wf.compute_model),
            strategy_label(wf.extract_test),
            strategy_label(wf.predict),
        ]);

        let m = run_benchmark(
            &name,
            &wf.workflow,
            &inputs,
            result.strategy,
            true,
            |sz, run| wf.queries(sz, run),
        );
        overhead.row(vec![
            name.clone(),
            format!("{budget}"),
            mb(m.lineage_bytes),
            secs(m.workflow_runtime),
        ]);
        query_cost.row(vec![
            name,
            fmt_q(&m, "BQ 0"),
            fmt_q(&m, "BQ 1"),
            fmt_q(&m, "FQ 0"),
            fmt_q(&m, "FQ 1"),
        ]);
    }

    println!("{}", choices.render());
    println!("{}", overhead.render());
    println!("{}", query_cost.render());
    println!("csv:\n{}", overhead.to_csv());
    println!("csv:\n{}", query_cost.to_csv());
}
