//! Figure 9 — Microbenchmark: backward query cost vs fanin.
//!
//! For the backward-optimized strategies (←PayMany, ←PayOne, ←FullMany,
//! ←FullOne) runs 1000-cell backward lineage queries over the synthetic
//! operator while sweeping fanin for fanout ∈ {1, 100}; also reports the
//! BlackBox and mismatched →FullOne numbers the paper quotes in the text
//! (2–20 s for BlackBox, up to two orders of magnitude worse for a
//! mismatched index).

use subzero_array::Shape;
use subzero_bench::harness::run_benchmark;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::report::Table;
use subzero_bench::strategies::micro_strategies;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let shape = if paper_scale {
        Shape::d2(1000, 1000)
    } else {
        Shape::d2(400, 400)
    };
    let query_cells = 1000usize;
    let fanins = [1usize, 25, 50, 75, 100];
    let fanouts = [1usize, 100];
    println!(
        "Microbenchmark query cost (Figure 9) — array {shape}, {query_cells}-cell backward queries\n"
    );

    let mut table = Table::new(
        "Figure 9: backward query cost (seconds)",
        &["fanout", "fanin", "strategy", "backward(s)", "forward(s)"],
    );

    for &fanout in &fanouts {
        for &fanin in &fanins {
            let config = MicroConfig {
                shape,
                fanin,
                fanout,
                ..MicroConfig::default()
            };
            let micro = MicroWorkflow::build(config);
            let inputs = micro.inputs();
            for named in micro_strategies(&micro) {
                // The static comparison (no query-time optimizer) exposes the
                // raw cost of each layout, as in the paper's figure.
                let m = run_benchmark(
                    &named.name,
                    &micro.workflow,
                    &inputs,
                    named.strategy,
                    false,
                    |sz, run| {
                        let mut qs = vec![micro.backward_query(query_cells)];
                        qs[0].name = "backward".to_string();
                        let mut fq = micro.forward_query(query_cells);
                        fq.name = "forward".to_string();
                        qs.push(fq);
                        let _ = (sz, run);
                        qs
                    },
                );
                table.row(vec![
                    fanout.to_string(),
                    fanin.to_string(),
                    m.strategy_name.clone(),
                    m.query_secs("backward")
                        .map(|s| format!("{s:.4}"))
                        .unwrap_or_default(),
                    m.query_secs("forward")
                        .map(|s| format!("{s:.4}"))
                        .unwrap_or_default(),
                ]);
            }
            eprintln!("fanout={fanout} fanin={fanin} done");
        }
    }

    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
}
