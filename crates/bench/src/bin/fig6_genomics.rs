//! Figure 6 — Genomics benchmark, static strategies and the query-time
//! optimizer.
//!
//! Reproduces the three panels of Figure 6:
//! * 6(a): disk and runtime overhead of the eight static strategies
//!   (BlackBox, FullOne, FullMany, FullForw, FullBoth, PayOne, PayMany,
//!   PayBoth);
//! * 6(b): per-query latency without the query-time optimizer ("static");
//! * 6(c): per-query latency with the query-time optimizer ("dynamic").
//!
//! `--paper-scale` uses the 56×10000 (100× replicated) cohort of the paper.

use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::harness::run_benchmark;
use subzero_bench::report::{mb, secs, Table};
use subzero_bench::strategies::genomics_strategies;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let config = if paper_scale {
        CohortConfig::paper_scale()
    } else {
        CohortConfig::default()
    };
    println!(
        "Genomics benchmark (Figure 6) — patient-feature matrices {}{}",
        config.shape(),
        if paper_scale {
            ", paper scale (100x replication)"
        } else {
            ""
        }
    );

    let (train, test) = CohortGenerator::new(config).generate();
    let wf = GenomicsWorkflow::build(&config);
    let inputs = GenomicsWorkflow::inputs(train, test);
    println!(
        "workflow: {} operators ({} UDFs); input arrays: {} MB\n",
        wf.workflow.len(),
        wf.udfs().len(),
        mb(inputs.values().map(|a| a.size_bytes()).sum())
    );

    let mut overhead = Table::new(
        "Figure 6(a): disk and runtime overhead",
        &["strategy", "lineage(MB)", "disk_vs_input", "workflow(s)"],
    );
    let mut static_costs = Table::new(
        "Figure 6(b): query costs, static (seconds)",
        &["strategy", "BQ 0", "BQ 1", "FQ 0", "FQ 1"],
    );
    let mut dynamic_costs = Table::new(
        "Figure 6(c): query costs, dynamic (query-time optimizer, seconds)",
        &["strategy", "BQ 0", "BQ 1", "FQ 0", "FQ 1"],
    );

    for named in genomics_strategies(&wf) {
        eprintln!("running strategy {} ...", named.name);
        // Static: executor uses whatever the strategy stored, even when a
        // mismatched index forces a scan.
        let static_m = run_benchmark(
            &named.name,
            &wf.workflow,
            &inputs,
            named.strategy.clone(),
            false,
            |sz, run| wf.queries(sz, run),
        );
        // Dynamic: the query-time optimizer may fall back to re-execution.
        let dynamic_m = run_benchmark(
            &named.name,
            &wf.workflow,
            &inputs,
            named.strategy,
            true,
            |sz, run| wf.queries(sz, run),
        );

        overhead.row(vec![
            static_m.strategy_name.clone(),
            mb(static_m.lineage_bytes),
            format!("{:.2}x", static_m.disk_overhead_ratio()),
            secs(static_m.workflow_runtime),
        ]);
        let q = |m: &subzero_bench::BenchmarkMeasurement, name: &str| {
            m.query_secs(name)
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "-".to_string())
        };
        static_costs.row(vec![
            static_m.strategy_name.clone(),
            q(&static_m, "BQ 0"),
            q(&static_m, "BQ 1"),
            q(&static_m, "FQ 0"),
            q(&static_m, "FQ 1"),
        ]);
        dynamic_costs.row(vec![
            dynamic_m.strategy_name.clone(),
            q(&dynamic_m, "BQ 0"),
            q(&dynamic_m, "BQ 1"),
            q(&dynamic_m, "FQ 0"),
            q(&dynamic_m, "FQ 1"),
        ]);
    }

    println!("{}", overhead.render());
    println!("{}", static_costs.render());
    println!("{}", dynamic_costs.render());
    println!("csv:\n{}", overhead.to_csv());
    println!("csv:\n{}", static_costs.to_csv());
    println!("csv:\n{}", dynamic_costs.to_csv());
}
