//! Figure 8 — Microbenchmark: disk and runtime overhead vs fanin/fanout.
//!
//! Sweeps the synthetic operator's fanin (x-axis) for fanout ∈ {1, 100} and
//! reports, per strategy (←PayMany, ←PayOne, ←FullMany, ←FullOne, →FullOne,
//! BlackBox), the lineage bytes stored and the capture overhead — the two
//! panels of Figure 8.  Each configuration is executed twice, once through
//! the batched ingestion pipeline (the default) and once through the legacy
//! per-pair path, so the table also shows the capture speedup batching buys
//! on this workload.  `--paper-scale` uses the full 1000×1000 array.

use subzero::IngestMode;
use subzero_array::Shape;
use subzero_bench::harness::run_benchmark;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::report::{mb, secs, Table};
use subzero_bench::strategies::micro_strategies;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let shape = if paper_scale {
        Shape::d2(1000, 1000)
    } else {
        Shape::d2(400, 400)
    };
    let fanins = [1usize, 25, 50, 75, 100];
    let fanouts = [1usize, 100];
    println!("Microbenchmark overhead (Figure 8) — array {shape}, 10% output coverage\n");

    let mut table = Table::new(
        "Figure 8: lineage size and capture overhead (batched vs per-pair ingest)",
        &[
            "fanout",
            "fanin",
            "strategy",
            "lineage(MB)",
            "capture(s)",
            "perpair(s)",
            "speedup",
            "pairs",
        ],
    );

    for &fanout in &fanouts {
        for &fanin in &fanins {
            let config = MicroConfig {
                shape,
                fanin,
                fanout,
                ..MicroConfig::default()
            };
            let micro = MicroWorkflow::build(config);
            let inputs = micro.inputs();
            for named in micro_strategies(&micro) {
                let batched = run_benchmark(
                    &named.name,
                    &micro.workflow,
                    &inputs,
                    named.strategy.clone(),
                    true,
                    |_sz, _run| Vec::new(),
                );
                let per_pair = run_benchmark_per_pair(&micro, &inputs, named.strategy);
                let speedup = if batched.workflow_runtime.as_secs_f64() > 0.0 {
                    per_pair.as_secs_f64() / batched.workflow_runtime.as_secs_f64()
                } else {
                    0.0
                };
                table.row(vec![
                    fanout.to_string(),
                    fanin.to_string(),
                    batched.strategy_name.clone(),
                    mb(batched.lineage_bytes),
                    secs(batched.workflow_runtime),
                    secs(per_pair),
                    format!("{speedup:.2}x"),
                    micro.pairs.len().to_string(),
                ]);
            }
            eprintln!("fanout={fanout} fanin={fanin} done");
        }
    }

    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
}

/// Executes the micro workflow with the legacy per-pair ingestion path and
/// returns its workflow runtime (capture included).
fn run_benchmark_per_pair(
    micro: &MicroWorkflow,
    inputs: &std::collections::HashMap<String, subzero_array::Array>,
    strategy: subzero::model::LineageStrategy,
) -> std::time::Duration {
    let mut sz = subzero::SubZero::new();
    sz.set_strategy(strategy);
    sz.set_ingest_mode(IngestMode::PerPair);
    sz.set_capture_batch_size(1);
    let run = sz
        .execute(&micro.workflow, inputs)
        .expect("per-pair benchmark workflow execution failed");
    // The per-pair path builds its index incrementally during capture, so
    // this only flushes — included for symmetry with the batched side.
    run.total_elapsed + sz.finish_capture(run.run_id)
}
