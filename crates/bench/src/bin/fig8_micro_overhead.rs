//! Figure 8 — Microbenchmark: disk and runtime overhead vs fanin/fanout.
//!
//! Sweeps the synthetic operator's fanin (x-axis) for fanout ∈ {1, 100} and
//! reports, per strategy (←PayMany, ←PayOne, ←FullMany, ←FullOne, →FullOne,
//! BlackBox), the lineage bytes stored and the capture overhead — the two
//! panels of Figure 8.  `--paper-scale` uses the full 1000×1000 array.

use subzero_array::Shape;
use subzero_bench::harness::run_benchmark;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::report::{mb, secs, Table};
use subzero_bench::strategies::micro_strategies;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let shape = if paper_scale {
        Shape::d2(1000, 1000)
    } else {
        Shape::d2(400, 400)
    };
    let fanins = [1usize, 25, 50, 75, 100];
    let fanouts = [1usize, 100];
    println!(
        "Microbenchmark overhead (Figure 8) — array {shape}, 10% output coverage\n"
    );

    let mut table = Table::new(
        "Figure 8: lineage size and capture overhead",
        &["fanout", "fanin", "strategy", "lineage(MB)", "capture(s)", "pairs"],
    );

    for &fanout in &fanouts {
        for &fanin in &fanins {
            let config = MicroConfig {
                shape,
                fanin,
                fanout,
                ..MicroConfig::default()
            };
            let micro = MicroWorkflow::build(config);
            let inputs = micro.inputs();
            for named in micro_strategies(&micro) {
                let m = run_benchmark(
                    &named.name,
                    &micro.workflow,
                    &inputs,
                    named.strategy,
                    true,
                    |_sz, _run| Vec::new(),
                );
                table.row(vec![
                    fanout.to_string(),
                    fanin.to_string(),
                    m.strategy_name.clone(),
                    mb(m.lineage_bytes),
                    secs(m.workflow_runtime),
                    micro.pairs.len().to_string(),
                ]);
            }
            eprintln!("fanout={fanout} fanin={fanin} done");
        }
    }

    println!("{}", table.render());
    println!("csv:\n{}", table.to_csv());
}
