//! Figure 5 — Astronomy benchmark.
//!
//! Reproduces both panels of Figure 5 of the paper:
//! * 5(a): lineage disk and runtime overhead per strategy
//!   (BlackBox, BlackBoxOpt, FullOne, FullMany, SubZero);
//! * 5(b): per-query latency (BQ 0–4, FQ 0, FQ 0 Slow) per strategy.
//!
//! Run with `--paper-scale` for the full 512×2000 exposures (slow — the
//! BlackBox baseline re-runs every operator per query); the default is a
//! quarter-scale sky that preserves the relative ordering.

use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::harness::run_benchmark;
use subzero_bench::report::{mb, ratio, secs, Table};
use subzero_bench::strategies::astronomy_strategies;

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let config = if paper_scale {
        SkyConfig::paper_scale()
    } else {
        SkyConfig::default()
    };
    println!(
        "Astronomy benchmark (Figure 5) — exposures {} ({} cells each){}",
        config.shape,
        config.shape.num_cells(),
        if paper_scale { ", paper scale" } else { "" }
    );

    let (exp1, exp2) = SkyGenerator::new(config).generate();
    let wf = AstronomyWorkflow::build(config.shape);
    let inputs = AstronomyWorkflow::inputs(exp1, exp2);
    let input_mb = inputs.values().map(|a| a.size_bytes()).sum::<usize>();
    println!(
        "workflow: {} operators ({} built-in, {} UDFs); input arrays: {} MB\n",
        wf.workflow.len(),
        wf.builtins().len(),
        wf.udfs().len(),
        mb(input_mb)
    );

    let mut overhead = Table::new(
        "Figure 5(a): disk and runtime overhead",
        &[
            "strategy",
            "lineage(MB)",
            "disk_vs_input",
            "workflow(s)",
            "runtime_vs_blackbox",
        ],
    );
    let mut query_cost = Table::new(
        "Figure 5(b): query costs (seconds)",
        &[
            "strategy",
            "BQ 0",
            "BQ 1",
            "BQ 2",
            "BQ 3",
            "BQ 4",
            "FQ 0",
            "FQ 0 Slow",
        ],
    );

    let mut blackbox_runtime = None;
    for named in astronomy_strategies(&wf) {
        eprintln!("running strategy {} ...", named.name);
        let m = run_benchmark(
            &named.name,
            &wf.workflow,
            &inputs,
            named.strategy,
            true,
            |sz, run| wf.queries(sz, run),
        );
        let base = *blackbox_runtime.get_or_insert(m.workflow_runtime.as_secs_f64());
        overhead.row(vec![
            m.strategy_name.clone(),
            mb(m.lineage_bytes),
            format!("{:.2}x", m.disk_overhead_ratio()),
            secs(m.workflow_runtime),
            ratio(m.workflow_runtime.as_secs_f64(), base),
        ]);
        let q = |name: &str| {
            m.query_secs(name)
                .map(|s| format!("{s:.4}"))
                .unwrap_or_else(|| "-".to_string())
        };
        query_cost.row(vec![
            m.strategy_name.clone(),
            q("BQ 0"),
            q("BQ 1"),
            q("BQ 2"),
            q("BQ 3"),
            q("BQ 4"),
            q("FQ 0"),
            q("FQ 0 Slow"),
        ]);
    }

    println!("{}", overhead.render());
    println!("{}", query_cost.render());
    println!("csv:\n{}", overhead.to_csv());
    println!("csv:\n{}", query_cost.to_csv());
}
