//! Runs every figure harness in sequence (default, reduced scale).
//!
//! Equivalent to running `fig5_astronomy`, `fig6_genomics`, `fig7_optimizer`,
//! `fig8_micro_overhead` and `fig9_micro_query` one after the other; useful
//! for regenerating all of EXPERIMENTS.md in one go.

use std::process::Command;

fn main() {
    let binaries = [
        "fig5_astronomy",
        "fig6_genomics",
        "fig7_optimizer",
        "fig8_micro_overhead",
        "fig9_micro_query",
    ];
    let pass_through: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("current executable directory");
    for bin in binaries {
        println!("\n================ {bin} ================\n");
        let path = exe_dir.join(bin);
        let status = Command::new(&path)
            .args(&pass_through)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
