//! The named lineage strategies of Table II.
//!
//! Built-in operators are mapping operators and are handled by mapping
//! lineage whenever a configuration allows it; the named strategies therefore
//! mostly differ in what the UDFs store.  The astronomy `BlackBox` baseline
//! is the exception: it re-runs *every* operator (built-ins included) at
//! query time, which is expressed by pinning every operator to an explicit
//! black-box assignment.

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero_engine::OpId;

use crate::astronomy::AstronomyWorkflow;
use crate::genomics::GenomicsWorkflow;
use crate::micro::MicroWorkflow;

/// A named strategy configuration: a display name plus the workflow-level
/// assignment it induces.
#[derive(Clone, Debug)]
pub struct NamedStrategy {
    /// Table II name (e.g. `FullMany`, `PayBoth`, `SubZero`).
    pub name: String,
    /// The assignment to install before executing the workflow.
    pub strategy: LineageStrategy,
}

impl NamedStrategy {
    fn new(name: &str, strategy: LineageStrategy) -> Self {
        NamedStrategy {
            name: name.to_string(),
            strategy,
        }
    }
}

fn assign_all(ops: &[OpId], strategies: Vec<StorageStrategy>) -> LineageStrategy {
    let mut s = LineageStrategy::new();
    for &op in ops {
        s.set(op, strategies.clone());
    }
    s
}

/// Table II, astronomy benchmark: `BlackBox`, `BlackBoxOpt`, `FullOne`,
/// `FullMany`, `SubZero`.
pub fn astronomy_strategies(wf: &AstronomyWorkflow) -> Vec<NamedStrategy> {
    let udfs = wf.udfs();
    let all_ops: Vec<OpId> = wf.workflow.nodes().iter().map(|n| n.id).collect();
    vec![
        // Every operator (built-ins included) is re-run at query time.
        NamedStrategy::new(
            "BlackBox",
            assign_all(&all_ops, vec![StorageStrategy::blackbox()]),
        ),
        // Built-ins use mapping lineage, UDFs stay black-box.
        NamedStrategy::new("BlackBoxOpt", LineageStrategy::new()),
        // Like BlackBoxOpt, but UDFs store full lineage.
        NamedStrategy::new(
            "FullOne",
            assign_all(&udfs, vec![StorageStrategy::full_one()]),
        ),
        NamedStrategy::new(
            "FullMany",
            assign_all(&udfs, vec![StorageStrategy::full_many()]),
        ),
        // The optimizer's pick: composite lineage stored with PayOne for the
        // cosmic-ray UDFs and payload lineage for star detection.
        NamedStrategy::new(
            "SubZero",
            assign_all(&udfs, vec![StorageStrategy::composite_one()]),
        ),
    ]
}

/// Table II, genomics benchmark: `BlackBox`, `FullOne`, `FullMany`,
/// `FullForw`, `FullBoth`, `PayOne`, `PayMany`, `PayBoth`.
pub fn genomics_strategies(wf: &GenomicsWorkflow) -> Vec<NamedStrategy> {
    let udfs = wf.udfs();
    vec![
        NamedStrategy::new("BlackBox", LineageStrategy::new()),
        NamedStrategy::new(
            "FullOne",
            assign_all(&udfs, vec![StorageStrategy::full_one()]),
        ),
        NamedStrategy::new(
            "FullMany",
            assign_all(&udfs, vec![StorageStrategy::full_many()]),
        ),
        NamedStrategy::new(
            "FullForw",
            assign_all(&udfs, vec![StorageStrategy::full_one_forward()]),
        ),
        NamedStrategy::new(
            "FullBoth",
            assign_all(
                &udfs,
                vec![
                    StorageStrategy::full_one(),
                    StorageStrategy::full_one_forward(),
                ],
            ),
        ),
        NamedStrategy::new(
            "PayOne",
            assign_all(&udfs, vec![StorageStrategy::pay_one()]),
        ),
        NamedStrategy::new(
            "PayMany",
            assign_all(&udfs, vec![StorageStrategy::pay_many()]),
        ),
        NamedStrategy::new(
            "PayBoth",
            assign_all(
                &udfs,
                vec![
                    StorageStrategy::pay_one(),
                    StorageStrategy::full_one_forward(),
                ],
            ),
        ),
    ]
}

/// The strategies compared by the microbenchmark (Figures 8 and 9):
/// `←PayMany`, `←PayOne`, `←FullMany`, `←FullOne`, `→FullOne`, `BlackBox`.
pub fn micro_strategies(wf: &MicroWorkflow) -> Vec<NamedStrategy> {
    let op = [wf.op];
    vec![
        NamedStrategy::new(
            "<-PayMany",
            assign_all(&op, vec![StorageStrategy::pay_many()]),
        ),
        NamedStrategy::new(
            "<-PayOne",
            assign_all(&op, vec![StorageStrategy::pay_one()]),
        ),
        NamedStrategy::new(
            "<-FullMany",
            assign_all(&op, vec![StorageStrategy::full_many()]),
        ),
        NamedStrategy::new(
            "<-FullOne",
            assign_all(&op, vec![StorageStrategy::full_one()]),
        ),
        NamedStrategy::new(
            "->FullOne",
            assign_all(&op, vec![StorageStrategy::full_one_forward()]),
        ),
        NamedStrategy::new("BlackBox", LineageStrategy::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astronomy::SkyConfig;
    use crate::genomics::CohortConfig;
    use crate::micro::MicroConfig;

    #[test]
    fn astronomy_table_ii_names_and_assignments() {
        let wf = AstronomyWorkflow::build(SkyConfig::tiny().shape);
        let strategies = astronomy_strategies(&wf);
        let names: Vec<&str> = strategies.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["BlackBox", "BlackBoxOpt", "FullOne", "FullMany", "SubZero"]
        );
        // BlackBox pins every operator; BlackBoxOpt pins none.
        assert_eq!(
            strategies[0].strategy.assigned_ops().len(),
            wf.workflow.len()
        );
        assert!(strategies[1].strategy.assigned_ops().is_empty());
        // The others only touch the UDFs.
        for s in &strategies[2..] {
            assert_eq!(s.strategy.assigned_ops(), wf.udfs());
        }
        assert_eq!(
            strategies[4].strategy.get(wf.star_detect).unwrap(),
            &[StorageStrategy::composite_one()]
        );
    }

    #[test]
    fn genomics_table_ii_names_and_assignments() {
        let wf = GenomicsWorkflow::build(&CohortConfig::tiny());
        let strategies = genomics_strategies(&wf);
        assert_eq!(strategies.len(), 8);
        let both = strategies.iter().find(|s| s.name == "FullBoth").unwrap();
        assert_eq!(both.strategy.get(wf.predict).unwrap().len(), 2);
        let pay_both = strategies.iter().find(|s| s.name == "PayBoth").unwrap();
        let assigned = pay_both.strategy.get(wf.compute_model).unwrap();
        assert!(assigned.contains(&StorageStrategy::pay_one()));
        assert!(assigned.contains(&StorageStrategy::full_one_forward()));
        for s in &strategies {
            assert!(s.strategy.validate().is_ok(), "{} is valid", s.name);
        }
    }

    #[test]
    fn micro_strategy_list_matches_figure_legend() {
        let wf = MicroWorkflow::build(MicroConfig::tiny());
        let strategies = micro_strategies(&wf);
        let names: Vec<&str> = strategies.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "<-PayMany",
                "<-PayOne",
                "<-FullMany",
                "<-FullOne",
                "->FullOne",
                "BlackBox"
            ]
        );
    }
}
