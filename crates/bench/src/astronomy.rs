//! The astronomy (LSST) benchmark of §II-A / §VIII-A.
//!
//! The workflow ingests two consecutive exposures of the same patch of sky,
//! cleans each one (bias subtraction, flat fielding, clamping, smoothing),
//! detects cosmic rays in each exposure (UDFs *A* and *B*), composites the
//! exposures, removes the cosmic rays from the composite (UDF *C*),
//! background-subtracts and sharpens the cleaned image, and finally detects
//! celestial bodies (UDF *D*).  Twenty-two built-in mapping operators and
//! four UDFs, matching the shape of Figure 1 of the paper.
//!
//! The paper's real 512×2000 LSST exposures are replaced by a synthetic sky
//! generator with the same statistical structure: a noisy background, a small
//! number of compact Gaussian stars (high locality, sparse), and rare
//! single-pixel cosmic-ray hits that differ between the two exposures.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use subzero::query::QuerySpec;
use subzero::ArrayNode;
use subzero::SubZero;
use subzero_array::{Array, ArrayRef, Coord, Shape};
use subzero_engine::executor::WorkflowRun;
use subzero_engine::ops::{
    AggregateKind, AxisAggregate, BinaryKind, Convolve, Elementwise1, Elementwise2,
    GlobalAggregate, ScaleToUnit, SliceOp, Transpose, UnaryKind, ZScore,
};
use subzero_engine::{InputSource, LineageMode, LineageSink, OpId, OpMeta, Operator, Workflow};

use crate::harness::NamedQuery;

/// Parameters of the synthetic sky.
#[derive(Clone, Copy, Debug)]
pub struct SkyConfig {
    /// Exposure shape.  The paper uses 512×2000; the default here is a
    /// quarter-scale exposure so the full benchmark fits comfortably in a
    /// test run (`SkyConfig::paper_scale()` restores the full size).
    pub shape: Shape,
    /// Number of stars placed in the sky.
    pub num_stars: usize,
    /// Gaussian radius of the stellar point-spread function, in pixels.
    pub star_radius: u32,
    /// Fraction of pixels hit by a cosmic ray in each exposure.
    pub cosmic_ray_rate: f64,
    /// Background level (ADU).
    pub background: f64,
    /// Background noise amplitude.
    pub noise: f64,
    /// RNG seed (the benchmark is fully deterministic).
    pub seed: u64,
}

impl Default for SkyConfig {
    fn default() -> Self {
        SkyConfig {
            shape: Shape::d2(128, 500),
            num_stars: 24,
            star_radius: 2,
            cosmic_ray_rate: 0.0005,
            background: 100.0,
            noise: 4.0,
            seed: 7,
        }
    }
}

impl SkyConfig {
    /// The paper's full 512×2000 exposure size.
    pub fn paper_scale() -> Self {
        SkyConfig {
            shape: Shape::d2(512, 2000),
            num_stars: 96,
            cosmic_ray_rate: 0.0005,
            ..Default::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        SkyConfig {
            shape: Shape::d2(48, 64),
            num_stars: 5,
            cosmic_ray_rate: 0.003,
            ..Default::default()
        }
    }
}

/// Generates pairs of synthetic exposures of the same sky.
#[derive(Clone, Debug)]
pub struct SkyGenerator {
    config: SkyConfig,
}

impl SkyGenerator {
    /// Creates a generator.
    pub fn new(config: SkyConfig) -> Self {
        SkyGenerator { config }
    }

    /// Generates the two exposures: identical stars and background, but
    /// independent noise realisations and independent cosmic-ray hits.
    pub fn generate(&self) -> (Array, Array) {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let shape = cfg.shape;

        // Shared sky: background plus Gaussian stars.
        let mut sky = Array::filled(shape, cfg.background);
        for _ in 0..cfg.num_stars {
            let r = rng.gen_range(0..shape.rows());
            let c = rng.gen_range(0..shape.cols());
            let peak = rng.gen_range(600.0..2500.0);
            let center = Coord::d2(r, c);
            for cell in shape.neighborhood(&center, cfg.star_radius) {
                let d = cell.chebyshev(&center) as f64;
                let flux = peak * (-d * d / (0.7 * cfg.star_radius.max(1) as f64).powi(2)).exp();
                let prev = sky.get(&cell);
                sky.set(&cell, prev + flux);
            }
        }

        let make_exposure = |rng: &mut StdRng| {
            let mut exp = sky.clone();
            for idx in 0..shape.num_cells() {
                let noise = rng.gen_range(-cfg.noise..cfg.noise);
                exp.set_linear(idx, exp.get_linear(idx) + noise);
            }
            let hits = ((shape.num_cells() as f64) * cfg.cosmic_ray_rate).round() as usize;
            for _ in 0..hits {
                let idx = rng.gen_range(0..shape.num_cells());
                exp.set_linear(idx, exp.get_linear(idx) + rng.gen_range(3000.0..8000.0));
            }
            exp
        };
        let exp1 = make_exposure(&mut rng);
        let exp2 = make_exposure(&mut rng);
        (exp1, exp2)
    }
}

// ---------------------------------------------------------------------------
// UDFs
// ---------------------------------------------------------------------------

/// UDF *A*/*B*: cosmic-ray detection.
///
/// A pixel whose value exceeds `threshold` is flagged as a cosmic ray
/// (output one) and depends on its neighbours within `radius` pixels; every
/// other pixel is zero and depends only on the corresponding input pixel —
/// exactly the running example of §V of the paper.
#[derive(Debug, Clone)]
pub struct CosmicRayDetect {
    /// Neighbourhood radius of a flagged pixel's lineage (3 in the paper).
    pub radius: u32,
    /// Absolute brightness above which a pixel is considered a cosmic ray.
    pub threshold: f64,
}

impl CosmicRayDetect {
    /// The paper's configuration: radius 3.
    pub fn new(threshold: f64) -> Self {
        CosmicRayDetect {
            radius: 3,
            threshold,
        }
    }
}

impl Operator for CosmicRayDetect {
    fn name(&self) -> &str {
        "udf_cosmic_ray_detect"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![
            LineageMode::Full,
            LineageMode::Pay,
            LineageMode::Comp,
            LineageMode::Blackbox,
        ]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay);
        let comp = cur_modes.contains(&LineageMode::Comp);
        let mut out = Array::zeros(shape);
        for (c, v) in input.iter() {
            let is_cr = v > self.threshold;
            if is_cr {
                out.set(&c, 1.0);
                if full {
                    sink.lwrite(vec![c], vec![shape.neighborhood(&c, self.radius)]);
                }
                if pay || comp {
                    sink.lwrite_payload(vec![c], vec![self.radius as u8]);
                }
            } else {
                if full {
                    sink.lwrite(vec![c], vec![vec![c]]);
                }
                if pay {
                    sink.lwrite_payload(vec![c], vec![0]);
                }
                // Composite mode stores nothing: the default mapping covers it.
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Default (non cosmic ray) relationship.
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Default relationship: an input pixel feeds the mask pixel at the
        // same coordinate (cosmic-ray overrides are stored explicitly).
        Some(vec![*incell])
    }

    fn map_payload(
        &self,
        outcell: &Coord,
        payload: &[u8],
        _i: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        let r = payload.first().copied().unwrap_or(0) as u32;
        Some(meta.input_shape(0).neighborhood(outcell, r))
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        true
    }
}

/// UDF *C*: cosmic-ray removal.
///
/// Takes the composited image and the combined cosmic-ray mask; masked pixels
/// are replaced by the mean of their unmasked neighbours (and depend on that
/// neighbourhood plus the mask cell), unmasked pixels pass through (and
/// depend only on the corresponding image and mask cells).
#[derive(Debug, Clone)]
pub struct CosmicRayRemove {
    /// Neighbourhood radius used for in-painting masked pixels.
    pub radius: u32,
}

impl Default for CosmicRayRemove {
    fn default() -> Self {
        CosmicRayRemove { radius: 2 }
    }
}

impl Operator for CosmicRayRemove {
    fn name(&self) -> &str {
        "udf_cosmic_ray_remove"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![
            LineageMode::Full,
            LineageMode::Pay,
            LineageMode::Comp,
            LineageMode::Blackbox,
        ]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let image = &inputs[0];
        let mask = &inputs[1];
        let shape = image.shape();
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay);
        let comp = cur_modes.contains(&LineageMode::Comp);
        let mut out = Array::zeros(shape);
        for (c, v) in image.iter() {
            let masked = mask.get(&c) > 0.5;
            if masked {
                let neigh = shape.neighborhood(&c, self.radius);
                let clean: Vec<f64> = neigh
                    .iter()
                    .filter(|n| mask.get(n) <= 0.5)
                    .map(|n| image.get(n))
                    .collect();
                let replacement = if clean.is_empty() {
                    v
                } else {
                    clean.iter().sum::<f64>() / clean.len() as f64
                };
                out.set(&c, replacement);
                if full {
                    sink.lwrite(vec![c], vec![neigh.clone(), vec![c]]);
                }
                if pay || comp {
                    sink.lwrite_payload(vec![c], vec![self.radius as u8]);
                }
            } else {
                out.set(&c, v);
                if full {
                    sink.lwrite(vec![c], vec![vec![c], vec![c]]);
                }
                if pay {
                    sink.lwrite_payload(vec![c], vec![0]);
                }
            }
        }
        out
    }

    fn map_backward(
        &self,
        outcell: &Coord,
        _input_idx: usize,
        _meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        // Default relationship for both the image and the mask input.
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _input_idx: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Default relationship: pass-through pixels map one-to-one (the
        // in-painted overrides are stored explicitly).
        Some(vec![*incell])
    }

    fn map_payload(
        &self,
        outcell: &Coord,
        payload: &[u8],
        input_idx: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        let r = payload.first().copied().unwrap_or(0) as u32;
        Some(match input_idx {
            0 => meta.input_shape(0).neighborhood(outcell, r),
            _ => vec![*outcell],
        })
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        true
    }
}

/// UDF *D*: celestial-body (star) detection.
///
/// Finds connected components of pixels brighter than `threshold` and labels
/// each output pixel with the id of the star it belongs to (0 for
/// background).  Every pixel of star *X* depends on all the input pixels in
/// star *X*'s bounding box; the payload stores that bounding box (8 bytes).
#[derive(Debug, Clone)]
pub struct StarDetect {
    /// Detection threshold applied to the background-subtracted image.
    pub threshold: f64,
}

impl StarDetect {
    /// Creates a detector with the given threshold.
    pub fn new(threshold: f64) -> Self {
        StarDetect { threshold }
    }

    /// Connected components (4-connectivity) of above-threshold pixels.
    fn components(&self, input: &Array) -> Vec<Vec<Coord>> {
        let shape = input.shape();
        let mut labels = vec![0u32; shape.num_cells()];
        let mut components: Vec<Vec<Coord>> = Vec::new();
        for idx in 0..shape.num_cells() {
            if labels[idx] != 0 || input.get_linear(idx) <= self.threshold {
                continue;
            }
            // Breadth-first flood fill.
            let label = components.len() as u32 + 1;
            let mut queue = vec![idx];
            labels[idx] = label;
            let mut cells = Vec::new();
            while let Some(i) = queue.pop() {
                let c = shape.unravel(i);
                cells.push(c);
                let (r, col) = (c.get(0) as i64, c.get(1) as i64);
                for (dr, dc) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                    if let Some(n) = shape.checked_coord(&[r + dr, col + dc]) {
                        let ni = shape.ravel(&n);
                        if labels[ni] == 0 && input.get_linear(ni) > self.threshold {
                            labels[ni] = label;
                            queue.push(ni);
                        }
                    }
                }
            }
            components.push(cells);
        }
        components
    }

    fn bbox_payload(cells: &[Coord]) -> Vec<u8> {
        let bbox = subzero_array::BoundingBox::enclosing(cells).expect("non-empty component");
        let lo = bbox.lo();
        let hi = bbox.hi();
        let mut payload = Vec::with_capacity(8);
        for v in [lo.get(0), lo.get(1), hi.get(0), hi.get(1)] {
            payload.extend_from_slice(&(v as u16).to_le_bytes());
        }
        payload
    }
}

impl Operator for StarDetect {
    fn name(&self) -> &str {
        "udf_star_detect"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![
            LineageMode::Full,
            LineageMode::Pay,
            LineageMode::Comp,
            LineageMode::Blackbox,
        ]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let full = cur_modes.contains(&LineageMode::Full);
        let pay = cur_modes.contains(&LineageMode::Pay) || cur_modes.contains(&LineageMode::Comp);
        let mut out = Array::zeros(shape);
        let components = self.components(input);
        for (label, cells) in components.iter().enumerate() {
            for c in cells {
                out.set(c, (label + 1) as f64);
            }
            if full {
                let bbox = subzero_array::BoundingBox::enclosing(cells).expect("non-empty");
                let mut bbox_cells = Vec::new();
                for r in bbox.lo().get(0)..=bbox.hi().get(0) {
                    for col in bbox.lo().get(1)..=bbox.hi().get(1) {
                        bbox_cells.push(Coord::d2(r, col));
                    }
                }
                sink.lwrite(cells.clone(), vec![bbox_cells]);
            }
            if pay {
                sink.lwrite_payload(cells.clone(), Self::bbox_payload(cells));
            }
        }
        if full {
            // Background pixels depend on the corresponding input pixel.
            for (c, _) in out.iter() {
                if out.get(&c) == 0.0 {
                    sink.lwrite(vec![c], vec![vec![c]]);
                }
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Default relationship for background pixels.
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Default relationship: a background pixel only influences the label
        // at its own coordinate (star memberships are stored explicitly).
        Some(vec![*incell])
    }

    fn map_payload(
        &self,
        _outcell: &Coord,
        payload: &[u8],
        _i: usize,
        meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        if payload.len() < 8 {
            return Some(vec![]);
        }
        let read = |i: usize| u16::from_le_bytes([payload[i], payload[i + 1]]) as u32;
        let (r0, c0, r1, c1) = (read(0), read(2), read(4), read(6));
        let shape = meta.input_shape(0);
        let mut cells = Vec::new();
        for r in r0..=r1.min(shape.rows().saturating_sub(1)) {
            for c in c0..=c1.min(shape.cols().saturating_sub(1)) {
                cells.push(Coord::d2(r, c));
            }
        }
        Some(cells)
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        true
    }
}

// ---------------------------------------------------------------------------
// Workflow
// ---------------------------------------------------------------------------

/// The LSST-style workflow: 22 built-in operators and 4 UDFs, with the
/// operator ids of every stage exposed for query construction.
#[derive(Debug, Clone)]
pub struct AstronomyWorkflow {
    /// The workflow specification.
    pub workflow: Arc<Workflow>,
    /// Exposure shape.
    pub shape: Shape,
    /// Per-exposure bias subtraction (built-in).
    pub offset: [OpId; 2],
    /// Per-exposure flat-field scaling (built-in).
    pub scale: [OpId; 2],
    /// Per-exposure clamping (built-in).
    pub clamp: [OpId; 2],
    /// Per-exposure smoothing convolution (built-in).
    pub smooth: [OpId; 2],
    /// UDFs A and B: cosmic-ray detection per exposure.
    pub crd: [OpId; 2],
    /// Exposure compositing (built-in `mean2`).
    pub composite: OpId,
    /// Cosmic-ray mask union (built-in `max`).
    pub mask_union: OpId,
    /// UDF C: cosmic-ray removal.
    pub cr_remove: OpId,
    /// Background estimation convolution (built-in).
    pub background: OpId,
    /// Background subtraction (built-in).
    pub subtract: OpId,
    /// Sharpening convolution (built-in).
    pub sharpen: OpId,
    /// UDF D: star detection.
    pub star_detect: OpId,
    /// QC global mean of the cleaned image (built-in, all-to-all).
    pub mean_qc: OpId,
    /// QC global standard deviation (built-in, all-to-all).
    pub std_qc: OpId,
    /// QC global maximum (built-in, all-to-all).
    pub max_qc: OpId,
    /// Whole-image normalisation (built-in, all-to-all).
    pub unit: OpId,
    /// Z-score normalisation of the sharpened image (built-in, all-to-all).
    pub zscore: OpId,
    /// Thresholded z-score map (built-in).
    pub zscore_threshold: OpId,
    /// Thumbnail slice (built-in).
    pub thumbnail: OpId,
    /// Thumbnail transpose (built-in).
    pub thumbnail_t: OpId,
    /// Per-row mean profile (built-in).
    pub row_profile: OpId,
}

impl AstronomyWorkflow {
    /// Builds the workflow for exposures of the given shape.
    pub fn build(shape: Shape) -> Self {
        let mut b = Workflow::builder("astronomy");
        let mut offset = [0; 2];
        let mut scale = [0; 2];
        let mut clamp = [0; 2];
        let mut smooth = [0; 2];
        let mut crd = [0; 2];
        for (i, ext) in ["exposure1", "exposure2"].iter().enumerate() {
            offset[i] = b.add(
                Arc::new(Elementwise1::new(UnaryKind::Offset(-100.0))),
                vec![InputSource::External(ext.to_string())],
            );
            scale[i] = b.add_unary(
                Arc::new(Elementwise1::new(UnaryKind::Scale(1.02))),
                offset[i],
            );
            clamp[i] = b.add_unary(
                Arc::new(Elementwise1::new(UnaryKind::Clamp(0.0, 1.0e9))),
                scale[i],
            );
            smooth[i] = b.add_unary(Arc::new(Convolve::gaussian(1)), clamp[i]);
            crd[i] = b.add_unary(Arc::new(CosmicRayDetect::new(1500.0)), smooth[i]);
        }
        let composite = b.add_binary(
            Arc::new(Elementwise2::new(BinaryKind::Mean)),
            smooth[0],
            smooth[1],
        );
        let mask_union = b.add_binary(Arc::new(Elementwise2::new(BinaryKind::Max)), crd[0], crd[1]);
        let cr_remove = b.add_binary(Arc::new(CosmicRayRemove::default()), composite, mask_union);
        let background = b.add_unary(Arc::new(Convolve::box_blur(3)), cr_remove);
        let subtract = b.add_binary(
            Arc::new(Elementwise2::new(BinaryKind::Subtract)),
            cr_remove,
            background,
        );
        let sharpen = b.add_unary(Arc::new(Convolve::gaussian(1)), subtract);
        let star_detect = b.add_unary(Arc::new(StarDetect::new(120.0)), sharpen);
        let mean_qc = b.add_unary(
            Arc::new(GlobalAggregate::new(AggregateKind::Mean)),
            cr_remove,
        );
        let std_qc = b.add_unary(
            Arc::new(GlobalAggregate::new(AggregateKind::Std)),
            cr_remove,
        );
        let max_qc = b.add_unary(Arc::new(GlobalAggregate::new(AggregateKind::Max)), subtract);
        let unit = b.add_unary(Arc::new(ScaleToUnit), subtract);
        let zscore = b.add_unary(Arc::new(ZScore), sharpen);
        let zscore_threshold = b.add_unary(
            Arc::new(Elementwise1::new(UnaryKind::Threshold(3.0))),
            zscore,
        );
        let thumb_hi = Coord::d2(
            (shape.rows() / 4).max(1).min(shape.rows() - 1),
            (shape.cols() / 4).max(1).min(shape.cols() - 1),
        );
        let thumbnail = b.add_unary(Arc::new(SliceOp::new(Coord::d2(0, 0), thumb_hi)), subtract);
        let thumbnail_t = b.add_unary(Arc::new(Transpose), thumbnail);
        let row_profile = b.add_unary(
            Arc::new(AxisAggregate::new(AggregateKind::Mean, 1)),
            subtract,
        );
        let workflow = Arc::new(b.build().expect("astronomy workflow is a valid DAG"));
        AstronomyWorkflow {
            workflow,
            shape,
            offset,
            scale,
            clamp,
            smooth,
            crd,
            composite,
            mask_union,
            cr_remove,
            background,
            subtract,
            sharpen,
            star_detect,
            mean_qc,
            std_qc,
            max_qc,
            unit,
            zscore,
            zscore_threshold,
            thumbnail,
            thumbnail_t,
            row_profile,
        }
    }

    /// Ids of the four UDFs (A, B, C, D).
    pub fn udfs(&self) -> Vec<OpId> {
        vec![self.crd[0], self.crd[1], self.cr_remove, self.star_detect]
    }

    /// Ids of the 22 built-in operators.
    pub fn builtins(&self) -> Vec<OpId> {
        let udfs = self.udfs();
        self.workflow
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|id| !udfs.contains(id))
            .collect()
    }

    /// External input map from a generated exposure pair.
    pub fn inputs(exp1: Array, exp2: Array) -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert("exposure1".to_string(), exp1);
        m.insert("exposure2".to_string(), exp2);
        m
    }

    /// The benchmark's lineage queries (five backward, one forward, plus the
    /// `FQ 0 Slow` variant without the entire-array optimization), derived
    /// from the actual outputs of `run`.
    pub fn queries(&self, sz: &mut SubZero, run: &WorkflowRun) -> Vec<NamedQuery> {
        let stars = sz
            .engine()
            .output_of(run, self.star_detect)
            .expect("star detect output");
        let star_cells = stars.coords_where(|v| v > 0.0);
        let star_cell = star_cells
            .first()
            .copied()
            .unwrap_or_else(|| Coord::d2(self.shape.rows() / 2, self.shape.cols() / 2));

        let crd_out = sz.engine().output_of(run, self.crd[0]).expect("crd output");
        let mut cr_cells = crd_out.coords_where(|v| v > 0.0);
        cr_cells.truncate(16);
        if cr_cells.is_empty() {
            cr_cells.push(Coord::d2(0, 0));
        }

        // A small region of the cleaned image around the first star.
        let region: Vec<Coord> = self.shape.neighborhood(&star_cell, 2).into_iter().collect();

        // The traversals are derived from the workflow DAG by the query
        // session — each query names only its endpoint arrays.  At DAG joins
        // the derived traversal fans out over every path (e.g. a backward
        // trace to exposure 1 descends both through the composite image and
        // through the cosmic-ray mask) and unions the answers.

        // BQ 0: star pixel -> first exposure, through the whole chain.
        let bq0 = QuerySpec::backward_to_source(vec![star_cell], self.star_detect, "exposure1");

        // BQ 1: region of the cleaned image -> second exposure.
        let bq1 = QuerySpec::backward_to_source(region.clone(), self.cr_remove, "exposure2");

        // BQ 2: region of the sharpened image -> cleaned image (short
        // traversal, isolates a single suspect operator).
        let bq2 = QuerySpec::backward(
            region.clone(),
            self.sharpen,
            ArrayNode::Output(self.cr_remove),
        );

        // BQ 3: cosmic-ray mask pixels -> first exposure.
        let bq3 = QuerySpec::backward_to_source(cr_cells, self.crd[0], "exposure1");

        // BQ 4: the QC mean -> first exposure (starts at an all-to-all
        // operator, exercising the entire-array optimization).
        let bq4 = QuerySpec::backward_to_source(vec![Coord::d2(0, 0)], self.mean_qc, "exposure1");

        // FQ 0: a small region of the first exposure -> thresholded z-score
        // map at the end of the workflow (traverses the all-to-all z-score).
        let fq0_spec =
            QuerySpec::forward_from_source(region.clone(), "exposure1", self.zscore_threshold);
        let fq0 = NamedQuery::new("FQ 0", fq0_spec.clone());
        let fq0_slow = NamedQuery::new("FQ 0", fq0_spec).without_entire_array("FQ 0 Slow");

        vec![
            NamedQuery::new("BQ 0", bq0),
            NamedQuery::new("BQ 1", bq1),
            NamedQuery::new("BQ 2", bq2),
            NamedQuery::new("BQ 3", bq3),
            NamedQuery::new("BQ 4", bq4),
            fq0,
            fq0_slow,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subzero::model::{LineageStrategy, StorageStrategy};
    use subzero_engine::OperatorExt;

    #[test]
    fn sky_generator_is_deterministic_and_has_structure() {
        let gen = SkyGenerator::new(SkyConfig::tiny());
        let (a1, b1) = gen.generate();
        let (a2, _b2) = gen.generate();
        assert_eq!(a1, a2, "same seed, same sky");
        assert_eq!(a1.shape(), SkyConfig::tiny().shape);
        // Stars make some pixels far brighter than the background.
        assert!(a1.max() > 500.0);
        // The two exposures differ (noise and cosmic rays).
        assert_ne!(a1, b1);
    }

    #[test]
    fn workflow_has_22_builtins_and_4_udfs() {
        let wf = AstronomyWorkflow::build(SkyConfig::tiny().shape);
        assert_eq!(wf.workflow.len(), 26);
        assert_eq!(wf.udfs().len(), 4);
        assert_eq!(wf.builtins().len(), 22);
        // Every built-in is a mapping operator; no UDF is.
        for id in wf.builtins() {
            assert!(
                wf.workflow.node(id).unwrap().operator.is_mapping(),
                "op {id}"
            );
        }
        for id in wf.udfs() {
            assert!(
                !wf.workflow.node(id).unwrap().operator.is_mapping(),
                "op {id}"
            );
        }
    }

    #[test]
    fn cosmic_ray_detect_lineage_modes() {
        let op = CosmicRayDetect::new(10.0);
        let shape = Shape::d2(8, 8);
        let mut img = Array::zeros(shape);
        img.set(&Coord::d2(4, 4), 100.0);
        let input: ArrayRef = Arc::new(img);
        let meta = OpMeta::new(vec![shape], shape);

        // Full mode emits one pair per pixel; the cosmic-ray pixel's pair has
        // the neighbourhood as its input side.
        let mut sink = subzero_engine::BufferSink::new();
        let out = op.run(&[Arc::clone(&input)], &[LineageMode::Full], &mut sink);
        assert_eq!(out.get(&Coord::d2(4, 4)), 1.0);
        assert_eq!(out.sum(), 1.0, "exactly one cosmic ray detected");
        assert_eq!(sink.len(), 64);

        // Composite mode only stores the cosmic-ray pixel.
        let mut sink = subzero_engine::BufferSink::new();
        op.run(&[Arc::clone(&input)], &[LineageMode::Comp], &mut sink);
        assert_eq!(sink.len(), 1);

        // Payload mode stores every pixel.
        let mut sink = subzero_engine::BufferSink::new();
        op.run(&[input], &[LineageMode::Pay], &mut sink);
        assert_eq!(sink.len(), 64);

        // map_p resolves the radius payload; map_b is the identity default.
        assert_eq!(
            op.map_payload(&Coord::d2(4, 4), &[3], 0, &meta)
                .unwrap()
                .len(),
            49
        );
        assert_eq!(
            op.map_backward(&Coord::d2(4, 4), 0, &meta),
            Some(vec![Coord::d2(4, 4)])
        );
    }

    #[test]
    fn cosmic_ray_remove_inpaints_masked_pixels() {
        let op = CosmicRayRemove::default();
        let shape = Shape::d2(5, 5);
        let mut img = Array::filled(shape, 10.0);
        img.set(&Coord::d2(2, 2), 5000.0);
        let mut mask = Array::zeros(shape);
        mask.set(&Coord::d2(2, 2), 1.0);
        let out = op.run(
            &[Arc::new(img), Arc::new(mask)],
            &[LineageMode::Blackbox],
            &mut subzero_engine::BufferSink::new(),
        );
        assert_eq!(
            out.get(&Coord::d2(2, 2)),
            10.0,
            "spike replaced by neighbours"
        );
        assert_eq!(out.get(&Coord::d2(0, 0)), 10.0);

        let meta = OpMeta::new(vec![shape, shape], shape);
        assert_eq!(
            op.map_payload(&Coord::d2(2, 2), &[2], 0, &meta)
                .unwrap()
                .len(),
            25
        );
        assert_eq!(
            op.map_payload(&Coord::d2(2, 2), &[2], 1, &meta).unwrap(),
            vec![Coord::d2(2, 2)]
        );
    }

    #[test]
    fn star_detect_labels_components_and_exposes_bbox_lineage() {
        let op = StarDetect::new(50.0);
        let shape = Shape::d2(10, 10);
        let mut img = Array::zeros(shape);
        // Two separate bright blobs.
        for c in [Coord::d2(2, 2), Coord::d2(2, 3), Coord::d2(3, 2)] {
            img.set(&c, 100.0);
        }
        img.set(&Coord::d2(7, 7), 200.0);
        let mut sink = subzero_engine::BufferSink::new();
        let out = op.run(&[Arc::new(img)], &[LineageMode::Pay], &mut sink);
        let labels: std::collections::HashSet<u64> = out
            .data()
            .iter()
            .filter(|&&v| v > 0.0)
            .map(|&v| v as u64)
            .collect();
        assert_eq!(labels.len(), 2, "two stars detected");
        assert_eq!(sink.len(), 2, "one payload pair per star");

        // The payload decodes to the star's bounding box in the input.
        let meta = OpMeta::new(vec![shape], shape);
        if let subzero_engine::RegionPair::Payload { outcells, payload } = &sink.pairs[0] {
            let cells = op.map_payload(&outcells[0], payload, 0, &meta).unwrap();
            assert!(cells.len() >= outcells.len());
            for oc in outcells {
                assert!(cells.contains(oc));
            }
        } else {
            panic!("expected payload pair");
        }
    }

    #[test]
    fn end_to_end_star_query_traces_to_exposure() {
        let cfg = SkyConfig::tiny();
        let (e1, e2) = SkyGenerator::new(cfg).generate();
        let wf = AstronomyWorkflow::build(cfg.shape);
        let mut sz = SubZero::new();
        // Use the paper's "SubZero" configuration: composite lineage for UDFs.
        let mut strategy = LineageStrategy::new();
        for udf in wf.udfs() {
            strategy.set(udf, vec![StorageStrategy::composite_one()]);
        }
        sz.set_strategy(strategy);
        let run = sz
            .execute(&wf.workflow, &AstronomyWorkflow::inputs(e1, e2))
            .unwrap();
        let queries = wf.queries(&mut sz, &run);
        assert_eq!(queries.len(), 7);
        for nq in &queries {
            let result = sz.session(&run).query(&nq.spec).expect("query executes");
            assert!(
                !result.cells.is_empty(),
                "query {} returned no lineage",
                nq.name
            );
        }
    }
}
