//! Cross-crate integration tests: end-to-end correctness of the lineage
//! system on the benchmark workloads.
//!
//! The central invariant is that *every* storage strategy must return the
//! same query answers as black-box re-execution (the trusted oracle), while
//! only their cost profiles differ.  These tests exercise that invariant on
//! the astronomy and genomics workflows, check the optimizer end to end, and
//! verify the paper's qualitative claims at small scale (composite lineage is
//! far smaller than full lineage, the query-time optimizer never loses badly
//! to black-box, the entire-array optimization changes cost but not answers).

use std::collections::HashMap;

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::query::{QueryOptions, QuerySpec};
use subzero::SubZero;
use subzero_array::{Array, Coord};
use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::harness::NamedQuery;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::strategies::{astronomy_strategies, genomics_strategies};
use subzero_engine::Workflow;
use subzero_optimizer::{Optimizer, OptimizerConfig, QueryWorkload};

/// Executes the workflow under `strategy` and returns each query's answer.
fn answers_under(
    workflow: &std::sync::Arc<Workflow>,
    inputs: &HashMap<String, Array>,
    strategy: LineageStrategy,
    queries_for: impl Fn(&mut SubZero, &subzero_engine::executor::WorkflowRun) -> Vec<NamedQuery>,
) -> Vec<(String, Vec<Coord>)> {
    let mut sz = SubZero::new();
    sz.set_strategy(strategy);
    let run = sz.execute(workflow, inputs).expect("workflow executes");
    let queries = queries_for(&mut sz, &run);
    queries
        .into_iter()
        .map(|nq| {
            sz.set_query_options(QueryOptions {
                entire_array_optimization: !nq.disable_entire_array,
                query_time_optimizer: true,
            });
            let result = sz.session(&run).query(&nq.spec).expect("query executes");
            (nq.name, result.cells.to_coords())
        })
        .collect()
}

#[test]
fn astronomy_all_strategies_agree_with_blackbox() {
    let cfg = SkyConfig::tiny();
    let (e1, e2) = SkyGenerator::new(cfg).generate();
    let wf = AstronomyWorkflow::build(cfg.shape);
    let inputs = AstronomyWorkflow::inputs(e1, e2);

    let mut reference: Option<Vec<(String, Vec<Coord>)>> = None;
    for named in astronomy_strategies(&wf) {
        let answers = answers_under(&wf.workflow, &inputs, named.strategy, |sz, run| {
            wf.queries(sz, run)
        });
        match &reference {
            None => reference = Some(answers),
            Some(expected) => {
                for ((name_a, cells_a), (name_b, cells_b)) in expected.iter().zip(&answers) {
                    assert_eq!(name_a, name_b);
                    assert_eq!(
                        cells_a, cells_b,
                        "query {} under strategy {} disagrees with the black-box oracle",
                        name_a, named.name
                    );
                }
            }
        }
    }
}

#[test]
fn genomics_all_strategies_agree_with_blackbox() {
    let cfg = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(cfg).generate();
    let wf = GenomicsWorkflow::build(&cfg);
    let inputs = GenomicsWorkflow::inputs(train, test);

    let mut reference: Option<Vec<(String, Vec<Coord>)>> = None;
    for named in genomics_strategies(&wf) {
        let answers = answers_under(&wf.workflow, &inputs, named.strategy, |sz, run| {
            wf.queries(sz, run)
        });
        match &reference {
            None => reference = Some(answers),
            Some(expected) => {
                for ((name_a, cells_a), (name_b, cells_b)) in expected.iter().zip(&answers) {
                    assert_eq!(name_a, name_b);
                    assert_eq!(
                        cells_a, cells_b,
                        "query {} under strategy {} disagrees",
                        name_a, named.name
                    );
                }
            }
        }
    }
}

#[test]
fn astronomy_composite_lineage_is_much_smaller_than_full() {
    let cfg = SkyConfig::tiny();
    let (e1, e2) = SkyGenerator::new(cfg).generate();
    let wf = AstronomyWorkflow::build(cfg.shape);
    let inputs = AstronomyWorkflow::inputs(e1, e2);

    let bytes_for = |strategy: LineageStrategy| {
        let mut sz = SubZero::new();
        sz.set_strategy(strategy);
        let run = sz.execute(&wf.workflow, &inputs).unwrap();
        sz.lineage_bytes(run.run_id)
    };

    let mut full = LineageStrategy::new();
    let mut composite = LineageStrategy::new();
    for udf in wf.udfs() {
        full.set(udf, vec![StorageStrategy::full_one()]);
        composite.set(udf, vec![StorageStrategy::composite_one()]);
    }
    let full_bytes = bytes_for(full);
    let composite_bytes = bytes_for(composite);
    assert!(full_bytes > 0 && composite_bytes > 0);
    // The paper reports ~70x; at the tiny test scale the exact factor varies,
    // but composite lineage must be at least an order of magnitude smaller.
    assert!(
        full_bytes as f64 / composite_bytes as f64 > 10.0,
        "full={full_bytes} composite={composite_bytes}"
    );
}

#[test]
fn astronomy_entire_array_optimization_only_changes_cost() {
    let cfg = SkyConfig::tiny();
    let (e1, e2) = SkyGenerator::new(cfg).generate();
    let wf = AstronomyWorkflow::build(cfg.shape);
    let inputs = AstronomyWorkflow::inputs(e1, e2);

    let mut sz = SubZero::new();
    let run = sz.execute(&wf.workflow, &inputs).unwrap();
    let queries = wf.queries(&mut sz, &run);
    let fq0 = queries.iter().find(|q| q.name == "FQ 0").unwrap();
    let fq0_slow = queries.iter().find(|q| q.name == "FQ 0 Slow").unwrap();
    sz.set_query_options(QueryOptions {
        entire_array_optimization: true,
        query_time_optimizer: true,
    });
    let fast = sz.session(&run).query(&fq0.spec).unwrap();
    sz.set_query_options(QueryOptions {
        entire_array_optimization: false,
        query_time_optimizer: true,
    });
    let slow = sz.session(&run).query(&fq0_slow.spec).unwrap();
    assert_eq!(
        fast.cells, slow.cells,
        "optimization must not change the answer"
    );
}

#[test]
fn genomics_query_time_optimizer_limits_mismatched_index_damage() {
    let cfg = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(cfg).generate();
    let wf = GenomicsWorkflow::build(&cfg);
    let inputs = GenomicsWorkflow::inputs(train, test);

    // Forward-optimized lineage only, then run backward queries: static
    // execution must scan; dynamic execution must avoid scans by falling
    // back to re-execution or at least never produce a different answer.
    let mut strategy = LineageStrategy::new();
    for udf in wf.udfs() {
        strategy.set(udf, vec![StorageStrategy::full_one_forward()]);
    }

    let mut sz = SubZero::new();
    sz.set_strategy(strategy);
    let run = sz.execute(&wf.workflow, &inputs).unwrap();
    let queries = wf.queries(&mut sz, &run);
    let bq0 = queries.iter().find(|q| q.name == "BQ 0").unwrap();

    sz.set_query_options(QueryOptions {
        entire_array_optimization: true,
        query_time_optimizer: false,
    });
    let static_result = sz.session(&run).query(&bq0.spec).unwrap();

    sz.set_query_options(QueryOptions {
        entire_array_optimization: true,
        query_time_optimizer: true,
    });
    let dynamic_result = sz.session(&run).query(&bq0.spec).unwrap();

    assert_eq!(static_result.cells, dynamic_result.cells);
    assert!(
        static_result.report.any_scan(),
        "static execution of a mismatched index should scan"
    );
}

#[test]
fn optimizer_respects_budget_and_improves_query_estimates_end_to_end() {
    let cfg = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(cfg).generate();
    let wf = GenomicsWorkflow::build(&cfg);
    let inputs = GenomicsWorkflow::inputs(train, test);

    // Profile.
    let mut profiler = SubZero::new();
    profiler.set_strategy(Optimizer::profiling_strategy(&wf.workflow));
    let profile_run = profiler.execute(&wf.workflow, &inputs).unwrap();
    let stats: HashMap<_, _> = profiler
        .runtime()
        .run_stats(profile_run.run_id)
        .into_iter()
        .map(|(op, s)| (op, s.clone()))
        .collect();
    let sample: Vec<(QuerySpec, f64)> = wf
        .queries(&mut profiler, &profile_run)
        .into_iter()
        .map(|nq| (nq.spec, 1.0))
        .collect();
    let workload = QueryWorkload::from_specs(&wf.workflow, &sample);

    // Tiny budget: black-box everywhere; measured lineage stays within it.
    let tiny = Optimizer::new(OptimizerConfig {
        max_disk_bytes: 64.0,
        ..OptimizerConfig::default()
    })
    .optimize(&wf.workflow, &stats, &workload);
    assert!(tiny.feasible);
    assert_eq!(tiny.predicted_disk_bytes, 0.0);

    // Generous budget: the UDFs get materialised lineage and the measured
    // storage is non-zero but still within the budget prediction's order.
    let generous = Optimizer::new(OptimizerConfig::with_disk_budget_mb(64.0)).optimize(
        &wf.workflow,
        &stats,
        &workload,
    );
    assert!(generous.feasible);
    assert!(generous.predicted_query_secs <= tiny.predicted_query_secs);
    assert!(!generous.strategy.assigned_ops().is_empty());

    let mut sz = SubZero::new();
    sz.set_strategy(generous.strategy.clone());
    let run = sz.execute(&wf.workflow, &inputs).unwrap();
    assert!(sz.lineage_bytes(run.run_id) > 0);
    assert!(sz.lineage_bytes(run.run_id) as f64 <= 64.0 * 1024.0 * 1024.0);
    // Queries still work and agree with the default-strategy answers.
    let default_answers =
        answers_under(&wf.workflow, &inputs, LineageStrategy::new(), |sz, run| {
            wf.queries(sz, run)
        });
    let optimized_answers = answers_under(&wf.workflow, &inputs, generous.strategy, |sz, run| {
        wf.queries(sz, run)
    });
    assert_eq!(default_answers, optimized_answers);
}

#[test]
fn micro_benchmark_storage_orderings_match_the_paper() {
    // High fanout: FullMany must be smaller than FullOne; payload lineage
    // must be smaller than both; black-box stores nothing.
    let config = MicroConfig {
        shape: subzero_array::Shape::d2(128, 128),
        fanin: 20,
        fanout: 50,
        coverage: 0.1,
        seed: 3,
    };
    let micro = MicroWorkflow::build(config);
    let inputs = micro.inputs();
    let bytes_for = |strategy: StorageStrategy| {
        let mut sz = SubZero::new();
        sz.set_strategy(LineageStrategy::uniform([micro.op], vec![strategy]));
        let run = sz.execute(&micro.workflow, &inputs).unwrap();
        sz.lineage_bytes(run.run_id)
    };
    let full_one = bytes_for(StorageStrategy::full_one());
    let full_many = bytes_for(StorageStrategy::full_many());
    let pay_many = bytes_for(StorageStrategy::pay_many());
    assert!(
        full_many < full_one,
        "high fanout favours FullMany ({full_many} vs {full_one})"
    );
    assert!(
        pay_many < full_one,
        "payload lineage is smaller than per-cell full lineage ({pay_many} vs {full_one})"
    );

    let mut sz = SubZero::new();
    let run = sz.execute(&micro.workflow, &inputs).unwrap();
    assert_eq!(sz.lineage_bytes(run.run_id), 0, "black-box stores nothing");

    // Low fanout: FullOne avoids the spatial index and wins.
    let config = MicroConfig {
        shape: subzero_array::Shape::d2(128, 128),
        fanin: 3,
        fanout: 1,
        coverage: 0.1,
        seed: 3,
    };
    let micro = MicroWorkflow::build(config);
    let inputs = micro.inputs();
    let bytes_for = |strategy: StorageStrategy| {
        let mut sz = SubZero::new();
        sz.set_strategy(LineageStrategy::uniform([micro.op], vec![strategy]));
        let run = sz.execute(&micro.workflow, &inputs).unwrap();
        sz.lineage_bytes(run.run_id)
    };
    assert!(bytes_for(StorageStrategy::full_one()) < bytes_for(StorageStrategy::full_many()));
}
