//! Parity between the session API and the legacy explicit-path executor.
//!
//! A [`QuerySession`] derives its traversal from the workflow DAG and fans
//! out over every path at DAG joins; the legacy [`LineageQuery`] pins one
//! hand-assembled path.  Because every step distributes over unions of query
//! cells, the session's answer must equal the *union* of the legacy answers
//! over all enumerated paths between the same endpoints — on every workload
//! and under every storage strategy.  This test asserts exactly that on the
//! astronomy, genomics and micro benchmarks (and, for single-path queries,
//! it degenerates to strict one-path equality with the legacy executor).

#![allow(deprecated)] // the whole point is comparing against the shim

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::query::{LineageQuery, QueryOptions, QuerySpec};
use subzero::{ArrayNode, Direction, SubZero};
use subzero_array::CellSet;
use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::harness::NamedQuery;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_engine::executor::WorkflowRun;
use subzero_engine::paths;

/// Enumerates the legacy explicit paths for a spec's endpoints.
fn legacy_paths(run: &WorkflowRun, spec: &QuerySpec) -> Vec<Vec<(u32, usize)>> {
    let wf = &run.workflow;
    match spec.direction {
        Direction::Backward => {
            let ArrayNode::Output(op) = spec.from else {
                panic!("backward spec starts at an operator output");
            };
            paths::backward_paths(wf, op, &spec.to).expect("paths derivable")
        }
        Direction::Forward => {
            let ArrayNode::Output(op) = spec.to else {
                panic!("forward spec ends at an operator output");
            };
            paths::forward_paths(wf, &spec.from, op).expect("paths derivable")
        }
    }
}

/// Session answer == union over legacy per-path answers, for every query.
fn assert_parity(sz: &mut SubZero, run: &WorkflowRun, queries: &[NamedQuery], label: &str) {
    for nq in queries {
        sz.set_query_options(QueryOptions {
            entire_array_optimization: !nq.disable_entire_array,
            query_time_optimizer: true,
        });
        let session_answer = sz
            .session(run)
            .query(&nq.spec)
            .unwrap_or_else(|e| panic!("{label}: session query '{}' failed: {e}", nq.name));

        let path_list = legacy_paths(run, &nq.spec);
        assert!(
            !path_list.is_empty(),
            "{label}: no legacy paths for '{}'",
            nq.name
        );
        let mut union: Option<CellSet> = None;
        for path in path_list {
            let legacy = LineageQuery {
                cells: nq.spec.cells.clone(),
                path,
                direction: nq.spec.direction,
            };
            let answer = sz
                .query(run, &legacy)
                .unwrap_or_else(|e| panic!("{label}: legacy query '{}' failed: {e}", nq.name));
            match &mut union {
                None => union = Some(answer.cells),
                Some(u) => u.union_with(&answer.cells),
            }
        }
        assert_eq!(
            session_answer.cells,
            union.expect("at least one path"),
            "{label}: session answer for '{}' differs from the union of \
             legacy per-path answers",
            nq.name
        );
    }
}

/// Strategy configurations exercised per workload: nothing stored (mapping +
/// re-execution), full stored lineage, and forward-optimized stored lineage
/// (mismatched-direction scans on backward queries).
fn strategies_for(udfs: &[u32]) -> Vec<(&'static str, LineageStrategy)> {
    let with = |s: StorageStrategy| {
        let mut ls = LineageStrategy::new();
        for &op in udfs {
            ls.set(op, vec![s]);
        }
        ls
    };
    vec![
        ("default", LineageStrategy::new()),
        ("full_one", with(StorageStrategy::full_one())),
        ("fwd_full_one", with(StorageStrategy::full_one_forward())),
    ]
}

#[test]
fn astronomy_session_matches_legacy_path_unions() {
    let cfg = SkyConfig::tiny();
    let (e1, e2) = SkyGenerator::new(cfg).generate();
    let wf = AstronomyWorkflow::build(cfg.shape);
    let inputs = AstronomyWorkflow::inputs(e1, e2);
    for (name, strategy) in strategies_for(&wf.udfs()) {
        let mut sz = SubZero::new();
        sz.set_strategy(strategy);
        let run = sz.execute(&wf.workflow, &inputs).unwrap();
        sz.finish_capture(run.run_id);
        let queries = wf.queries(&mut sz, &run);
        assert_parity(&mut sz, &run, &queries, &format!("astronomy/{name}"));
    }
}

#[test]
fn genomics_session_matches_legacy_path_unions() {
    let cfg = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(cfg).generate();
    let wf = GenomicsWorkflow::build(&cfg);
    let inputs = GenomicsWorkflow::inputs(train, test);
    for (name, strategy) in strategies_for(&wf.udfs()) {
        let mut sz = SubZero::new();
        sz.set_strategy(strategy);
        let run = sz.execute(&wf.workflow, &inputs).unwrap();
        sz.finish_capture(run.run_id);
        let queries = wf.queries(&mut sz, &run);
        assert_parity(&mut sz, &run, &queries, &format!("genomics/{name}"));
    }
}

#[test]
fn micro_session_matches_legacy_single_path() {
    // The micro workflow has a single operator, so the parity degenerates to
    // strict equality with the one legacy path — across every strategy the
    // figure binaries sweep, including payload encodings.
    let micro = MicroWorkflow::build(MicroConfig::tiny());
    let strategies = vec![
        ("blackbox", LineageStrategy::new()),
        (
            "full_one",
            LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_one()]),
        ),
        (
            "full_many",
            LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_many()]),
        ),
        (
            "pay_one",
            LineageStrategy::uniform([micro.op], vec![StorageStrategy::pay_one()]),
        ),
        (
            "pay_many",
            LineageStrategy::uniform([micro.op], vec![StorageStrategy::pay_many()]),
        ),
        (
            "fwd_full_one",
            LineageStrategy::uniform([micro.op], vec![StorageStrategy::full_one_forward()]),
        ),
    ];
    for (name, strategy) in strategies {
        let mut sz = SubZero::new();
        sz.set_strategy(strategy);
        let run = sz.execute(&micro.workflow, &micro.inputs()).unwrap();
        sz.finish_capture(run.run_id);
        let queries = vec![micro.backward_query(60), micro.forward_query(60)];
        assert_parity(&mut sz, &run, &queries, &format!("micro/{name}"));
    }
}

#[test]
fn batched_session_queries_match_singles_on_the_micro_workload() {
    // backward_many must return, per batch entry, exactly what a one-at-a-
    // time session query returns — in particular on the mismatched-direction
    // scan workload the batching exists to accelerate.
    let micro = MicroWorkflow::build(MicroConfig::tiny());
    let mut sz = SubZero::new();
    sz.set_strategy(LineageStrategy::uniform(
        [micro.op],
        vec![StorageStrategy::full_one_forward()],
    ));
    let run = sz.execute(&micro.workflow, &micro.inputs()).unwrap();
    sz.finish_capture(run.run_id);
    // Static execution: force the stored (scanning) path so the test pins
    // the shared-scan machinery rather than the re-execution fallback.
    sz.set_query_options(QueryOptions {
        entire_array_optimization: true,
        query_time_optimizer: false,
    });
    let batches = micro.backward_batches(8, 16);
    let mut session = sz.session(&run);
    let singles: Vec<CellSet> = batches
        .iter()
        .map(|cells| {
            session
                .backward(cells.clone())
                .from(micro.op)
                .to_source("input")
                .unwrap()
                .cells
        })
        .collect();
    let batched = session
        .backward_many(batches)
        .from(micro.op)
        .to_source("input")
        .unwrap();
    assert_eq!(batched.len(), singles.len());
    for (b, s) in batched.iter().zip(&singles) {
        assert_eq!(b.cells, *s);
        assert!(b.report.any_scan(), "mismatched direction must scan");
    }
}
