//! Ingestion parity: the batched capture pipeline must be indistinguishable
//! from the legacy per-pair path — byte-identical datastore contents and
//! identical backward/forward query answers — on real workloads.
//!
//! Runs the small astronomy and genomics workflows (plus the synthetic
//! microbenchmark operator) under every Table II strategy configuration,
//! once with `IngestMode::PerPair` + capture batch size 1 (the reference)
//! and once with the default batched pipeline, and compares everything the
//! datastores expose.

use std::collections::HashMap;

use subzero::model::LineageStrategy;
use subzero::{IngestMode, SubZero};
use subzero_array::Array;
use subzero_bench::astronomy::{AstronomyWorkflow, SkyConfig, SkyGenerator};
use subzero_bench::genomics::{CohortConfig, CohortGenerator, GenomicsWorkflow};
use subzero_bench::harness::NamedQuery;
use subzero_bench::micro::{MicroConfig, MicroWorkflow};
use subzero_bench::strategies::{astronomy_strategies, genomics_strategies, micro_strategies};
use subzero_engine::executor::WorkflowRun;
use subzero_engine::Workflow;

/// One executed system together with its run, ready for inspection.
struct Executed {
    sz: SubZero,
    run: WorkflowRun,
}

fn execute(
    workflow: &std::sync::Arc<Workflow>,
    inputs: &HashMap<String, Array>,
    strategy: LineageStrategy,
    mode: IngestMode,
    batch_size: usize,
) -> Executed {
    let mut sz = SubZero::new();
    sz.set_strategy(strategy);
    sz.set_ingest_mode(mode);
    sz.set_capture_batch_size(batch_size);
    let run = sz.execute(workflow, inputs).expect("workflow executes");
    Executed { sz, run }
}

/// Asserts byte-identical datastore contents and identical answers for every
/// given query, between the per-pair reference and the batched pipeline.
fn assert_parity(
    label: &str,
    workflow: &std::sync::Arc<Workflow>,
    inputs: &HashMap<String, Array>,
    strategy: &LineageStrategy,
    queries_for: impl Fn(&mut SubZero, &WorkflowRun) -> Vec<NamedQuery>,
) {
    let mut reference = execute(workflow, inputs, strategy.clone(), IngestMode::PerPair, 1);
    // An intentionally awkward batch size so batch boundaries fall mid-operator.
    for batch_size in [97usize, 4096] {
        let mut batched = execute(
            workflow,
            inputs,
            strategy.clone(),
            IngestMode::Batched,
            batch_size,
        );

        // Datastore contents: same set of datastores per operator, same
        // strategy labels, byte-identical hash contents, same statistics.
        let ops: Vec<_> = workflow.nodes().iter().map(|n| n.id).collect();
        for &op in &ops {
            let run_a = reference.run.run_id;
            let run_b = batched.run.run_id;
            let a: Vec<_> = reference
                .sz
                .runtime_mut()
                .datastores(run_a, op)
                .iter()
                .map(|ds| (ds.strategy().label(), ds.pairs_stored(), ds.snapshot()))
                .collect();
            let b: Vec<_> = batched
                .sz
                .runtime_mut()
                .datastores(run_b, op)
                .iter()
                .map(|ds| (ds.strategy().label(), ds.pairs_stored(), ds.snapshot()))
                .collect();
            assert_eq!(
                a, b,
                "{label}: datastores differ for op {op} at batch size {batch_size}"
            );
        }

        // Query answers: build the workload's queries once (they are derived
        // deterministically from outputs) and run them on both systems.
        let queries = queries_for(&mut batched.sz, &batched.run);
        for nq in queries {
            let expect = reference
                .sz
                .session(&reference.run)
                .query(&nq.spec)
                .expect("reference query executes")
                .cells
                .to_coords();
            let got = batched
                .sz
                .session(&batched.run)
                .query(&nq.spec)
                .expect("batched query executes")
                .cells
                .to_coords();
            assert_eq!(
                got, expect,
                "{label}: query '{}' differs at batch size {batch_size}",
                nq.name
            );
        }
    }
}

#[test]
fn astronomy_batched_ingest_matches_per_pair() {
    let cfg = SkyConfig::tiny();
    let (e1, e2) = SkyGenerator::new(cfg).generate();
    let wf = AstronomyWorkflow::build(cfg.shape);
    let inputs = AstronomyWorkflow::inputs(e1, e2);
    for named in astronomy_strategies(&wf) {
        assert_parity(
            &format!("astronomy/{}", named.name),
            &wf.workflow,
            &inputs,
            &named.strategy,
            |sz, run| wf.queries(sz, run),
        );
    }
}

#[test]
fn genomics_batched_ingest_matches_per_pair() {
    let cfg = CohortConfig::tiny();
    let (train, test) = CohortGenerator::new(cfg).generate();
    let wf = GenomicsWorkflow::build(&cfg);
    let inputs = GenomicsWorkflow::inputs(train, test);
    for named in genomics_strategies(&wf) {
        assert_parity(
            &format!("genomics/{}", named.name),
            &wf.workflow,
            &inputs,
            &named.strategy,
            |sz, run| wf.queries(sz, run),
        );
    }
}

#[test]
fn micro_batched_ingest_matches_per_pair() {
    let micro = MicroWorkflow::build(MicroConfig::tiny());
    let inputs = micro.inputs();
    for named in micro_strategies(&micro) {
        assert_parity(
            &format!("micro/{}", named.name),
            &micro.workflow,
            &inputs,
            &named.strategy,
            |_sz, _run| vec![micro.backward_query(64), micro.forward_query(64)],
        );
    }
}
