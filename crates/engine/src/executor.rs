//! The workflow executor.
//!
//! [`Engine`] owns the no-overwrite [`VersionedStore`] and the black-box
//! [`WriteAheadLog`].  Executing a workflow instance runs its operators in
//! topological order, persists every intermediate result as a new array
//! version (SciDB's "no overwrite" property), appends the black-box record to
//! the WAL *before* the output array version becomes visible, and hands the
//! region pairs emitted by each operator to a [`LineageCollector`]
//! (implemented by the SubZero runtime).
//!
//! The engine also provides operator re-execution in *tracing mode*
//! ([`Engine::rerun_tracing`]) which is how black-box lineage answers queries
//! at query time (§V-B).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use subzero_array::{Array, ArrayError, ArrayRef, Shape, VersionId, VersionedStore};
use subzero_store::{WalEntry, WriteAheadLog};

use crate::lineage::{BatchingSink, BufferSink, LineageMode, RegionBatch, RegionPair};
use crate::operator::OpMeta;
use crate::workflow::{InputSource, OpId, Workflow, WorkflowError};

/// A failure inside the lineage capture path.
///
/// Collectors that stage work on background threads (the async capture
/// pipeline) report flusher failures through this type: the failure is
/// recorded when it happens and surfaced as an `Err` from the *next* engine
/// call that talks to the collector, rather than hanging the executor or
/// silently dropping lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureError {
    message: String,
}

impl CaptureError {
    /// Wraps a failure description.
    pub fn new(message: impl Into<String>) -> Self {
        CaptureError {
            message: message.into(),
        }
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lineage capture failed: {}", self.message)
    }
}

impl std::error::Error for CaptureError {}

/// Errors produced while executing a workflow.
#[derive(Debug)]
pub enum EngineError {
    /// A workflow structure problem (missing operator, cycle, ...).
    Workflow(WorkflowError),
    /// An array-level problem (missing version, shape mismatch, ...).
    Array(ArrayError),
    /// An external input named by the workflow was not supplied.
    MissingExternalInput(String),
    /// The lineage collector failed to accept captured batches (for the async
    /// capture pipeline this reports an earlier flusher-thread failure).
    Capture(CaptureError),
    /// A lineage query or re-execution referenced a run/operator that never
    /// executed.
    NotExecuted {
        /// The run id that was referenced.
        run_id: u64,
        /// The operator id that was referenced.
        op_id: OpId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Workflow(e) => write!(f, "workflow error: {e}"),
            EngineError::Array(e) => write!(f, "array error: {e}"),
            EngineError::MissingExternalInput(name) => {
                write!(f, "external input array '{name}' was not provided")
            }
            EngineError::Capture(e) => write!(f, "{e}"),
            EngineError::NotExecuted { run_id, op_id } => {
                write!(
                    f,
                    "operator {op_id} has no execution record in run {run_id}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<WorkflowError> for EngineError {
    fn from(e: WorkflowError) -> Self {
        EngineError::Workflow(e)
    }
}

impl From<ArrayError> for EngineError {
    fn from(e: ArrayError) -> Self {
        EngineError::Array(e)
    }
}

impl From<CaptureError> for EngineError {
    fn from(e: CaptureError) -> Self {
        EngineError::Capture(e)
    }
}

/// Everything recorded about one operator execution inside a run.
#[derive(Clone, Debug)]
pub struct ExecutionRecord {
    /// The operator that ran.
    pub op_id: OpId,
    /// Its name (copied for reporting convenience).
    pub op_name: String,
    /// Version ids of the input arrays, in input order.
    pub input_versions: Vec<VersionId>,
    /// Version id of the output array.
    pub output_version: VersionId,
    /// Shapes of inputs and output (the metadata mapping functions may use).
    pub meta: OpMeta,
    /// Wall-clock time of the operator's `run()` call, including any lineage
    /// emission it performed.
    pub elapsed: Duration,
    /// Number of region pairs the operator emitted during this execution.
    pub pairs_emitted: usize,
}

/// The result of executing one workflow instance.
#[derive(Clone, Debug)]
pub struct WorkflowRun {
    /// Unique id of this run within the engine.
    pub run_id: u64,
    /// The workflow that was executed.
    pub workflow: Arc<Workflow>,
    /// Per-operator execution records, keyed by operator id.
    pub records: HashMap<OpId, ExecutionRecord>,
    /// Total wall-clock time of the run (operators plus collector time).
    pub total_elapsed: Duration,
}

impl WorkflowRun {
    /// The execution record of `op_id`.
    pub fn record(&self, op_id: OpId) -> Result<&ExecutionRecord, EngineError> {
        self.records.get(&op_id).ok_or(EngineError::NotExecuted {
            run_id: self.run_id,
            op_id,
        })
    }

    /// Shape of the output array of `op_id`.
    pub fn output_shape(&self, op_id: OpId) -> Result<Shape, EngineError> {
        Ok(self.record(op_id)?.meta.output_shape)
    }

    /// Shape of the `input_idx`'th input array of `op_id`.
    pub fn input_shape(&self, op_id: OpId, input_idx: usize) -> Result<Shape, EngineError> {
        Ok(self.record(op_id)?.meta.input_shapes[input_idx])
    }

    /// Sum of the per-operator execution times (excludes collector overhead).
    pub fn operator_elapsed(&self) -> Duration {
        self.records.values().map(|r| r.elapsed).sum()
    }
}

/// Context handed to a [`LineageCollector`] when an operator finishes.
#[derive(Debug)]
pub struct OpExecution<'a> {
    /// The run this execution belongs to.
    pub run_id: u64,
    /// The operator id.
    pub op_id: OpId,
    /// The operator name.
    pub op_name: &'a str,
    /// Input/output shapes.
    pub meta: &'a OpMeta,
    /// The operator's wall-clock run time.
    pub elapsed: Duration,
}

/// Receives lineage captured while a workflow executes.
///
/// The SubZero runtime implements this trait; [`NullCollector`] records
/// nothing (black-box-only execution).
pub trait LineageCollector {
    /// The lineage modes to request from `op_id` for this execution.
    /// Returning only `Blackbox` (or an empty vector) makes the operator skip
    /// all lineage-generation code.
    fn modes_for(&self, workflow: &Workflow, op_id: OpId) -> Vec<LineageMode>;

    /// Called once per operator execution with every sealed batch of region
    /// pairs it emitted, in emission order.  Collectors encode and store
    /// batch-at-a-time; the time spent in this call is part of the workflow's
    /// lineage capture overhead and is charged to the run's total elapsed
    /// time.  Asynchronous collectors only *stage* the batches here (the
    /// executor thread pays for the hand-off, not for encode + store) and
    /// use the `Err` return to surface failures recorded by their background
    /// flusher threads on the next engine call.
    fn collect_batches(
        &mut self,
        exec: &OpExecution<'_>,
        batches: Vec<RegionBatch>,
    ) -> Result<(), CaptureError>;
}

/// A collector that requests black-box lineage only and discards any pairs.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullCollector;

impl LineageCollector for NullCollector {
    fn modes_for(&self, _workflow: &Workflow, _op_id: OpId) -> Vec<LineageMode> {
        vec![LineageMode::Blackbox]
    }

    fn collect_batches(
        &mut self,
        _exec: &OpExecution<'_>,
        _batches: Vec<RegionBatch>,
    ) -> Result<(), CaptureError> {
        Ok(())
    }
}

/// Default number of region pairs per sealed capture batch.
///
/// Large enough to amortise per-batch work (key-value group flushes,
/// statistics updates, spatial-index staging) across thousands of pairs,
/// small enough to bound staging memory per operator.
pub const DEFAULT_CAPTURE_BATCH_SIZE: usize = 4096;

/// The workflow execution engine.
pub struct Engine {
    store: VersionedStore,
    wal: WriteAheadLog,
    next_run_id: u64,
    capture_batch_size: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with an empty array store and WAL.
    pub fn new() -> Self {
        Engine {
            store: VersionedStore::new(),
            wal: WriteAheadLog::new(),
            next_run_id: 0,
            capture_batch_size: DEFAULT_CAPTURE_BATCH_SIZE,
        }
    }

    /// Sets the number of region pairs per sealed capture batch (clamped to
    /// at least 1; a size of 1 reproduces the legacy per-pair hand-off).
    pub fn set_capture_batch_size(&mut self, batch_size: usize) {
        self.capture_batch_size = batch_size.max(1);
    }

    /// The configured capture batch size.
    pub fn capture_batch_size(&self) -> usize {
        self.capture_batch_size
    }

    /// The versioned array store (intermediate and final results).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Mutable access to the versioned array store (used to pre-load
    /// external arrays).
    pub fn store_mut(&mut self) -> &mut VersionedStore {
        &mut self.store
    }

    /// The black-box write-ahead log.
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Executes one instance of `workflow` over the given external input
    /// arrays, capturing lineage through `collector`.
    pub fn execute(
        &mut self,
        workflow: &Arc<Workflow>,
        externals: &HashMap<String, Array>,
        collector: &mut dyn LineageCollector,
    ) -> Result<WorkflowRun, EngineError> {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        let run_start = Instant::now();

        // Register external inputs as array versions so that black-box
        // re-execution can find them later.
        let mut external_versions: HashMap<String, VersionId> = HashMap::new();
        for name in workflow.external_inputs() {
            let array = externals
                .get(name)
                .ok_or_else(|| EngineError::MissingExternalInput(name.to_string()))?;
            let vid = self.store.put(name, array.clone());
            external_versions.insert(name.to_string(), vid);
        }

        let mut records: HashMap<OpId, ExecutionRecord> = HashMap::new();
        for &op_id in workflow.topo_order() {
            let node = workflow.node(op_id)?;
            // Resolve input arrays.
            let mut input_versions = Vec::with_capacity(node.inputs.len());
            let mut input_arrays: Vec<ArrayRef> = Vec::with_capacity(node.inputs.len());
            for src in &node.inputs {
                let vid = match src {
                    InputSource::External(name) => *external_versions
                        .get(name)
                        .ok_or_else(|| EngineError::MissingExternalInput(name.clone()))?,
                    InputSource::Operator(up) => {
                        records
                            .get(up)
                            .ok_or(EngineError::NotExecuted { run_id, op_id: *up })?
                            .output_version
                    }
                };
                input_versions.push(vid);
                input_arrays.push(self.store.get_version(vid)?);
            }
            let input_shapes: Vec<Shape> = input_arrays.iter().map(|a| a.shape()).collect();

            // Ask the collector which lineage modes to capture.  Emitted
            // pairs are staged into batches while the operator runs.
            let cur_modes = collector.modes_for(workflow, op_id);
            let mut sink = BatchingSink::new(self.capture_batch_size);

            let op_start = Instant::now();
            let output = node.operator.run(&input_arrays, &cur_modes, &mut sink);
            let elapsed = op_start.elapsed();

            let meta = OpMeta::new(input_shapes, output.shape());

            // Black-box lineage is written *before* the array data becomes
            // visible: append the WAL record first, using the version id the
            // store will assign next, then store the output.
            let pairs_emitted = sink.total_pairs();
            let output_name = format!("{}/op{}", workflow.name(), op_id);
            let predicted_version = self.store.next_version_id();
            let wal_entry = WalEntry {
                run_id,
                op_id,
                op_name: node.operator.name().to_string(),
                input_versions: input_versions.iter().map(|v| v.0).collect(),
                output_version: predicted_version.0,
                elapsed_us: elapsed.as_micros() as u64,
            };
            self.wal.append(wal_entry);
            let output_version = self.store.put(&output_name, output);
            debug_assert_eq!(output_version, predicted_version);

            let record = ExecutionRecord {
                op_id,
                op_name: node.operator.name().to_string(),
                input_versions,
                output_version,
                meta: meta.clone(),
                elapsed,
                pairs_emitted,
            };

            // Hand the sealed batches to the collector (charged to the run).
            let exec = OpExecution {
                run_id,
                op_id,
                op_name: node.operator.name(),
                meta: &meta,
                elapsed,
            };
            collector.collect_batches(&exec, sink.finish())?;

            records.insert(op_id, record);
        }

        Ok(WorkflowRun {
            run_id,
            workflow: Arc::clone(workflow),
            records,
            total_elapsed: run_start.elapsed(),
        })
    }

    /// Fetches the output array produced by `op_id` during `run`.
    pub fn output_of(&self, run: &WorkflowRun, op_id: OpId) -> Result<ArrayRef, EngineError> {
        let record = run.record(op_id)?;
        Ok(self.store.get_version(record.output_version)?)
    }

    /// Fetches the `input_idx`'th input array consumed by `op_id` during
    /// `run`.
    pub fn input_of(
        &self,
        run: &WorkflowRun,
        op_id: OpId,
        input_idx: usize,
    ) -> Result<ArrayRef, EngineError> {
        let record = run.record(op_id)?;
        let vid =
            record
                .input_versions
                .get(input_idx)
                .copied()
                .ok_or(EngineError::NotExecuted {
                    run_id: run.run_id,
                    op_id,
                })?;
        Ok(self.store.get_version(vid)?)
    }

    /// Re-executes `op_id` of a previous run in *tracing mode*: the operator
    /// is re-run over its recorded input versions with `cur_modes = [Full]`
    /// so that it emits full region pairs, which are returned together with
    /// the re-execution time.  This is how black-box lineage is materialised
    /// at query time.
    pub fn rerun_tracing(
        &self,
        run: &WorkflowRun,
        op_id: OpId,
    ) -> Result<(Vec<RegionPair>, Duration), EngineError> {
        let record = run.record(op_id)?;
        let node = run.workflow.node(op_id)?;
        let mut inputs = Vec::with_capacity(record.input_versions.len());
        for vid in &record.input_versions {
            inputs.push(self.store.get_version(*vid)?);
        }
        let mut sink = BufferSink::new();
        let start = Instant::now();
        let _output = node.operator.run(&inputs, &[LineageMode::Full], &mut sink);
        Ok((sink.pairs, start.elapsed()))
    }

    /// Re-executes `op_id` of a previous run without tracing (used by the
    /// query-time optimizer to measure pure re-execution cost).
    pub fn rerun_plain(&self, run: &WorkflowRun, op_id: OpId) -> Result<Duration, EngineError> {
        let record = run.record(op_id)?;
        let node = run.workflow.node(op_id)?;
        let mut inputs = Vec::with_capacity(record.input_versions.len());
        for vid in &record.input_versions {
            inputs.push(self.store.get_version(*vid)?);
        }
        let start = Instant::now();
        let mut sink = crate::lineage::NullSink;
        let _output = node
            .operator
            .run(&inputs, &[LineageMode::Blackbox], &mut sink);
        Ok(start.elapsed())
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("versions", &self.store.num_versions())
            .field("wal_entries", &self.wal.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageSink;
    use crate::operator::Operator;
    use subzero_array::Coord;

    /// Doubles every cell; emits one full region pair per cell when asked.
    struct Double;

    impl Operator for Double {
        fn name(&self) -> &str {
            "double"
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn supported_modes(&self) -> Vec<LineageMode> {
            vec![LineageMode::Full, LineageMode::Map, LineageMode::Blackbox]
        }
        fn run(
            &self,
            inputs: &[ArrayRef],
            cur_modes: &[LineageMode],
            sink: &mut dyn LineageSink,
        ) -> Array {
            let input = &inputs[0];
            if cur_modes.contains(&LineageMode::Full) {
                for (c, _) in input.iter() {
                    sink.lwrite(vec![c], vec![vec![c]]);
                }
            }
            input.map(|v| v * 2.0)
        }
        fn map_backward(&self, out: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
            Some(vec![*out])
        }
        fn map_forward(&self, inc: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
            Some(vec![*inc])
        }
    }

    /// Sums both inputs cell-wise.
    struct AddTwo;

    impl Operator for AddTwo {
        fn name(&self) -> &str {
            "add"
        }
        fn num_inputs(&self) -> usize {
            2
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(
            &self,
            inputs: &[ArrayRef],
            _cur_modes: &[LineageMode],
            _sink: &mut dyn LineageSink,
        ) -> Array {
            inputs[0]
                .zip_with(&inputs[1], |a, b| a + b)
                .expect("shapes")
        }
    }

    fn simple_workflow() -> Arc<Workflow> {
        let mut b = Workflow::builder("wf");
        let d1 = b.add_source(Arc::new(Double), "img");
        let d2 = b.add_unary(Arc::new(Double), d1);
        let _sum = b.add_binary(Arc::new(AddTwo), d1, d2);
        Arc::new(b.build().unwrap())
    }

    fn externals() -> HashMap<String, Array> {
        let mut m = HashMap::new();
        m.insert(
            "img".to_string(),
            Array::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]),
        );
        m
    }

    #[test]
    fn execute_produces_expected_outputs_and_records() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let run = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        assert_eq!(run.records.len(), 3);
        // op0 = 2*img, op1 = 4*img, op2 = op0 + op1 = 6*img
        let out = engine.output_of(&run, 2).unwrap();
        assert_eq!(out.get(&Coord::d2(1, 1)), 24.0);
        assert_eq!(run.output_shape(2).unwrap(), Shape::d2(2, 2));
        assert_eq!(run.input_shape(2, 1).unwrap(), Shape::d2(2, 2));
        // WAL recorded one entry per operator.
        assert_eq!(engine.wal().len(), 3);
        // No-overwrite: externals + 3 operator outputs are all stored.
        assert_eq!(engine.store().num_versions(), 4);
    }

    #[test]
    fn missing_external_input_errors() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let err = engine
            .execute(&wf, &HashMap::new(), &mut NullCollector)
            .unwrap_err();
        assert!(matches!(err, EngineError::MissingExternalInput(_)));
    }

    #[derive(Default)]
    struct FullCollector {
        pairs_seen: usize,
        batches_seen: usize,
        batch_sizes: Vec<usize>,
        ops_seen: Vec<OpId>,
    }
    impl LineageCollector for FullCollector {
        fn modes_for(&self, _w: &Workflow, _op: OpId) -> Vec<LineageMode> {
            vec![LineageMode::Full]
        }
        fn collect_batches(
            &mut self,
            exec: &OpExecution<'_>,
            batches: Vec<RegionBatch>,
        ) -> Result<(), CaptureError> {
            self.batches_seen += batches.len();
            for b in &batches {
                self.pairs_seen += b.len();
                self.batch_sizes.push(b.len());
            }
            self.ops_seen.push(exec.op_id);
            Ok(())
        }
    }

    #[test]
    fn collector_receives_batches_when_full_requested() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let mut collector = FullCollector::default();
        let run = engine.execute(&wf, &externals(), &mut collector).unwrap();
        // The two Double operators emit one pair per cell (4 each); AddTwo
        // emits none even when asked because it has no lineage code.
        assert_eq!(collector.pairs_seen, 8);
        assert_eq!(collector.batches_seen, 2, "one batch per emitting operator");
        assert_eq!(collector.ops_seen.len(), 3);
        assert_eq!(run.record(0).unwrap().pairs_emitted, 4);
        assert_eq!(run.record(2).unwrap().pairs_emitted, 0);
    }

    #[test]
    fn capture_batch_size_controls_batch_boundaries() {
        let mut engine = Engine::new();
        assert_eq!(engine.capture_batch_size(), DEFAULT_CAPTURE_BATCH_SIZE);
        engine.set_capture_batch_size(3);
        assert_eq!(engine.capture_batch_size(), 3);
        let wf = simple_workflow();
        let mut collector = FullCollector::default();
        engine.execute(&wf, &externals(), &mut collector).unwrap();
        // Each Double operator emits 4 pairs -> batches of 3 + 1.
        assert_eq!(collector.batch_sizes, vec![3, 1, 3, 1]);
        assert_eq!(collector.pairs_seen, 8);

        // Batch size 1 reproduces the per-pair hand-off (and 0 clamps to 1).
        engine.set_capture_batch_size(0);
        assert_eq!(engine.capture_batch_size(), 1);
        let mut collector = FullCollector::default();
        engine.execute(&wf, &externals(), &mut collector).unwrap();
        assert_eq!(collector.batches_seen, 8);
        assert!(collector.batch_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn blackbox_execution_emits_no_pairs() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let run = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        assert!(run.records.values().all(|r| r.pairs_emitted == 0));
    }

    #[test]
    fn rerun_tracing_reproduces_lineage() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let run = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        let (pairs, elapsed) = engine.rerun_tracing(&run, 1).unwrap();
        assert_eq!(pairs.len(), 4);
        assert!(elapsed.as_nanos() > 0);
        // Every pair is the identity relationship of the Double operator.
        for p in &pairs {
            match p {
                RegionPair::Full { outcells, incells } => {
                    assert_eq!(outcells, &incells[0]);
                }
                _ => panic!("tracing mode must emit full pairs"),
            }
        }
    }

    #[test]
    fn rerun_plain_measures_time_without_pairs() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let run = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        let elapsed = engine.rerun_plain(&run, 0).unwrap();
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn multiple_runs_get_distinct_ids_and_versions() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let r1 = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        let r2 = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        assert_ne!(r1.run_id, r2.run_id);
        assert_ne!(
            r1.record(0).unwrap().output_version,
            r2.record(0).unwrap().output_version
        );
        let execs_for = |run_id: u64| {
            engine
                .wal()
                .records()
                .iter()
                .filter(|r| matches!(r, subzero_store::WalRecord::Exec(e) if e.run_id == run_id))
                .count()
        };
        assert_eq!(execs_for(r1.run_id), 3);
        assert_eq!(execs_for(r2.run_id), 3);
    }

    #[test]
    fn not_executed_errors() {
        let mut engine = Engine::new();
        let wf = simple_workflow();
        let run = engine
            .execute(&wf, &externals(), &mut NullCollector)
            .unwrap();
        assert!(run.record(99).is_err());
        assert!(engine.output_of(&run, 99).is_err());
        assert!(engine.input_of(&run, 0, 5).is_err());
    }
}
