//! # subzero-engine
//!
//! A SciDB-like workflow executor: the substrate SubZero instruments.
//!
//! SubZero "is designed to work with a workflow executor system that applies
//! a fixed sequence of operators to some set of inputs" (§IV of the paper).
//! Each operator consumes one or more arrays and produces a single output
//! array; operators are composed into a DAG (the *workflow specification*);
//! an *instance* of the workflow executes it over concrete input arrays; and
//! every intermediate result is persisted in a no-overwrite versioned store,
//! which is what makes black-box lineage free.
//!
//! This crate provides:
//!
//! * [`lineage`] — the operator-facing lineage API: [`LineageMode`],
//!   [`RegionPair`], and the [`LineageSink`] the `lwrite()` calls go to
//!   (Table I of the paper).
//! * [`operator`] — the [`Operator`] trait with `run()`,
//!   `supported_modes()`, and the `map_b`/`map_f`/`map_p` mapping functions.
//! * [`workflow`] — workflow specifications (DAGs of operators).
//! * [`paths`] — deriving lineage-query traversals from the DAG: pruned
//!   [`TracePlan`]s with multi-path fan-out at joins, plus per-path
//!   enumeration for parity testing.
//! * [`executor`] — the [`Engine`] that runs workflow
//!   instances, persists array versions, appends black-box records to the
//!   write-ahead log, and forwards captured lineage to a
//!   [`LineageCollector`] (implemented by the
//!   `subzero` crate's runtime).
//! * [`ops`] — the built-in operators (matrix arithmetic, transpose,
//!   convolution, matrix multiply, aggregation, normalisation, slicing,
//!   concatenation, …), all instrumented as *mapping operators* with
//!   forward and backward mapping functions, as the paper describes for
//!   SciDB's built-ins.

pub mod executor;
pub mod lineage;
pub mod operator;
pub mod ops;
pub mod paths;
pub mod workflow;

pub use executor::{
    CaptureError, Engine, ExecutionRecord, LineageCollector, NullCollector, WorkflowRun,
};
pub use lineage::{
    BatchingSink, BufferSink, LineageMode, LineageSink, NullSink, RegionBatch, RegionPair,
};
pub use operator::{OpMeta, Operator, OperatorExt};
pub use paths::{ArrayNode, PathError, TracePlan};
pub use workflow::{InputSource, OpId, Workflow, WorkflowBuilder, WorkflowError, WorkflowNode};
