//! The operator-facing lineage API.
//!
//! This module defines the vocabulary shared between operators (which *emit*
//! lineage) and the SubZero runtime (which *stores* it): the lineage modes of
//! §V-A, the region pair of §IV, and the `lwrite()` sink of Table I.

use subzero_array::Coord;

/// The lineage modes an operator can generate (§V-A of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineageMode {
    /// Explicitly store every region pair.
    Full,
    /// No stored pairs; lineage is computed at query time from the operator's
    /// forward/backward mapping functions (`map_f` / `map_b`).
    Map,
    /// Store `(outcells, payload)` pairs; backward lineage is recomputed at
    /// query time by the payload mapping function `map_p`.
    Pay,
    /// Composite: a mapping function defines the default relationship and
    /// payload pairs override it for the (few) cells that differ.
    Comp,
    /// Only black-box lineage: record nothing beyond the input/output array
    /// versions; queries re-run the operator in tracing mode.
    Blackbox,
}

impl LineageMode {
    /// All modes, in the order used for display and iteration.
    pub const ALL: [LineageMode; 5] = [
        LineageMode::Full,
        LineageMode::Map,
        LineageMode::Pay,
        LineageMode::Comp,
        LineageMode::Blackbox,
    ];

    /// Whether this mode stores per-region data at workflow runtime
    /// (`Full`, `Pay` and `Comp` do; `Map` and `Blackbox` do not).
    pub fn stores_pairs(&self) -> bool {
        matches!(
            self,
            LineageMode::Full | LineageMode::Pay | LineageMode::Comp
        )
    }

    /// Short name used in reports and database names.
    pub fn short_name(&self) -> &'static str {
        match self {
            LineageMode::Full => "full",
            LineageMode::Map => "map",
            LineageMode::Pay => "pay",
            LineageMode::Comp => "comp",
            LineageMode::Blackbox => "blackbox",
        }
    }
}

impl std::fmt::Display for LineageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One region pair emitted through `lwrite()`.
///
/// A region pair describes an all-to-all relationship between a set of output
/// cells and, either a set of input cells per input array (*full* pairs), or
/// a small binary payload from which the input cells can be recomputed by the
/// operator's `map_p` function (*payload* pairs).
#[derive(Clone, Debug, PartialEq)]
pub enum RegionPair {
    /// `lwrite(outcells, incells_1, ..., incells_n)`
    Full {
        /// Output cells of the region pair.
        outcells: Vec<Coord>,
        /// For each input array (in input order), the input cells the output
        /// cells depend on.
        incells: Vec<Vec<Coord>>,
    },
    /// `lwrite(outcells, payload)`
    Payload {
        /// Output cells of the region pair.
        outcells: Vec<Coord>,
        /// Developer-defined binary blob handed back to `map_p` at query time.
        payload: Vec<u8>,
    },
}

impl RegionPair {
    /// The output cells of the pair.
    pub fn outcells(&self) -> &[Coord] {
        match self {
            RegionPair::Full { outcells, .. } | RegionPair::Payload { outcells, .. } => outcells,
        }
    }

    /// Total number of coordinates stored in the pair (both sides), used by
    /// statistics and the cost model.
    pub fn num_cells(&self) -> usize {
        match self {
            RegionPair::Full { outcells, incells } => {
                outcells.len() + incells.iter().map(Vec::len).sum::<usize>()
            }
            RegionPair::Payload { outcells, .. } => outcells.len(),
        }
    }

    /// Payload length in bytes (0 for full pairs).
    pub fn payload_len(&self) -> usize {
        match self {
            RegionPair::Full { .. } => 0,
            RegionPair::Payload { payload, .. } => payload.len(),
        }
    }
}

/// A batch of region pairs staged per operator execution.
///
/// The executor's staging sink seals emitted pairs into batches of a
/// configurable size and hands whole batches to the lineage collector, which
/// encodes and stores them batch-at-a-time (amortising key-value writes,
/// spatial-index maintenance and statistics updates).  A batch is purely a
/// contiguous, ordered slice of the operator's emission stream: splitting the
/// stream at different batch boundaries must never change what ends up
/// stored.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionBatch {
    /// The staged pairs, in emission order.
    pub pairs: Vec<RegionPair>,
}

impl RegionBatch {
    /// Wraps a vector of pairs as one batch.
    pub fn new(pairs: Vec<RegionPair>) -> Self {
        RegionBatch { pairs }
    }

    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Total number of coordinates across all pairs (both sides).
    pub fn num_cells(&self) -> usize {
        self.pairs.iter().map(RegionPair::num_cells).sum()
    }
}

/// Receiver of `lwrite()` calls made by an operator while it runs.
///
/// The SubZero runtime implements this to buffer, encode and store region
/// pairs; the re-executor implements it to trace lineage at query time; and
/// [`NullSink`] implements it to discard lineage when only black-box lineage
/// is requested.
pub trait LineageSink {
    /// `lwrite(outcells, incells_1, ..., incells_n)`: record that every cell
    /// in `outcells` depends on every cell in `incells[i]` of input `i`.
    fn lwrite(&mut self, outcells: Vec<Coord>, incells: Vec<Vec<Coord>>);

    /// `lwrite(outcells, payload)`: record a payload region pair.
    fn lwrite_payload(&mut self, outcells: Vec<Coord>, payload: Vec<u8>);

    /// Hands a pre-built run of region pairs to the sink in one call.
    ///
    /// Operators that materialise many pairs (bulk loaders, the synthetic
    /// benchmark generator) should prefer this over per-pair `lwrite` calls:
    /// sinks can stage the whole run without per-pair dispatch.  The default
    /// simply replays the pairs one at a time.
    fn lwrite_batch(&mut self, pairs: Vec<RegionPair>) {
        for pair in pairs {
            match pair {
                RegionPair::Full { outcells, incells } => self.lwrite(outcells, incells),
                RegionPair::Payload { outcells, payload } => self.lwrite_payload(outcells, payload),
            }
        }
    }
}

/// A sink that discards all lineage (used for `Blackbox`-only execution).
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl LineageSink for NullSink {
    fn lwrite(&mut self, _outcells: Vec<Coord>, _incells: Vec<Vec<Coord>>) {}
    fn lwrite_payload(&mut self, _outcells: Vec<Coord>, _payload: Vec<u8>) {}
    fn lwrite_batch(&mut self, _pairs: Vec<RegionPair>) {}
}

/// A sink that buffers every region pair in memory.
///
/// Used by the tracing-mode re-executor ("when the operator is re-run at
/// lineage query time, SubZero passes `cur_modes = Full`, which causes the
/// operator to perform `lwrite()` calls; the arguments to these calls are
/// sent to the query executor", §V-B), and by unit tests.
#[derive(Default, Debug, Clone)]
pub struct BufferSink {
    /// The buffered pairs, in emission order.
    pub pairs: Vec<RegionPair>,
}

impl BufferSink {
    /// Creates an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of buffered pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl LineageSink for BufferSink {
    fn lwrite(&mut self, outcells: Vec<Coord>, incells: Vec<Vec<Coord>>) {
        self.pairs.push(RegionPair::Full { outcells, incells });
    }

    fn lwrite_payload(&mut self, outcells: Vec<Coord>, payload: Vec<u8>) {
        self.pairs.push(RegionPair::Payload { outcells, payload });
    }

    fn lwrite_batch(&mut self, mut pairs: Vec<RegionPair>) {
        self.pairs.append(&mut pairs);
    }
}

/// The executor's staging sink: seals emitted pairs into [`RegionBatch`]es of
/// at most `batch_size` pairs, preserving emission order.
///
/// This is the ingestion analogue of operation staging in versioned stores
/// (buffer all changes, commit in one step): the operator emits freely while
/// it runs, and the sealed batches are handed to the collector per operator
/// execution, where encoding and storage are amortised per batch.
#[derive(Debug, Clone)]
pub struct BatchingSink {
    batch_size: usize,
    current: Vec<RegionPair>,
    sealed: Vec<RegionBatch>,
    total: usize,
}

impl BatchingSink {
    /// Creates a sink sealing batches of `batch_size` pairs (clamped to at
    /// least 1; a size of 1 degenerates to the legacy per-pair hand-off).
    pub fn new(batch_size: usize) -> Self {
        BatchingSink {
            batch_size: batch_size.max(1),
            current: Vec::new(),
            sealed: Vec::new(),
            total: 0,
        }
    }

    /// Total number of pairs staged so far.
    pub fn total_pairs(&self) -> usize {
        self.total
    }

    fn push(&mut self, pair: RegionPair) {
        if self.current.is_empty() {
            self.current.reserve(self.batch_size.min(256));
        }
        self.current.push(pair);
        self.total += 1;
        if self.current.len() >= self.batch_size {
            let pairs = std::mem::take(&mut self.current);
            self.sealed.push(RegionBatch::new(pairs));
        }
    }

    /// Seals the final partial batch and returns every batch in order.
    pub fn finish(mut self) -> Vec<RegionBatch> {
        if !self.current.is_empty() {
            let pairs = std::mem::take(&mut self.current);
            self.sealed.push(RegionBatch::new(pairs));
        }
        self.sealed
    }
}

impl LineageSink for BatchingSink {
    fn lwrite(&mut self, outcells: Vec<Coord>, incells: Vec<Vec<Coord>>) {
        self.push(RegionPair::Full { outcells, incells });
    }

    fn lwrite_payload(&mut self, outcells: Vec<Coord>, payload: Vec<u8>) {
        self.push(RegionPair::Payload { outcells, payload });
    }

    fn lwrite_batch(&mut self, pairs: Vec<RegionPair>) {
        self.total += pairs.len();
        // Seal the run along the configured batch boundaries without
        // disturbing the pairs already staged: batches are just partitions of
        // the emission stream, so boundary placement is free.
        let mut pairs = pairs.into_iter();
        while self.current.len() + pairs.len() >= self.batch_size {
            let take = self.batch_size - self.current.len();
            self.current.extend(pairs.by_ref().take(take));
            let sealed = std::mem::take(&mut self.current);
            self.sealed.push(RegionBatch::new(sealed));
        }
        self.current.extend(pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(LineageMode::Full.stores_pairs());
        assert!(LineageMode::Pay.stores_pairs());
        assert!(LineageMode::Comp.stores_pairs());
        assert!(!LineageMode::Map.stores_pairs());
        assert!(!LineageMode::Blackbox.stores_pairs());
        assert_eq!(LineageMode::ALL.len(), 5);
        assert_eq!(LineageMode::Comp.to_string(), "comp");
    }

    #[test]
    fn region_pair_accessors() {
        let full = RegionPair::Full {
            outcells: vec![Coord::d2(0, 0), Coord::d2(0, 1)],
            incells: vec![
                vec![Coord::d2(1, 1)],
                vec![Coord::d2(2, 2), Coord::d2(2, 3)],
            ],
        };
        assert_eq!(full.outcells().len(), 2);
        assert_eq!(full.num_cells(), 5);
        assert_eq!(full.payload_len(), 0);

        let pay = RegionPair::Payload {
            outcells: vec![Coord::d2(0, 0)],
            payload: vec![3],
        };
        assert_eq!(pay.outcells(), &[Coord::d2(0, 0)]);
        assert_eq!(pay.num_cells(), 1);
        assert_eq!(pay.payload_len(), 1);
    }

    #[test]
    fn buffer_sink_collects_in_order() {
        let mut sink = BufferSink::new();
        assert!(sink.is_empty());
        sink.lwrite(vec![Coord::d1(0)], vec![vec![Coord::d1(1)]]);
        sink.lwrite_payload(vec![Coord::d1(2)], vec![9, 9]);
        assert_eq!(sink.len(), 2);
        assert!(matches!(sink.pairs[0], RegionPair::Full { .. }));
        assert!(matches!(sink.pairs[1], RegionPair::Payload { .. }));
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.lwrite(vec![Coord::d1(0)], vec![]);
        sink.lwrite_payload(vec![Coord::d1(0)], vec![1]);
        sink.lwrite_batch(vec![RegionPair::Payload {
            outcells: vec![Coord::d1(0)],
            payload: vec![],
        }]);
        // Nothing observable; the test simply exercises the no-op paths.
    }

    fn pair(i: u32) -> RegionPair {
        RegionPair::Full {
            outcells: vec![Coord::d1(i)],
            incells: vec![vec![Coord::d1(i + 1)]],
        }
    }

    #[test]
    fn batching_sink_seals_on_boundary() {
        let mut sink = BatchingSink::new(3);
        for i in 0..7 {
            sink.lwrite(vec![Coord::d1(i)], vec![vec![Coord::d1(i + 1)]]);
        }
        assert_eq!(sink.total_pairs(), 7);
        let batches = sink.finish();
        assert_eq!(
            batches.iter().map(RegionBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        // Emission order is preserved across batch boundaries.
        let flat: Vec<RegionPair> = batches.into_iter().flat_map(|b| b.pairs).collect();
        assert_eq!(flat, (0..7).map(pair).collect::<Vec<_>>());
    }

    #[test]
    fn batching_sink_splits_bulk_runs_on_same_boundaries() {
        // Emitting pairs one at a time or as bulk runs must produce the same
        // batch partition.
        let mut per_pair = BatchingSink::new(4);
        let mut bulk = BatchingSink::new(4);
        per_pair.lwrite(vec![Coord::d1(100)], vec![vec![]]);
        bulk.lwrite(vec![Coord::d1(100)], vec![vec![]]);
        for i in 0..10 {
            let RegionPair::Full { outcells, incells } = pair(i) else {
                unreachable!()
            };
            per_pair.lwrite(outcells, incells);
        }
        bulk.lwrite_batch((0..10).map(pair).collect());
        assert_eq!(per_pair.total_pairs(), bulk.total_pairs());
        assert_eq!(per_pair.finish(), bulk.finish());
    }

    #[test]
    fn batching_sink_batch_size_one_is_per_pair() {
        let mut sink = BatchingSink::new(1);
        sink.lwrite_batch((0..4).map(pair).collect());
        let batches = sink.finish();
        assert_eq!(batches.len(), 4);
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn region_batch_stats() {
        let batch = RegionBatch::new(vec![
            pair(0),
            RegionPair::Payload {
                outcells: vec![Coord::d1(9)],
                payload: vec![1, 2],
            },
        ]);
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(batch.num_cells(), 3);
        assert!(RegionBatch::default().is_empty());
    }
}
