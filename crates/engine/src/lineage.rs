//! The operator-facing lineage API.
//!
//! This module defines the vocabulary shared between operators (which *emit*
//! lineage) and the SubZero runtime (which *stores* it): the lineage modes of
//! §V-A, the region pair of §IV, and the `lwrite()` sink of Table I.

use subzero_array::Coord;

/// The lineage modes an operator can generate (§V-A of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LineageMode {
    /// Explicitly store every region pair.
    Full,
    /// No stored pairs; lineage is computed at query time from the operator's
    /// forward/backward mapping functions (`map_f` / `map_b`).
    Map,
    /// Store `(outcells, payload)` pairs; backward lineage is recomputed at
    /// query time by the payload mapping function `map_p`.
    Pay,
    /// Composite: a mapping function defines the default relationship and
    /// payload pairs override it for the (few) cells that differ.
    Comp,
    /// Only black-box lineage: record nothing beyond the input/output array
    /// versions; queries re-run the operator in tracing mode.
    Blackbox,
}

impl LineageMode {
    /// All modes, in the order used for display and iteration.
    pub const ALL: [LineageMode; 5] = [
        LineageMode::Full,
        LineageMode::Map,
        LineageMode::Pay,
        LineageMode::Comp,
        LineageMode::Blackbox,
    ];

    /// Whether this mode stores per-region data at workflow runtime
    /// (`Full`, `Pay` and `Comp` do; `Map` and `Blackbox` do not).
    pub fn stores_pairs(&self) -> bool {
        matches!(self, LineageMode::Full | LineageMode::Pay | LineageMode::Comp)
    }

    /// Short name used in reports and database names.
    pub fn short_name(&self) -> &'static str {
        match self {
            LineageMode::Full => "full",
            LineageMode::Map => "map",
            LineageMode::Pay => "pay",
            LineageMode::Comp => "comp",
            LineageMode::Blackbox => "blackbox",
        }
    }
}

impl std::fmt::Display for LineageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One region pair emitted through `lwrite()`.
///
/// A region pair describes an all-to-all relationship between a set of output
/// cells and, either a set of input cells per input array (*full* pairs), or
/// a small binary payload from which the input cells can be recomputed by the
/// operator's `map_p` function (*payload* pairs).
#[derive(Clone, Debug, PartialEq)]
pub enum RegionPair {
    /// `lwrite(outcells, incells_1, ..., incells_n)`
    Full {
        /// Output cells of the region pair.
        outcells: Vec<Coord>,
        /// For each input array (in input order), the input cells the output
        /// cells depend on.
        incells: Vec<Vec<Coord>>,
    },
    /// `lwrite(outcells, payload)`
    Payload {
        /// Output cells of the region pair.
        outcells: Vec<Coord>,
        /// Developer-defined binary blob handed back to `map_p` at query time.
        payload: Vec<u8>,
    },
}

impl RegionPair {
    /// The output cells of the pair.
    pub fn outcells(&self) -> &[Coord] {
        match self {
            RegionPair::Full { outcells, .. } | RegionPair::Payload { outcells, .. } => outcells,
        }
    }

    /// Total number of coordinates stored in the pair (both sides), used by
    /// statistics and the cost model.
    pub fn num_cells(&self) -> usize {
        match self {
            RegionPair::Full { outcells, incells } => {
                outcells.len() + incells.iter().map(Vec::len).sum::<usize>()
            }
            RegionPair::Payload { outcells, .. } => outcells.len(),
        }
    }

    /// Payload length in bytes (0 for full pairs).
    pub fn payload_len(&self) -> usize {
        match self {
            RegionPair::Full { .. } => 0,
            RegionPair::Payload { payload, .. } => payload.len(),
        }
    }
}

/// Receiver of `lwrite()` calls made by an operator while it runs.
///
/// The SubZero runtime implements this to buffer, encode and store region
/// pairs; the re-executor implements it to trace lineage at query time; and
/// [`NullSink`] implements it to discard lineage when only black-box lineage
/// is requested.
pub trait LineageSink {
    /// `lwrite(outcells, incells_1, ..., incells_n)`: record that every cell
    /// in `outcells` depends on every cell in `incells[i]` of input `i`.
    fn lwrite(&mut self, outcells: Vec<Coord>, incells: Vec<Vec<Coord>>);

    /// `lwrite(outcells, payload)`: record a payload region pair.
    fn lwrite_payload(&mut self, outcells: Vec<Coord>, payload: Vec<u8>);
}

/// A sink that discards all lineage (used for `Blackbox`-only execution).
#[derive(Default, Debug, Clone, Copy)]
pub struct NullSink;

impl LineageSink for NullSink {
    fn lwrite(&mut self, _outcells: Vec<Coord>, _incells: Vec<Vec<Coord>>) {}
    fn lwrite_payload(&mut self, _outcells: Vec<Coord>, _payload: Vec<u8>) {}
}

/// A sink that buffers every region pair in memory.
///
/// Used by the tracing-mode re-executor ("when the operator is re-run at
/// lineage query time, SubZero passes `cur_modes = Full`, which causes the
/// operator to perform `lwrite()` calls; the arguments to these calls are
/// sent to the query executor", §V-B), and by unit tests.
#[derive(Default, Debug, Clone)]
pub struct BufferSink {
    /// The buffered pairs, in emission order.
    pub pairs: Vec<RegionPair>,
}

impl BufferSink {
    /// Creates an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of buffered pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been buffered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

impl LineageSink for BufferSink {
    fn lwrite(&mut self, outcells: Vec<Coord>, incells: Vec<Vec<Coord>>) {
        self.pairs.push(RegionPair::Full { outcells, incells });
    }

    fn lwrite_payload(&mut self, outcells: Vec<Coord>, payload: Vec<u8>) {
        self.pairs.push(RegionPair::Payload { outcells, payload });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(LineageMode::Full.stores_pairs());
        assert!(LineageMode::Pay.stores_pairs());
        assert!(LineageMode::Comp.stores_pairs());
        assert!(!LineageMode::Map.stores_pairs());
        assert!(!LineageMode::Blackbox.stores_pairs());
        assert_eq!(LineageMode::ALL.len(), 5);
        assert_eq!(LineageMode::Comp.to_string(), "comp");
    }

    #[test]
    fn region_pair_accessors() {
        let full = RegionPair::Full {
            outcells: vec![Coord::d2(0, 0), Coord::d2(0, 1)],
            incells: vec![vec![Coord::d2(1, 1)], vec![Coord::d2(2, 2), Coord::d2(2, 3)]],
        };
        assert_eq!(full.outcells().len(), 2);
        assert_eq!(full.num_cells(), 5);
        assert_eq!(full.payload_len(), 0);

        let pay = RegionPair::Payload {
            outcells: vec![Coord::d2(0, 0)],
            payload: vec![3],
        };
        assert_eq!(pay.outcells(), &[Coord::d2(0, 0)]);
        assert_eq!(pay.num_cells(), 1);
        assert_eq!(pay.payload_len(), 1);
    }

    #[test]
    fn buffer_sink_collects_in_order() {
        let mut sink = BufferSink::new();
        assert!(sink.is_empty());
        sink.lwrite(vec![Coord::d1(0)], vec![vec![Coord::d1(1)]]);
        sink.lwrite_payload(vec![Coord::d1(2)], vec![9, 9]);
        assert_eq!(sink.len(), 2);
        assert!(matches!(sink.pairs[0], RegionPair::Full { .. }));
        assert!(matches!(sink.pairs[1], RegionPair::Payload { .. }));
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.lwrite(vec![Coord::d1(0)], vec![]);
        sink.lwrite_payload(vec![Coord::d1(0)], vec![1]);
        // Nothing observable; the test simply exercises the no-op paths.
    }
}
