//! Deriving lineage-query traversals from the workflow DAG.
//!
//! A lineage query names *where it starts* (cells of some array) and *where
//! it should end* (another array); which operators lie between the two is a
//! property of the workflow specification, not something the caller should
//! hand-assemble.  This module derives it:
//!
//! * [`backward_plan`] / [`forward_plan`] build a [`TracePlan`] — the pruned
//!   sub-DAG between the two endpoints, as an ordered edge list.  At a DAG
//!   join the plan *fans out over every path* and the executor unions the
//!   per-branch intermediates before descending further, so each operator on
//!   the sub-DAG is traversed exactly once no matter how many paths cross it.
//! * [`backward_paths`] / [`forward_paths`] enumerate the individual
//!   root-to-destination paths as explicit `(operator, input index)` step
//!   vectors — the legacy single-path query format.  Because every step of a
//!   lineage query distributes over unions of query cells, executing a
//!   [`TracePlan`] is equivalent to running each enumerated path separately
//!   and unioning the answers (the parity tests assert exactly this).

use std::collections::HashMap;
use std::fmt;

use crate::workflow::{InputSource, OpId, Workflow};

/// One traversal step: operator `op` crossed through its `input_idx`'th
/// input edge.
pub type Edge = (OpId, usize);

/// An array of the workflow: either the output of an operator or a named
/// external input.  Both query endpoints are arrays.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ArrayNode {
    /// The output array of an operator.
    Output(OpId),
    /// A named external input array.
    External(String),
}

impl ArrayNode {
    /// The output of operator `op`.
    pub fn output(op: OpId) -> Self {
        ArrayNode::Output(op)
    }

    /// The external array named `name`.
    pub fn external(name: impl Into<String>) -> Self {
        ArrayNode::External(name.into())
    }
}

impl fmt::Display for ArrayNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayNode::Output(op) => write!(f, "output of operator {op}"),
            ArrayNode::External(name) => write!(f, "external array '{name}'"),
        }
    }
}

/// Errors detected while deriving a traversal from the DAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// An endpoint referenced an operator id not present in the workflow.
    UnknownOperator(OpId),
    /// An endpoint referenced an external array the workflow does not read.
    UnknownSource(String),
    /// No directed path connects the endpoints in the requested direction.
    NoPath {
        /// The array the traversal starts from.
        from: ArrayNode,
        /// The array the traversal should reach.
        to: ArrayNode,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::UnknownOperator(op) => write!(f, "no operator with id {op}"),
            PathError::UnknownSource(name) => {
                write!(f, "workflow reads no external array named '{name}'")
            }
            PathError::NoPath { from, to } => {
                write!(f, "no workflow path from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// The pruned, ordered traversal between two arrays of one workflow.
///
/// `edges` lists every `(operator, input index)` edge on *any* path between
/// the endpoints, ordered so that an executor visiting them in sequence has
/// always fully accumulated an operator's intermediate before crossing it
/// (reverse-topological for backward traversals, topological for forward
/// ones).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracePlan {
    /// The array the query cells start on.
    pub from: ArrayNode,
    /// The array the answer cells land on.
    pub to: ArrayNode,
    /// The traversal edges, in execution order.
    pub edges: Vec<Edge>,
}

impl TracePlan {
    /// The distinct operators the plan traverses, in execution order.
    pub fn ops(&self) -> Vec<OpId> {
        let mut out = Vec::new();
        for &(op, _) in &self.edges {
            if !out.contains(&op) {
                out.push(op);
            }
        }
        out
    }
}

fn check_op(wf: &Workflow, op: OpId) -> Result<(), PathError> {
    wf.node(op)
        .map(|_| ())
        .map_err(|_| PathError::UnknownOperator(op))
}

fn check_end(wf: &Workflow, end: &ArrayNode) -> Result<(), PathError> {
    match end {
        ArrayNode::Output(op) => check_op(wf, *op),
        ArrayNode::External(name) => {
            if wf.external_inputs().contains(&name.as_str()) {
                Ok(())
            } else {
                Err(PathError::UnknownSource(name.clone()))
            }
        }
    }
}

/// Whether `src` is the destination array `to`.
fn is_dest(src: &InputSource, to: &ArrayNode) -> bool {
    match (src, to) {
        (InputSource::Operator(q), ArrayNode::Output(t)) => q == t,
        (InputSource::External(n), ArrayNode::External(t)) => n == t,
        _ => false,
    }
}

/// Per-operator flag: does any input chain of `op` lead to `to`?
/// Computed in one topological pass.
fn reaches_backward(wf: &Workflow, to: &ArrayNode) -> HashMap<OpId, bool> {
    let mut reaches: HashMap<OpId, bool> = HashMap::new();
    for &op in wf.topo_order() {
        let node = wf.node(op).expect("topo ids are valid");
        let hit = node.inputs.iter().any(|src| {
            is_dest(src, to)
                || matches!(src, InputSource::Operator(q)
                    if reaches.get(q).copied().unwrap_or(false))
        });
        reaches.insert(op, hit);
    }
    reaches
}

/// Derives the backward traversal from the output of `from` to the array
/// `to`.
///
/// The plan's edges are in reverse-topological order restricted to operators
/// that both (a) receive query cells flowing down from `from` and (b) lie on
/// some chain reaching `to`; each included edge either lands on `to` itself
/// or descends into another plan operator.
pub fn backward_plan(wf: &Workflow, from: OpId, to: &ArrayNode) -> Result<TracePlan, PathError> {
    check_op(wf, from)?;
    check_end(wf, to)?;
    let reaches = reaches_backward(wf, to);
    if !reaches.get(&from).copied().unwrap_or(false) {
        return Err(PathError::NoPath {
            from: ArrayNode::Output(from),
            to: to.clone(),
        });
    }
    // Walk ops in reverse topo order; an op joins the plan when query cells
    // reach it (it is `from`, or a plan edge descends into its output).
    let mut on_plan: HashMap<OpId, bool> = HashMap::new();
    on_plan.insert(from, true);
    let mut edges = Vec::new();
    for &op in wf.topo_order().iter().rev() {
        if !on_plan.get(&op).copied().unwrap_or(false) {
            continue;
        }
        let node = wf.node(op).expect("topo ids are valid");
        for (idx, src) in node.inputs.iter().enumerate() {
            if is_dest(src, to) {
                edges.push((op, idx));
            } else if let InputSource::Operator(q) = src {
                if reaches.get(q).copied().unwrap_or(false) {
                    edges.push((op, idx));
                    on_plan.insert(*q, true);
                }
            }
        }
    }
    Ok(TracePlan {
        from: ArrayNode::Output(from),
        to: to.clone(),
        edges,
    })
}

/// Derives one backward plan per external array reachable from `from` — the
/// full-workflow trace.  Sources are returned in the order the workflow
/// declares them.
pub fn backward_source_plans(
    wf: &Workflow,
    from: OpId,
) -> Result<Vec<(String, TracePlan)>, PathError> {
    check_op(wf, from)?;
    let mut out = Vec::new();
    for name in wf.external_inputs() {
        match backward_plan(wf, from, &ArrayNode::external(name)) {
            Ok(plan) => out.push((name.to_string(), plan)),
            Err(PathError::NoPath { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Whether `src` is the forward-traversal origin array `from`.
fn is_origin(src: &InputSource, from: &ArrayNode) -> bool {
    is_dest(src, from)
}

/// Derives the forward traversal from the array `from` to the output of
/// `to`: edges in topological order over operators that are both fed
/// (transitively) by `from` and feed (transitively) into `to`.
pub fn forward_plan(wf: &Workflow, from: &ArrayNode, to: OpId) -> Result<TracePlan, PathError> {
    check_end(wf, from)?;
    check_op(wf, to)?;
    // fed[op]: does `from` flow into some input chain of op?
    let mut fed: HashMap<OpId, bool> = HashMap::new();
    for &op in wf.topo_order() {
        let node = wf.node(op).expect("topo ids are valid");
        let hit = node.inputs.iter().any(|src| {
            is_origin(src, from)
                || matches!(src, InputSource::Operator(q)
                    if fed.get(q).copied().unwrap_or(false))
        });
        fed.insert(op, hit);
    }
    if !fed.get(&to).copied().unwrap_or(false) {
        return Err(PathError::NoPath {
            from: from.clone(),
            to: ArrayNode::Output(to),
        });
    }
    // leads[op]: does op's output flow into `to` (or is it `to`)?
    let mut leads: HashMap<OpId, bool> = HashMap::new();
    for &op in wf.topo_order().iter().rev() {
        let hit = op == to
            || wf
                .consumers(op)
                .iter()
                .any(|(c, _)| leads.get(c).copied().unwrap_or(false));
        leads.insert(op, hit);
    }
    let on_plan = |op: OpId| {
        fed.get(&op).copied().unwrap_or(false) && leads.get(&op).copied().unwrap_or(false)
    };
    let mut edges = Vec::new();
    for &op in wf.topo_order() {
        if !on_plan(op) {
            continue;
        }
        let node = wf.node(op).expect("topo ids are valid");
        for (idx, src) in node.inputs.iter().enumerate() {
            let carries =
                is_origin(src, from) || matches!(src, InputSource::Operator(q) if on_plan(*q));
            if carries {
                edges.push((op, idx));
            }
        }
    }
    Ok(TracePlan {
        from: from.clone(),
        to: ArrayNode::Output(to),
        edges,
    })
}

/// Enumerates every individual backward path from the output of `from` to
/// `to` as explicit step vectors (legacy [`LineageQuery`-style] paths).
/// Exponential in pathological DAGs; meant for parity tests and small
/// workflows — executors should use [`backward_plan`].
///
/// [`LineageQuery`-style]: TracePlan
pub fn backward_paths(
    wf: &Workflow,
    from: OpId,
    to: &ArrayNode,
) -> Result<Vec<Vec<Edge>>, PathError> {
    let plan = backward_plan(wf, from, to)?;
    let reaches = reaches_backward(wf, to);
    let mut out = Vec::new();
    let mut stack = Vec::new();
    fn dfs(
        wf: &Workflow,
        op: OpId,
        to: &ArrayNode,
        reaches: &HashMap<OpId, bool>,
        stack: &mut Vec<Edge>,
        out: &mut Vec<Vec<Edge>>,
    ) {
        let node = wf.node(op).expect("plan ids are valid");
        for (idx, src) in node.inputs.iter().enumerate() {
            stack.push((op, idx));
            if is_dest(src, to) {
                out.push(stack.clone());
            } else if let InputSource::Operator(q) = src {
                if reaches.get(q).copied().unwrap_or(false) {
                    dfs(wf, *q, to, reaches, stack, out);
                }
            }
            stack.pop();
        }
    }
    dfs(wf, from, to, &reaches, &mut stack, &mut out);
    debug_assert!(!out.is_empty(), "plan existed: {plan:?}");
    Ok(out)
}

/// Enumerates every individual forward path from the array `from` to the
/// output of `to` as explicit step vectors.  See [`backward_paths`] for the
/// intended use.
pub fn forward_paths(
    wf: &Workflow,
    from: &ArrayNode,
    to: OpId,
) -> Result<Vec<Vec<Edge>>, PathError> {
    let plan = forward_plan(wf, from, to)?;
    let plan_ops = plan.ops();
    let mut out = Vec::new();
    // DFS over plan operators, extending paths toward `to`.
    fn dfs(
        wf: &Workflow,
        op: OpId,
        to: OpId,
        plan_ops: &[OpId],
        stack: &mut Vec<Edge>,
        out: &mut Vec<Vec<Edge>>,
    ) {
        if op == to {
            out.push(stack.clone());
            return;
        }
        for (consumer, idx) in wf.consumers(op) {
            if plan_ops.contains(&consumer) {
                stack.push((consumer, idx));
                dfs(wf, consumer, to, plan_ops, stack, out);
                stack.pop();
            }
        }
    }
    // Start edges: every plan operator reading `from` directly.
    for &op in &plan_ops {
        let node = wf.node(op).expect("plan ids are valid");
        for (idx, src) in node.inputs.iter().enumerate() {
            if is_origin(src, from) {
                let mut stack = vec![(op, idx)];
                dfs(wf, op, to, &plan_ops, &mut stack, &mut out);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::{LineageMode, LineageSink};
    use crate::operator::Operator;
    use std::sync::Arc;
    use subzero_array::{Array, ArrayRef, Shape};

    struct Dummy(String, usize);

    impl Dummy {
        fn arc(name: &str, inputs: usize) -> Arc<dyn Operator> {
            Arc::new(Dummy(name.to_string(), inputs))
        }
    }

    impl Operator for Dummy {
        fn name(&self) -> &str {
            &self.0
        }
        fn num_inputs(&self) -> usize {
            self.1
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(&self, inputs: &[ArrayRef], _m: &[LineageMode], _s: &mut dyn LineageSink) -> Array {
            (*inputs[0]).clone()
        }
    }

    /// ext -> a -> {b, c} -> d  (diamond), plus a stray sink e off c.
    fn diamond() -> Workflow {
        let mut b = Workflow::builder("diamond");
        let a = b.add_source(Dummy::arc("a", 1), "ext");
        let b1 = b.add_unary(Dummy::arc("b", 1), a);
        let c = b.add_unary(Dummy::arc("c", 1), a);
        let d = b.add_binary(Dummy::arc("d", 2), b1, c);
        let _e = b.add_unary(Dummy::arc("e", 1), c);
        let _ = d;
        b.build().unwrap()
    }

    #[test]
    fn backward_plan_fans_out_over_diamond_joins() {
        let wf = diamond();
        let plan = backward_plan(&wf, 3, &ArrayNode::external("ext")).unwrap();
        // d descends into both b and c, which both descend into a, which
        // lands on ext; the stray sink e is pruned.
        let mut edges = plan.edges.clone();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1)]);
        // Edges are reverse-topological: d's edges precede b's and c's.
        let pos = |e: Edge| plan.edges.iter().position(|&x| x == e).unwrap();
        assert!(pos((3, 0)) < pos((1, 0)));
        assert!(pos((3, 1)) < pos((2, 0)));
    }

    #[test]
    fn backward_plan_to_operator_output_stops_there() {
        let wf = diamond();
        let plan = backward_plan(&wf, 3, &ArrayNode::output(0)).unwrap();
        // Stops at a's output: a itself is not traversed.
        let mut edges = plan.edges.clone();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 0), (2, 0), (3, 0), (3, 1)]);
    }

    #[test]
    fn backward_paths_enumerate_each_branch() {
        let wf = diamond();
        let mut paths = backward_paths(&wf, 3, &ArrayNode::external("ext")).unwrap();
        paths.sort();
        assert_eq!(
            paths,
            vec![vec![(3, 0), (1, 0), (0, 0)], vec![(3, 1), (2, 0), (0, 0)],]
        );
    }

    #[test]
    fn forward_plan_and_paths_mirror_backward() {
        let wf = diamond();
        let plan = forward_plan(&wf, &ArrayNode::external("ext"), 3).unwrap();
        let mut edges = plan.edges.clone();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1)]);
        // Topological: a's edge precedes b's and c's, which precede d's.
        let pos = |e: Edge| plan.edges.iter().position(|&x| x == e).unwrap();
        assert!(pos((0, 0)) < pos((1, 0)) && pos((1, 0)) < pos((3, 0)));
        assert!(pos((2, 0)) < pos((3, 1)));
        let mut paths = forward_paths(&wf, &ArrayNode::external("ext"), 3).unwrap();
        paths.sort();
        assert_eq!(
            paths,
            vec![vec![(0, 0), (1, 0), (3, 0)], vec![(0, 0), (2, 0), (3, 1)],]
        );
        // Forward from a's output: a itself is not traversed.
        let plan = forward_plan(&wf, &ArrayNode::output(0), 4).unwrap();
        assert_eq!(plan.edges, vec![(2, 0), (4, 0)]);
    }

    #[test]
    fn source_plans_cover_each_external() {
        let mut b = Workflow::builder("two-src");
        let x = b.add_source(Dummy::arc("x", 1), "left");
        let y = b.add_source(Dummy::arc("y", 1), "right");
        let _m = b.add_binary(Dummy::arc("m", 2), x, y);
        let wf = b.build().unwrap();
        let plans = backward_source_plans(&wf, 2).unwrap();
        let names: Vec<&str> = plans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["left", "right"]);
        assert_eq!(plans[0].1.edges, vec![(2, 0), (0, 0)]);
        assert_eq!(plans[1].1.edges, vec![(2, 1), (1, 0)]);
        // y cannot reach "left".
        assert!(matches!(
            backward_plan(&wf, 1, &ArrayNode::external("left")),
            Err(PathError::NoPath { .. })
        ));
    }

    #[test]
    fn endpoint_errors() {
        let wf = diamond();
        assert_eq!(
            backward_plan(&wf, 99, &ArrayNode::external("ext")).unwrap_err(),
            PathError::UnknownOperator(99)
        );
        assert_eq!(
            backward_plan(&wf, 3, &ArrayNode::external("nope")).unwrap_err(),
            PathError::UnknownSource("nope".to_string())
        );
        assert!(matches!(
            forward_plan(&wf, &ArrayNode::output(3), 0),
            Err(PathError::NoPath { .. })
        ));
        assert!(PathError::UnknownOperator(7).to_string().contains('7'));
        assert!(ArrayNode::external("ext").to_string().contains("ext"));
    }

    #[test]
    fn same_upstream_at_two_inputs_yields_two_edges() {
        let mut b = Workflow::builder("double");
        let a = b.add_source(Dummy::arc("a", 1), "ext");
        let _sq = b.add_binary(Dummy::arc("sq", 2), a, a);
        let wf = b.build().unwrap();
        let plan = backward_plan(&wf, 1, &ArrayNode::external("ext")).unwrap();
        assert_eq!(plan.edges, vec![(1, 0), (1, 1), (0, 0)]);
        let paths = backward_paths(&wf, 1, &ArrayNode::external("ext")).unwrap();
        assert_eq!(paths.len(), 2);
    }
}
