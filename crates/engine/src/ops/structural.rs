//! Structural operators: transpose, slicing and concatenation.
//!
//! These are mapping operators whose lineage depends only on coordinates and
//! on simple shape metadata.  `Concat` is also the paper's example of an
//! operator for which the *entire-array* optimization would be incorrect
//! (each input's forward lineage is only part of the output), so it must not
//! be annotated `all_to_all`.

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};
use crate::operator::{OpMeta, Operator};

/// 2-D matrix transpose.
#[derive(Debug, Clone, Default)]
pub struct Transpose;

impl Operator for Transpose {
    fn name(&self) -> &str {
        "transpose"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0].transpose2()
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let out_shape = input.shape().transpose2();
        let mut out = Array::zeros(out_shape);
        for (c, v) in input.iter() {
            out.set(&c.transpose2(), v);
        }
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in input.iter() {
                sink.lwrite(vec![c.transpose2()], vec![vec![c]]);
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![outcell.transpose2()])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![incell.transpose2()])
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // A permutation of cells: whole array maps to whole array.
        true
    }
}

/// Extracts the inclusive rectangular window `[lo, hi]` from its input.
#[derive(Debug, Clone)]
pub struct SliceOp {
    lo: Coord,
    hi: Coord,
    name: String,
}

impl SliceOp {
    /// Creates a slice operator with inclusive corners.
    pub fn new(lo: Coord, hi: Coord) -> Self {
        SliceOp {
            name: format!("slice({lo}..{hi})"),
            lo,
            hi,
        }
    }
}

impl Operator for SliceOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, _input_shapes: &[Shape]) -> Shape {
        let dims: Vec<u32> = self
            .lo
            .as_slice()
            .iter()
            .zip(self.hi.as_slice())
            .map(|(&l, &h)| h - l + 1)
            .collect();
        Shape::new(&dims)
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let out = input
            .slice(&self.lo, &self.hi)
            .expect("slice window must be inside the input array");
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in out.iter() {
                let src: Vec<u32> = c
                    .as_slice()
                    .iter()
                    .zip(self.lo.as_slice())
                    .map(|(&o, &l)| o + l)
                    .collect();
                sink.lwrite(vec![c], vec![vec![Coord::new(&src)]]);
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        let src: Vec<u32> = outcell
            .as_slice()
            .iter()
            .zip(self.lo.as_slice())
            .map(|(&o, &l)| o + l)
            .collect();
        Some(vec![Coord::new(&src)])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        // Input cells outside the window have no forward lineage.
        let mut vals = Vec::with_capacity(incell.ndim());
        for d in 0..incell.ndim() {
            let v = incell.get(d);
            if v < self.lo.get(d) || v > self.hi.get(d) {
                return Some(vec![]);
            }
            vals.push(v - self.lo.get(d));
        }
        Some(vec![Coord::new(&vals)])
    }

    fn spans_entire_array(&self, _input_idx: usize, backward: bool) -> bool {
        // The entire input covers the entire (smaller) output, but the
        // backward lineage of the entire output is only the window — not the
        // whole input — so the optimization is only safe going forward.
        !backward
    }
}

/// Concatenates two arrays along `axis`.
#[derive(Debug, Clone)]
pub struct Concat {
    axis: usize,
    name: String,
}

impl Concat {
    /// Creates a concatenation operator along the given axis.
    pub fn new(axis: usize) -> Self {
        Concat {
            name: format!("concat(axis={axis})"),
            axis,
        }
    }
}

impl Operator for Concat {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        let a = input_shapes[0];
        let b = input_shapes[1];
        let dims: Vec<u32> = (0..a.ndim())
            .map(|d| {
                if d == self.axis {
                    a.dim(d) + b.dim(d)
                } else {
                    a.dim(d)
                }
            })
            .collect();
        Shape::new(&dims)
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let (a, b) = (&inputs[0], &inputs[1]);
        let out_shape = self.output_shape(&[a.shape(), b.shape()]);
        let split = a.shape().dim(self.axis);
        let mut out = Array::zeros(out_shape);
        for (c, v) in a.iter() {
            out.set(&c, v);
        }
        for (c, v) in b.iter() {
            out.set(&c.with(self.axis, c.get(self.axis) + split), v);
        }
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in a.iter() {
                sink.lwrite(vec![c], vec![vec![c], vec![]]);
            }
            for (c, _) in b.iter() {
                let oc = c.with(self.axis, c.get(self.axis) + split);
                sink.lwrite(vec![oc], vec![vec![], vec![c]]);
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, input_idx: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        let split = meta.input_shape(0).dim(self.axis);
        let v = outcell.get(self.axis);
        match (input_idx, v < split) {
            (0, true) => Some(vec![*outcell]),
            (1, false) => Some(vec![outcell.with(self.axis, v - split)]),
            _ => Some(vec![]),
        }
    }

    fn map_forward(&self, incell: &Coord, input_idx: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        let split = meta.input_shape(0).dim(self.axis);
        match input_idx {
            0 => Some(vec![*incell]),
            1 => Some(vec![incell.with(self.axis, incell.get(self.axis) + split)]),
            _ => Some(vec![]),
        }
    }

    fn spans_entire_array(&self, _input_idx: usize, backward: bool) -> bool {
        // The paper's §VI-C counterexample: an input's forward lineage is
        // only part of the concatenated output, so the optimization is only
        // safe going backward (the whole output does cover each whole input).
        backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use std::sync::Arc;

    fn arr(vals: &[Vec<f64>]) -> ArrayRef {
        Arc::new(Array::from_rows(vals))
    }

    #[test]
    fn transpose_values_and_mapping() {
        let op = Transpose;
        let input = arr(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.shape(), Shape::d2(3, 2));
        assert_eq!(out.get(&Coord::d2(2, 1)), 6.0);
        let meta = OpMeta::new(vec![Shape::d2(2, 3)], Shape::d2(3, 2));
        assert_eq!(
            op.map_backward(&Coord::d2(2, 1), 0, &meta),
            Some(vec![Coord::d2(1, 2)])
        );
        assert_eq!(
            op.map_forward(&Coord::d2(1, 2), 0, &meta),
            Some(vec![Coord::d2(2, 1)])
        );
    }

    #[test]
    fn transpose_full_lineage_matches_mapping() {
        let op = Transpose;
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 2.0], vec![3.0, 4.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 4);
        for p in &sink.pairs {
            if let crate::lineage::RegionPair::Full { outcells, incells } = p {
                assert_eq!(outcells[0], incells[0][0].transpose2());
            }
        }
    }

    #[test]
    fn slice_values_and_mapping() {
        let op = SliceOp::new(Coord::d2(1, 1), Coord::d2(2, 2));
        let input = arr(&[
            vec![0.0, 1.0, 2.0],
            vec![3.0, 4.0, 5.0],
            vec![6.0, 7.0, 8.0],
        ]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.shape(), Shape::d2(2, 2));
        assert_eq!(out.get(&Coord::d2(0, 0)), 4.0);
        assert_eq!(out.get(&Coord::d2(1, 1)), 8.0);

        let meta = OpMeta::new(vec![Shape::d2(3, 3)], Shape::d2(2, 2));
        assert_eq!(
            op.map_backward(&Coord::d2(0, 1), 0, &meta),
            Some(vec![Coord::d2(1, 2)])
        );
        assert_eq!(
            op.map_forward(&Coord::d2(2, 2), 0, &meta),
            Some(vec![Coord::d2(1, 1)])
        );
        assert_eq!(op.map_forward(&Coord::d2(0, 0), 0, &meta), Some(vec![]));
    }

    #[test]
    fn slice_output_shape_independent_of_input_shape() {
        let op = SliceOp::new(Coord::d2(2, 3), Coord::d2(5, 9));
        assert_eq!(op.output_shape(&[Shape::d2(100, 100)]), Shape::d2(4, 7));
    }

    #[test]
    fn concat_axis0_values_and_mapping() {
        let op = Concat::new(0);
        let a = arr(&[vec![1.0, 2.0]]);
        let b = arr(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let out = op.run(
            &[Arc::clone(&a), Arc::clone(&b)],
            &[LineageMode::Blackbox],
            &mut BufferSink::new(),
        );
        assert_eq!(out.shape(), Shape::d2(3, 2));
        assert_eq!(out.get(&Coord::d2(0, 1)), 2.0);
        assert_eq!(out.get(&Coord::d2(2, 0)), 5.0);

        let meta = OpMeta::new(vec![Shape::d2(1, 2), Shape::d2(2, 2)], Shape::d2(3, 2));
        // Output row 0 comes from input 0; rows 1-2 come from input 1.
        assert_eq!(
            op.map_backward(&Coord::d2(0, 1), 0, &meta),
            Some(vec![Coord::d2(0, 1)])
        );
        assert_eq!(op.map_backward(&Coord::d2(0, 1), 1, &meta), Some(vec![]));
        assert_eq!(op.map_backward(&Coord::d2(2, 0), 0, &meta), Some(vec![]));
        assert_eq!(
            op.map_backward(&Coord::d2(2, 0), 1, &meta),
            Some(vec![Coord::d2(1, 0)])
        );
        assert_eq!(
            op.map_forward(&Coord::d2(1, 1), 1, &meta),
            Some(vec![Coord::d2(2, 1)])
        );
        // Concat must never be treated as all-to-all (paper §VI-C).
        assert!(!op.all_to_all());
    }

    #[test]
    fn concat_axis1() {
        let op = Concat::new(1);
        let a = arr(&[vec![1.0], vec![2.0]]);
        let b = arr(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let out = op.run(&[a, b], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.shape(), Shape::d2(2, 3));
        assert_eq!(out.get(&Coord::d2(1, 0)), 2.0);
        assert_eq!(out.get(&Coord::d2(1, 2)), 6.0);
    }

    #[test]
    fn concat_full_lineage_covers_every_output_cell() {
        let op = Concat::new(0);
        let mut sink = BufferSink::new();
        let a = arr(&[vec![1.0, 2.0]]);
        let b = arr(&[vec![3.0, 4.0]]);
        op.run(&[a, b], &[LineageMode::Full], &mut sink);
        assert_eq!(sink.len(), 4);
    }
}
