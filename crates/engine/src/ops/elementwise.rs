//! Element-wise (one-to-one) operators.
//!
//! These are the simplest *mapping operators* in the paper's terminology: an
//! output cell depends only on the input cell(s) at the same coordinate,
//! regardless of the value, so lineage never needs to be stored — `map_b` and
//! `map_f` are the identity on coordinates.

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};
use crate::operator::{OpMeta, Operator};

/// The unary element-wise transformations supported by [`Elementwise1`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum UnaryKind {
    /// Multiply every cell by a constant.
    Scale(f64),
    /// Add a constant to every cell.
    Offset(f64),
    /// Absolute value.
    Abs,
    /// Square root (of the absolute value, to stay total).
    Sqrt,
    /// `ln(1 + |x|)` — a total logarithm used for dynamic-range compression.
    Log1p,
    /// Negation.
    Negate,
    /// Square.
    Square,
    /// Clamp into `[lo, hi]`.
    Clamp(f64, f64),
    /// Binary threshold: 1.0 if the value exceeds the constant, else 0.0.
    Threshold(f64),
}

impl UnaryKind {
    fn apply(&self, v: f64) -> f64 {
        match *self {
            UnaryKind::Scale(k) => v * k,
            UnaryKind::Offset(k) => v + k,
            UnaryKind::Abs => v.abs(),
            UnaryKind::Sqrt => v.abs().sqrt(),
            UnaryKind::Log1p => (1.0 + v.abs()).ln(),
            UnaryKind::Negate => -v,
            UnaryKind::Square => v * v,
            UnaryKind::Clamp(lo, hi) => v.clamp(lo, hi),
            UnaryKind::Threshold(t) => {
                if v > t {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn name(&self) -> String {
        match self {
            UnaryKind::Scale(k) => format!("scale({k})"),
            UnaryKind::Offset(k) => format!("offset({k})"),
            UnaryKind::Abs => "abs".to_string(),
            UnaryKind::Sqrt => "sqrt".to_string(),
            UnaryKind::Log1p => "log1p".to_string(),
            UnaryKind::Negate => "negate".to_string(),
            UnaryKind::Square => "square".to_string(),
            UnaryKind::Clamp(lo, hi) => format!("clamp({lo},{hi})"),
            UnaryKind::Threshold(t) => format!("threshold({t})"),
        }
    }
}

/// A single-input element-wise operator.
#[derive(Debug, Clone)]
pub struct Elementwise1 {
    kind: UnaryKind,
    name: String,
}

impl Elementwise1 {
    /// Creates an element-wise operator of the given kind.
    pub fn new(kind: UnaryKind) -> Self {
        Elementwise1 {
            name: kind.name(),
            kind,
        }
    }
}

impl Operator for Elementwise1 {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in input.iter() {
                sink.lwrite(vec![c], vec![vec![c]]);
            }
        }
        input.map(|v| self.kind.apply(v))
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*incell])
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // One-to-one: the whole input maps to the whole output and back.
        true
    }
}

/// The binary element-wise combinations supported by [`Elementwise2`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinaryKind {
    /// Cell-wise sum.
    Add,
    /// Cell-wise difference (`left - right`).
    Subtract,
    /// Cell-wise product.
    Multiply,
    /// Cell-wise quotient (0 where the divisor is 0).
    Divide,
    /// Cell-wise minimum.
    Min,
    /// Cell-wise maximum.
    Max,
    /// Cell-wise average, used e.g. to composite two telescope exposures.
    Mean,
}

impl BinaryKind {
    fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            BinaryKind::Add => a + b,
            BinaryKind::Subtract => a - b,
            BinaryKind::Multiply => a * b,
            BinaryKind::Divide => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            BinaryKind::Min => a.min(b),
            BinaryKind::Max => a.max(b),
            BinaryKind::Mean => (a + b) / 2.0,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            BinaryKind::Add => "add",
            BinaryKind::Subtract => "subtract",
            BinaryKind::Multiply => "multiply",
            BinaryKind::Divide => "divide",
            BinaryKind::Min => "min",
            BinaryKind::Max => "max",
            BinaryKind::Mean => "mean2",
        }
    }
}

/// A two-input element-wise operator over arrays of identical shape.
#[derive(Debug, Clone)]
pub struct Elementwise2 {
    kind: BinaryKind,
}

impl Elementwise2 {
    /// Creates a binary element-wise operator of the given kind.
    pub fn new(kind: BinaryKind) -> Self {
        Elementwise2 { kind }
    }
}

impl Operator for Elementwise2 {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let (a, b) = (&inputs[0], &inputs[1]);
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in a.iter() {
                sink.lwrite(vec![c], vec![vec![c], vec![c]]);
            }
        }
        a.zip_with(b, |x, y| self.kind.apply(x, y))
            .expect("binary element-wise operators require equal input shapes")
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*outcell])
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![*incell])
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // One-to-one: the whole input maps to the whole output and back.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use crate::operator::OperatorExt;
    use std::sync::Arc;

    fn arr(vals: &[Vec<f64>]) -> ArrayRef {
        Arc::new(Array::from_rows(vals))
    }

    #[test]
    fn unary_kinds_compute_expected_values() {
        let cases: Vec<(UnaryKind, f64, f64)> = vec![
            (UnaryKind::Scale(2.0), 3.0, 6.0),
            (UnaryKind::Offset(1.5), 3.0, 4.5),
            (UnaryKind::Abs, -3.0, 3.0),
            (UnaryKind::Sqrt, 9.0, 3.0),
            (UnaryKind::Negate, 2.0, -2.0),
            (UnaryKind::Square, -3.0, 9.0),
            (UnaryKind::Clamp(0.0, 1.0), 4.0, 1.0),
            (UnaryKind::Clamp(0.0, 1.0), -4.0, 0.0),
            (UnaryKind::Threshold(2.0), 3.0, 1.0),
            (UnaryKind::Threshold(2.0), 1.0, 0.0),
        ];
        for (kind, input, expected) in cases {
            let op = Elementwise1::new(kind);
            let a = arr(&[vec![input]]);
            let out = op.run(&[a], &[LineageMode::Blackbox], &mut BufferSink::new());
            assert_eq!(out.get(&Coord::d2(0, 0)), expected, "kind {kind:?}");
        }
        // Log1p is monotone and total.
        let op = Elementwise1::new(UnaryKind::Log1p);
        let out = op.run(
            &[arr(&[vec![0.0, -10.0]])],
            &[LineageMode::Blackbox],
            &mut BufferSink::new(),
        );
        assert_eq!(out.get(&Coord::d2(0, 0)), 0.0);
        assert!(out.get(&Coord::d2(0, 1)) > 2.0);
    }

    #[test]
    fn unary_mapping_is_identity() {
        let op = Elementwise1::new(UnaryKind::Abs);
        let meta = OpMeta::new(vec![Shape::d2(4, 4)], Shape::d2(4, 4));
        let c = Coord::d2(2, 3);
        assert_eq!(op.map_backward(&c, 0, &meta), Some(vec![c]));
        assert_eq!(op.map_forward(&c, 0, &meta), Some(vec![c]));
        assert!(op.is_mapping());
        assert!(!op.all_to_all());
    }

    #[test]
    fn unary_full_mode_emits_identity_pairs() {
        let op = Elementwise1::new(UnaryKind::Scale(3.0));
        let mut sink = BufferSink::new();
        let input = arr(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        op.run(&[input], &[LineageMode::Full], &mut sink);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn binary_kinds_compute_expected_values() {
        let cases: Vec<(BinaryKind, f64, f64, f64)> = vec![
            (BinaryKind::Add, 2.0, 3.0, 5.0),
            (BinaryKind::Subtract, 2.0, 3.0, -1.0),
            (BinaryKind::Multiply, 2.0, 3.0, 6.0),
            (BinaryKind::Divide, 6.0, 3.0, 2.0),
            (BinaryKind::Divide, 6.0, 0.0, 0.0),
            (BinaryKind::Min, 2.0, 3.0, 2.0),
            (BinaryKind::Max, 2.0, 3.0, 3.0),
            (BinaryKind::Mean, 2.0, 4.0, 3.0),
        ];
        for (kind, a, b, expected) in cases {
            let op = Elementwise2::new(kind);
            let out = op.run(
                &[arr(&[vec![a]]), arr(&[vec![b]])],
                &[LineageMode::Blackbox],
                &mut BufferSink::new(),
            );
            assert_eq!(out.get(&Coord::d2(0, 0)), expected, "kind {kind:?}");
        }
    }

    #[test]
    fn binary_maps_both_inputs_identically() {
        let op = Elementwise2::new(BinaryKind::Add);
        let meta = OpMeta::new(vec![Shape::d2(4, 4), Shape::d2(4, 4)], Shape::d2(4, 4));
        let c = Coord::d2(1, 2);
        assert_eq!(op.map_backward(&c, 0, &meta), Some(vec![c]));
        assert_eq!(op.map_backward(&c, 1, &meta), Some(vec![c]));
        assert_eq!(op.map_forward(&c, 1, &meta), Some(vec![c]));
        assert_eq!(op.num_inputs(), 2);
    }

    #[test]
    fn binary_full_mode_emits_pairs_referencing_both_inputs() {
        let op = Elementwise2::new(BinaryKind::Mean);
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 2.0]]), arr(&[vec![3.0, 4.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 2);
        match &sink.pairs[0] {
            crate::lineage::RegionPair::Full { incells, .. } => assert_eq!(incells.len(), 2),
            _ => panic!("expected full pair"),
        }
    }

    #[test]
    fn operator_names_are_stable() {
        assert_eq!(Elementwise1::new(UnaryKind::Scale(2.0)).name(), "scale(2)");
        assert_eq!(
            Elementwise1::new(UnaryKind::Threshold(0.5)).name(),
            "threshold(0.5)"
        );
        assert_eq!(Elementwise2::new(BinaryKind::Mean).name(), "mean2");
    }
}
