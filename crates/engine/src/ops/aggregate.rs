//! Aggregation operators.
//!
//! Global aggregates (mean, sum, …) collapse an entire array into a single
//! cell; like matrix inversion they are all-to-all and therefore benefit from
//! the entire-array query optimization.  Axis aggregates collapse one axis
//! (e.g. per-patient or per-row statistics in the genomics workflow) and have
//! row/column-shaped lineage expressible as a mapping function.

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};
use crate::operator::{OpMeta, Operator};

/// The aggregate statistics supported by [`GlobalAggregate`] and
/// [`AxisAggregate`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AggregateKind {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Maximum value.
    Max,
    /// Minimum value.
    Min,
    /// Population standard deviation.
    Std,
}

impl AggregateKind {
    fn apply(&self, values: impl Iterator<Item = f64>) -> f64 {
        let vals: Vec<f64> = values.collect();
        if vals.is_empty() {
            return 0.0;
        }
        let n = vals.len() as f64;
        match self {
            AggregateKind::Sum => vals.iter().sum(),
            AggregateKind::Mean => vals.iter().sum::<f64>() / n,
            AggregateKind::Max => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggregateKind::Min => vals.iter().copied().fold(f64::INFINITY, f64::min),
            AggregateKind::Std => {
                let mean = vals.iter().sum::<f64>() / n;
                (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
            }
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AggregateKind::Sum => "sum",
            AggregateKind::Mean => "mean",
            AggregateKind::Max => "max",
            AggregateKind::Min => "min",
            AggregateKind::Std => "std",
        }
    }
}

/// Reduces the entire input array to a single `1×1` cell.
#[derive(Debug, Clone)]
pub struct GlobalAggregate {
    kind: AggregateKind,
    name: String,
}

impl GlobalAggregate {
    /// Creates a global aggregate of the given kind.
    pub fn new(kind: AggregateKind) -> Self {
        GlobalAggregate {
            name: format!("global_{}", kind.name()),
            kind,
        }
    }
}

impl Operator for GlobalAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, _input_shapes: &[Shape]) -> Shape {
        Shape::d2(1, 1)
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let value = self.kind.apply(input.data().iter().copied());
        let mut out = Array::zeros(Shape::d2(1, 1));
        out.set(&Coord::d2(0, 0), value);
        if cur_modes.contains(&LineageMode::Full) {
            let all: Vec<Coord> = input.shape().iter().collect();
            sink.lwrite(vec![Coord::d2(0, 0)], vec![all]);
        }
        out
    }

    fn map_backward(&self, _outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.input_shape(0).iter().collect())
    }

    fn map_forward(&self, _incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(vec![Coord::d2(0, 0)])
    }

    fn all_to_all(&self) -> bool {
        true
    }
}

/// Reduces one axis of a 2-D array: axis 1 collapses columns (producing an
/// `m×1` column of per-row statistics), axis 0 collapses rows (producing a
/// `1×n` row of per-column statistics).
#[derive(Debug, Clone)]
pub struct AxisAggregate {
    kind: AggregateKind,
    axis: usize,
    name: String,
}

impl AxisAggregate {
    /// Creates an axis aggregate.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is not 0 or 1.
    pub fn new(kind: AggregateKind, axis: usize) -> Self {
        assert!(axis < 2, "AxisAggregate supports 2-D arrays (axis 0 or 1)");
        AxisAggregate {
            name: format!("{}(axis={axis})", kind.name()),
            kind,
            axis,
        }
    }
}

impl Operator for AxisAggregate {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        let s = input_shapes[0];
        if self.axis == 1 {
            Shape::d2(s.rows(), 1)
        } else {
            Shape::d2(1, s.cols())
        }
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let out_shape = self.output_shape(&[shape]);
        let mut out = Array::zeros(out_shape);
        if self.axis == 1 {
            for r in 0..shape.rows() {
                let vals = (0..shape.cols()).map(|c| input.get(&Coord::d2(r, c)));
                out.set(&Coord::d2(r, 0), self.kind.apply(vals));
            }
        } else {
            for c in 0..shape.cols() {
                let vals = (0..shape.rows()).map(|r| input.get(&Coord::d2(r, c)));
                out.set(&Coord::d2(0, c), self.kind.apply(vals));
            }
        }
        if cur_modes.contains(&LineageMode::Full) {
            for (oc, _) in out.iter() {
                let incells = self
                    .map_backward(&oc, 0, &OpMeta::new(vec![shape], out_shape))
                    .unwrap_or_default();
                sink.lwrite(vec![oc], vec![incells]);
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        let s = meta.input_shape(0);
        Some(if self.axis == 1 {
            (0..s.cols())
                .map(|c| Coord::d2(outcell.get(0), c))
                .collect()
        } else {
            (0..s.rows())
                .map(|r| Coord::d2(r, outcell.get(1)))
                .collect()
        })
    }

    fn map_forward(&self, incell: &Coord, _i: usize, _meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(if self.axis == 1 {
            vec![Coord::d2(incell.get(0), 0)]
        } else {
            vec![Coord::d2(0, incell.get(1))]
        })
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // Every input row/column contributes to some output cell and every
        // output cell covers a full row/column of the input.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use std::sync::Arc;

    fn arr(vals: &[Vec<f64>]) -> ArrayRef {
        Arc::new(Array::from_rows(vals))
    }

    #[test]
    fn aggregate_kinds_compute_expected_values() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggregateKind::Sum.apply(vals.iter().copied()), 10.0);
        assert_eq!(AggregateKind::Mean.apply(vals.iter().copied()), 2.5);
        assert_eq!(AggregateKind::Max.apply(vals.iter().copied()), 4.0);
        assert_eq!(AggregateKind::Min.apply(vals.iter().copied()), 1.0);
        assert!((AggregateKind::Std.apply(vals.iter().copied()) - 1.118033988749895).abs() < 1e-12);
        assert_eq!(AggregateKind::Sum.apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn global_aggregate_output_and_lineage() {
        let op = GlobalAggregate::new(AggregateKind::Mean);
        let input = arr(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut sink = BufferSink::new();
        let out = op.run(&[input], &[LineageMode::Full], &mut sink);
        assert_eq!(out.shape(), Shape::d2(1, 1));
        assert_eq!(out.get(&Coord::d2(0, 0)), 2.5);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.pairs[0].num_cells(), 1 + 4);
        assert!(op.all_to_all());

        let meta = OpMeta::new(vec![Shape::d2(2, 2)], Shape::d2(1, 1));
        assert_eq!(
            op.map_backward(&Coord::d2(0, 0), 0, &meta).unwrap().len(),
            4
        );
        assert_eq!(
            op.map_forward(&Coord::d2(1, 1), 0, &meta),
            Some(vec![Coord::d2(0, 0)])
        );
    }

    #[test]
    fn axis_aggregate_rows() {
        let op = AxisAggregate::new(AggregateKind::Sum, 1);
        let input = arr(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.shape(), Shape::d2(2, 1));
        assert_eq!(out.get(&Coord::d2(0, 0)), 6.0);
        assert_eq!(out.get(&Coord::d2(1, 0)), 15.0);

        let meta = OpMeta::new(vec![Shape::d2(2, 3)], Shape::d2(2, 1));
        assert_eq!(
            op.map_backward(&Coord::d2(1, 0), 0, &meta).unwrap(),
            vec![Coord::d2(1, 0), Coord::d2(1, 1), Coord::d2(1, 2)]
        );
        assert_eq!(
            op.map_forward(&Coord::d2(1, 2), 0, &meta),
            Some(vec![Coord::d2(1, 0)])
        );
        assert!(!op.all_to_all(), "axis aggregates are not all-to-all");
    }

    #[test]
    fn axis_aggregate_columns() {
        let op = AxisAggregate::new(AggregateKind::Max, 0);
        let input = arr(&[vec![1.0, 9.0], vec![4.0, 5.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.shape(), Shape::d2(1, 2));
        assert_eq!(out.get(&Coord::d2(0, 0)), 4.0);
        assert_eq!(out.get(&Coord::d2(0, 1)), 9.0);

        let meta = OpMeta::new(vec![Shape::d2(2, 2)], Shape::d2(1, 2));
        assert_eq!(
            op.map_backward(&Coord::d2(0, 1), 0, &meta).unwrap(),
            vec![Coord::d2(0, 1), Coord::d2(1, 1)]
        );
        assert_eq!(
            op.map_forward(&Coord::d2(1, 0), 0, &meta),
            Some(vec![Coord::d2(0, 0)])
        );
    }

    #[test]
    fn axis_aggregate_full_lineage_covers_output() {
        let op = AxisAggregate::new(AggregateKind::Mean, 1);
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 2.0], vec![3.0, 4.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.pairs[0].num_cells(), 3);
    }

    #[test]
    #[should_panic(expected = "axis 0 or 1")]
    fn axis_aggregate_rejects_bad_axis() {
        let _ = AxisAggregate::new(AggregateKind::Sum, 2);
    }
}
