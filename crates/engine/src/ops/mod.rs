//! Built-in operators.
//!
//! "Most SciDB operators (e.g., matrix multiply, join, transpose,
//! convolution) are mapping operators, and we have implemented their forward
//! and backward mapping functions" (§V-A2).  This module provides the
//! equivalent built-in library: element-wise arithmetic, structural
//! operators, linear algebra, aggregation and normalisation — every one of
//! them instrumented with `map_b`/`map_f` mapping functions, and able to emit
//! full region pairs when re-run in tracing mode.

pub mod aggregate;
pub mod elementwise;
pub mod linalg;
pub mod normalize;
pub mod structural;

pub use aggregate::{AggregateKind, AxisAggregate, GlobalAggregate};
pub use elementwise::{BinaryKind, Elementwise1, Elementwise2, UnaryKind};
pub use linalg::{Convolve, MatInverse, MatMul};
pub use normalize::{ScaleToUnit, ZScore};
pub use structural::{Concat, SliceOp, Transpose};
