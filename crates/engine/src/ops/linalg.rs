//! Linear-algebra operators: matrix multiply, convolution and inversion.
//!
//! * Matrix multiply is the paper's running example of backward lineage:
//!   "the lineage of an output cell of Matrix Multiply are all cells of the
//!   corresponding row and column in the input arrays" (§IV).
//! * Convolution is the canonical neighbourhood (high-locality) operator.
//! * Matrix inversion is the canonical all-to-all operator used to motivate
//!   the *entire-array* query optimization (§VI-C).

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};
use crate::operator::{OpMeta, Operator};

/// Dense matrix multiplication: `(m×k) · (k×n) → (m×n)`.
#[derive(Debug, Clone, Default)]
pub struct MatMul;

impl Operator for MatMul {
    fn name(&self) -> &str {
        "matmul"
    }

    fn num_inputs(&self) -> usize {
        2
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        Shape::d2(input_shapes[0].rows(), input_shapes[1].cols())
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let (a, b) = (&inputs[0], &inputs[1]);
        let (m, k) = (a.shape().rows(), a.shape().cols());
        let n = b.shape().cols();
        assert_eq!(
            k,
            b.shape().rows(),
            "matmul inner dimensions must agree: {} vs {}",
            a.shape(),
            b.shape()
        );
        let mut out = Array::zeros(Shape::d2(m, n));
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0.0;
                for j in 0..k {
                    acc += a.get(&Coord::d2(r, j)) * b.get(&Coord::d2(j, c));
                }
                out.set(&Coord::d2(r, c), acc);
            }
        }
        if cur_modes.contains(&LineageMode::Full) {
            for r in 0..m {
                for c in 0..n {
                    let row: Vec<Coord> = (0..k).map(|j| Coord::d2(r, j)).collect();
                    let col: Vec<Coord> = (0..k).map(|j| Coord::d2(j, c)).collect();
                    sink.lwrite(vec![Coord::d2(r, c)], vec![row, col]);
                }
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, input_idx: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        let k = meta.input_shape(0).cols();
        let (r, c) = (outcell.get(0), outcell.get(1));
        Some(match input_idx {
            0 => (0..k).map(|j| Coord::d2(r, j)).collect(),
            1 => (0..k).map(|j| Coord::d2(j, c)).collect(),
            _ => vec![],
        })
    }

    fn map_forward(&self, incell: &Coord, input_idx: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        let out = meta.output_shape;
        Some(match input_idx {
            // A cell (r, j) of A influences the whole output row r.
            0 => (0..out.cols())
                .map(|c| Coord::d2(incell.get(0), c))
                .collect(),
            // A cell (j, c) of B influences the whole output column c.
            1 => (0..out.rows())
                .map(|r| Coord::d2(r, incell.get(1)))
                .collect(),
            _ => vec![],
        })
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // Every row/column of each input participates in the full output.
        true
    }
}

/// 2-D convolution with a `(2·radius+1)²` kernel (values outside the array
/// are treated as zero).
#[derive(Debug, Clone)]
pub struct Convolve {
    radius: u32,
    kernel: Vec<f64>,
    name: String,
}

impl Convolve {
    /// Creates a convolution with an explicit kernel of side `2*radius + 1`
    /// given in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the kernel length does not match the radius.
    pub fn new(radius: u32, kernel: Vec<f64>) -> Self {
        let side = (2 * radius + 1) as usize;
        assert_eq!(
            kernel.len(),
            side * side,
            "kernel must have {}x{} entries",
            side,
            side
        );
        Convolve {
            name: format!("convolve(r={radius})"),
            radius,
            kernel,
        }
    }

    /// A uniform box-blur kernel of the given radius.
    pub fn box_blur(radius: u32) -> Self {
        let side = (2 * radius + 1) as usize;
        let weight = 1.0 / (side * side) as f64;
        Self::new(radius, vec![weight; side * side])
    }

    /// A simple Gaussian-like smoothing kernel of the given radius.
    pub fn gaussian(radius: u32) -> Self {
        let side = (2 * radius + 1) as i64;
        let sigma = radius.max(1) as f64 / 1.5;
        let mut kernel = Vec::with_capacity((side * side) as usize);
        let mut total = 0.0;
        for dr in -(radius as i64)..=(radius as i64) {
            for dc in -(radius as i64)..=(radius as i64) {
                let w = (-((dr * dr + dc * dc) as f64) / (2.0 * sigma * sigma)).exp();
                kernel.push(w);
                total += w;
            }
        }
        for w in &mut kernel {
            *w /= total;
        }
        Self::new(radius, kernel)
    }

    /// The kernel radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }
}

impl Operator for Convolve {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let shape = input.shape();
        let r = self.radius as i64;
        let side = (2 * self.radius + 1) as usize;
        let mut out = Array::zeros(shape);
        for (c, _) in input.iter() {
            let mut acc = 0.0;
            for dr in -r..=r {
                for dc in -r..=r {
                    let kr = (dr + r) as usize;
                    let kc = (dc + r) as usize;
                    let weight = self.kernel[kr * side + kc];
                    if let Some(src) =
                        shape.checked_coord(&[c.get(0) as i64 + dr, c.get(1) as i64 + dc])
                    {
                        acc += weight * input.get(&src);
                    }
                }
            }
            out.set(&c, acc);
        }
        if cur_modes.contains(&LineageMode::Full) {
            for (c, _) in input.iter() {
                sink.lwrite(vec![c], vec![shape.neighborhood(&c, self.radius)]);
            }
        }
        out
    }

    fn map_backward(&self, outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.input_shape(0).neighborhood(outcell, self.radius))
    }

    fn map_forward(&self, incell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.output_shape.neighborhood(incell, self.radius))
    }

    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        // Neighbourhoods tile the array: whole input <-> whole output.
        true
    }
}

/// Matrix inversion via Gauss–Jordan elimination (square inputs only).
///
/// Every output cell depends on every input cell, so the operator is
/// annotated [`all_to_all`](Operator::all_to_all) and benefits from the
/// entire-array query optimization.
#[derive(Debug, Clone, Default)]
pub struct MatInverse;

impl Operator for MatInverse {
    fn name(&self) -> &str {
        "matinverse"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    #[allow(clippy::needless_range_loop)] // indexed Gauss-Jordan reads clearer
    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let n = input.shape().rows() as usize;
        assert_eq!(
            input.shape().rows(),
            input.shape().cols(),
            "matinverse requires a square matrix"
        );
        // Build an augmented [A | I] matrix and run Gauss-Jordan.  Singular
        // matrices degrade gracefully (the pivot is skipped), which is
        // acceptable: lineage, not numerics, is what matters here.
        let mut aug = vec![vec![0.0f64; 2 * n]; n];
        for r in 0..n {
            for c in 0..n {
                aug[r][c] = input.get(&Coord::d2(r as u32, c as u32));
            }
            aug[r][n + r] = 1.0;
        }
        for col in 0..n {
            // Partial pivoting.
            let pivot = (col..n).max_by(|&a, &b| {
                aug[a][col]
                    .abs()
                    .partial_cmp(&aug[b][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(pivot) = pivot else { continue };
            if aug[pivot][col].abs() < 1e-12 {
                continue;
            }
            aug.swap(col, pivot);
            let scale = aug[col][col];
            for v in aug[col].iter_mut() {
                *v /= scale;
            }
            for r in 0..n {
                if r != col {
                    let factor = aug[r][col];
                    for c in 0..2 * n {
                        aug[r][c] -= factor * aug[col][c];
                    }
                }
            }
        }
        let mut out = Array::zeros(input.shape());
        for r in 0..n {
            for c in 0..n {
                out.set(&Coord::d2(r as u32, c as u32), aug[r][n + c]);
            }
        }
        if cur_modes.contains(&LineageMode::Full) {
            // One region pair covering the whole array: every output cell
            // depends on every input cell.
            let all: Vec<Coord> = input.shape().iter().collect();
            sink.lwrite(all.clone(), vec![all]);
        }
        out
    }

    fn map_backward(&self, _outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.input_shape(0).iter().collect())
    }

    fn map_forward(&self, _incell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.output_shape.iter().collect())
    }

    fn all_to_all(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use std::sync::Arc;

    fn arr(vals: &[Vec<f64>]) -> ArrayRef {
        Arc::new(Array::from_rows(vals))
    }

    #[test]
    fn matmul_values() {
        let op = MatMul;
        let a = arr(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = arr(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let out = op.run(&[a, b], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.get(&Coord::d2(0, 0)), 19.0);
        assert_eq!(out.get(&Coord::d2(0, 1)), 22.0);
        assert_eq!(out.get(&Coord::d2(1, 0)), 43.0);
        assert_eq!(out.get(&Coord::d2(1, 1)), 50.0);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let op = MatMul;
        assert_eq!(
            op.output_shape(&[Shape::d2(3, 5), Shape::d2(5, 2)]),
            Shape::d2(3, 2)
        );
    }

    #[test]
    fn matmul_mapping_row_and_column() {
        let op = MatMul;
        let meta = OpMeta::new(vec![Shape::d2(3, 4), Shape::d2(4, 2)], Shape::d2(3, 2));
        let back0 = op.map_backward(&Coord::d2(2, 1), 0, &meta).unwrap();
        assert_eq!(back0, (0..4).map(|j| Coord::d2(2, j)).collect::<Vec<_>>());
        let back1 = op.map_backward(&Coord::d2(2, 1), 1, &meta).unwrap();
        assert_eq!(back1, (0..4).map(|j| Coord::d2(j, 1)).collect::<Vec<_>>());
        let fwd0 = op.map_forward(&Coord::d2(2, 3), 0, &meta).unwrap();
        assert_eq!(fwd0, vec![Coord::d2(2, 0), Coord::d2(2, 1)]);
        let fwd1 = op.map_forward(&Coord::d2(3, 0), 1, &meta).unwrap();
        assert_eq!(fwd1, (0..3).map(|r| Coord::d2(r, 0)).collect::<Vec<_>>());
    }

    #[test]
    fn matmul_full_lineage_pairs() {
        let op = MatMul;
        let mut sink = BufferSink::new();
        let a = arr(&[vec![1.0, 2.0]]);
        let b = arr(&[vec![3.0], vec![4.0]]);
        op.run(&[a, b], &[LineageMode::Full], &mut sink);
        assert_eq!(sink.len(), 1);
        match &sink.pairs[0] {
            crate::lineage::RegionPair::Full { outcells, incells } => {
                assert_eq!(outcells, &[Coord::d2(0, 0)]);
                assert_eq!(incells[0].len(), 2);
                assert_eq!(incells[1].len(), 2);
            }
            _ => panic!("expected full pair"),
        }
    }

    #[test]
    fn convolve_box_blur_averages_neighbourhood() {
        let op = Convolve::box_blur(1);
        let input = arr(&[
            vec![9.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        // The bright corner pixel spreads 1/9 of its value to each neighbour.
        assert!((out.get(&Coord::d2(0, 0)) - 1.0).abs() < 1e-9);
        assert!((out.get(&Coord::d2(1, 1)) - 1.0).abs() < 1e-9);
        assert_eq!(out.get(&Coord::d2(2, 2)), 0.0);
    }

    #[test]
    fn convolve_mapping_is_neighbourhood() {
        let op = Convolve::gaussian(2);
        let meta = OpMeta::new(vec![Shape::d2(10, 10)], Shape::d2(10, 10));
        let back = op.map_backward(&Coord::d2(5, 5), 0, &meta).unwrap();
        assert_eq!(back.len(), 25);
        let fwd = op.map_forward(&Coord::d2(0, 0), 0, &meta).unwrap();
        assert_eq!(fwd.len(), 9, "corner forward lineage is clipped");
    }

    #[test]
    fn convolve_full_lineage_has_one_pair_per_cell() {
        let op = Convolve::box_blur(1);
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 2.0], vec![3.0, 4.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 4);
    }

    #[test]
    #[should_panic(expected = "kernel must have")]
    fn convolve_rejects_bad_kernel() {
        let _ = Convolve::new(1, vec![1.0; 4]);
    }

    #[test]
    fn matinverse_inverts_identityish_matrix() {
        let op = MatInverse;
        let input = arr(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert!((out.get(&Coord::d2(0, 0)) - 0.5).abs() < 1e-9);
        assert!((out.get(&Coord::d2(1, 1)) - 0.25).abs() < 1e-9);
        assert!(out.get(&Coord::d2(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn matinverse_times_original_is_identity() {
        let op = MatInverse;
        let m = arr(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = op.run(
            &[Arc::clone(&m)],
            &[LineageMode::Blackbox],
            &mut BufferSink::new(),
        );
        let matmul = MatMul;
        let product = matmul.run(
            &[m, Arc::new(inv)],
            &[LineageMode::Blackbox],
            &mut BufferSink::new(),
        );
        assert!((product.get(&Coord::d2(0, 0)) - 1.0).abs() < 1e-9);
        assert!((product.get(&Coord::d2(1, 1)) - 1.0).abs() < 1e-9);
        assert!(product.get(&Coord::d2(0, 1)).abs() < 1e-9);
        assert!(product.get(&Coord::d2(1, 0)).abs() < 1e-9);
    }

    #[test]
    fn matinverse_is_all_to_all() {
        let op = MatInverse;
        assert!(op.all_to_all());
        let meta = OpMeta::new(vec![Shape::d2(3, 3)], Shape::d2(3, 3));
        assert_eq!(
            op.map_backward(&Coord::d2(0, 0), 0, &meta).unwrap().len(),
            9
        );
        assert_eq!(op.map_forward(&Coord::d2(2, 2), 0, &meta).unwrap().len(), 9);
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 0.0], vec![0.0, 1.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 1, "all-to-all emits a single region pair");
    }
}
