//! Normalisation operators.
//!
//! Normalisation couples every output cell to every input cell through a
//! global statistic (mean, standard deviation or maximum), so these operators
//! are all-to-all mapping operators, like matrix inversion.  They appear in
//! the astronomy workflow (background normalisation before detection) and the
//! genomics workflow (feature standardisation before modelling).

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};
use crate::operator::{OpMeta, Operator};

/// Z-score standardisation: `(x - mean) / std` (identity if `std == 0`).
#[derive(Debug, Clone, Default)]
pub struct ZScore;

impl Operator for ZScore {
    fn name(&self) -> &str {
        "zscore"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let mean = input.mean();
        let std = input.std_dev();
        let out = if std == 0.0 {
            input.map(|v| v - mean)
        } else {
            input.map(|v| (v - mean) / std)
        };
        if cur_modes.contains(&LineageMode::Full) {
            let all: Vec<Coord> = input.shape().iter().collect();
            sink.lwrite(all.clone(), vec![all]);
        }
        out
    }

    fn map_backward(&self, _outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.input_shape(0).iter().collect())
    }

    fn map_forward(&self, _incell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.output_shape.iter().collect())
    }

    fn all_to_all(&self) -> bool {
        true
    }
}

/// Scales every value by the global maximum absolute value so the output lies
/// in `[-1, 1]` (identity if the array is all zero).
#[derive(Debug, Clone, Default)]
pub struct ScaleToUnit;

impl Operator for ScaleToUnit {
    fn name(&self) -> &str {
        "scale_to_unit"
    }

    fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
        input_shapes[0]
    }

    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Map, LineageMode::Full, LineageMode::Blackbox]
    }

    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array {
        let input = &inputs[0];
        let max_abs = input.data().iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        let out = if max_abs == 0.0 {
            (**input).clone()
        } else {
            input.map(|v| v / max_abs)
        };
        if cur_modes.contains(&LineageMode::Full) {
            let all: Vec<Coord> = input.shape().iter().collect();
            sink.lwrite(all.clone(), vec![all]);
        }
        out
    }

    fn map_backward(&self, _outcell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.input_shape(0).iter().collect())
    }

    fn map_forward(&self, _incell: &Coord, _i: usize, meta: &OpMeta) -> Option<Vec<Coord>> {
        Some(meta.output_shape.iter().collect())
    }

    fn all_to_all(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use std::sync::Arc;

    fn arr(vals: &[Vec<f64>]) -> ArrayRef {
        Arc::new(Array::from_rows(vals))
    }

    #[test]
    fn zscore_standardises() {
        let op = ZScore;
        let input = arr(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert!((out.mean()).abs() < 1e-12);
        assert!((out.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_array_does_not_divide_by_zero() {
        let op = ZScore;
        let input = arr(&[vec![5.0, 5.0, 5.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.sum(), 0.0);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zscore_is_all_to_all_mapping() {
        let op = ZScore;
        assert!(op.all_to_all());
        let meta = OpMeta::new(vec![Shape::d2(3, 2)], Shape::d2(3, 2));
        assert_eq!(
            op.map_backward(&Coord::d2(0, 0), 0, &meta).unwrap().len(),
            6
        );
        assert_eq!(op.map_forward(&Coord::d2(2, 1), 0, &meta).unwrap().len(), 6);
        let mut sink = BufferSink::new();
        op.run(
            &[arr(&[vec![1.0, 2.0], vec![3.0, 4.0]])],
            &[LineageMode::Full],
            &mut sink,
        );
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn scale_to_unit_bounds_values() {
        let op = ScaleToUnit;
        let input = arr(&[vec![-4.0, 2.0], vec![8.0, 0.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.get(&Coord::d2(1, 0)), 1.0);
        assert_eq!(out.get(&Coord::d2(0, 0)), -0.5);
        assert!(out.max() <= 1.0 && out.min() >= -1.0);
    }

    #[test]
    fn scale_to_unit_zero_array_is_identity() {
        let op = ScaleToUnit;
        let input = arr(&[vec![0.0, 0.0]]);
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut BufferSink::new());
        assert_eq!(out.sum(), 0.0);
    }

    #[test]
    fn scale_to_unit_is_all_to_all() {
        assert!(ScaleToUnit.all_to_all());
    }
}
