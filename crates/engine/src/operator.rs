//! The operator trait and its query-time metadata.
//!
//! Operators are the unit SubZero instruments: each one consumes `n` input
//! arrays and produces a single output array.  Developers expose lineage by
//! (a) calling `lwrite()` on the [`LineageSink`] passed to [`Operator::run`]
//! when the requested modes include `Full`, `Pay` or `Comp`, and/or
//! (b) implementing the mapping functions `map_b` / `map_f` / `map_p`, which
//! compute lineage purely from cell coordinates, operator arguments and array
//! metadata — never from array data values (§V-A2, §V-A3).

use subzero_array::{Array, ArrayRef, Coord, Shape};

use crate::lineage::{LineageMode, LineageSink};

/// Metadata about one execution of an operator, available to mapping
/// functions at query time: the shapes of the input arrays and of the output
/// array.  Mapping functions may use nothing else (by construction they have
/// no access to array values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpMeta {
    /// Shape of each input array, in input order.
    pub input_shapes: Vec<Shape>,
    /// Shape of the output array.
    pub output_shape: Shape,
}

impl OpMeta {
    /// Convenience constructor.
    pub fn new(input_shapes: Vec<Shape>, output_shape: Shape) -> Self {
        OpMeta {
            input_shapes,
            output_shape,
        }
    }

    /// Shape of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_shape(&self, i: usize) -> Shape {
        self.input_shapes[i]
    }
}

/// A workflow operator.
///
/// The structure mirrors the paper's operator skeleton (§V): `run()` executes
/// the operator and emits lineage for the modes in `cur_modes`;
/// `supported_modes()` declares which modes the runtime may ask for; and the
/// optional mapping functions expose coordinate-only lineage.
///
/// Implementations must be deterministic: re-running the operator on the same
/// inputs must produce the same output and the same lineage, because black-box
/// lineage relies on re-execution in tracing mode.
pub trait Operator: Send + Sync {
    /// Human-readable operator name (used in reports and database names).
    fn name(&self) -> &str;

    /// Number of input arrays the operator consumes.
    fn num_inputs(&self) -> usize {
        1
    }

    /// Computes the output shape from the input shapes (used for planning and
    /// to build [`OpMeta`] without re-reading arrays).
    fn output_shape(&self, input_shapes: &[Shape]) -> Shape;

    /// Executes the operator.
    ///
    /// `cur_modes` lists the lineage modes the runtime wants this execution
    /// to emit; an operator should skip its lineage-generation code entirely
    /// when the relevant mode is absent (that is what makes `Blackbox`
    /// capture nearly free).  Lineage is emitted through `sink`.
    fn run(
        &self,
        inputs: &[ArrayRef],
        cur_modes: &[LineageMode],
        sink: &mut dyn LineageSink,
    ) -> Array;

    /// The lineage modes this operator can generate.  `Blackbox` is always
    /// implicitly supported; operators that do not override this are treated
    /// as black boxes with an assumed all-to-all relationship.
    fn supported_modes(&self) -> Vec<LineageMode> {
        vec![LineageMode::Blackbox]
    }

    /// Backward mapping function `map_b(outcell, i)`: the input cells of
    /// input `i` that contribute to `outcell`.  Returns `None` if the
    /// operator is not a mapping operator (for that input).
    fn map_backward(
        &self,
        _outcell: &Coord,
        _input_idx: usize,
        _meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        None
    }

    /// Forward mapping function `map_f(incell, i)`: the output cells that
    /// depend on `incell` of input `i`.
    fn map_forward(
        &self,
        _incell: &Coord,
        _input_idx: usize,
        _meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        None
    }

    /// Payload mapping function `map_p(outcell, payload, i)`: the input cells
    /// of input `i` that contribute to `outcell`, given the payload stored
    /// for `outcell`'s region pair.
    fn map_payload(
        &self,
        _outcell: &Coord,
        _payload: &[u8],
        _input_idx: usize,
        _meta: &OpMeta,
    ) -> Option<Vec<Coord>> {
        None
    }

    /// Whether every output cell depends on every input cell (e.g. matrix
    /// inversion, global aggregation, whole-array normalisation).  For such
    /// operators the forward lineage of *any* non-empty input set is the
    /// entire output array and vice versa, which the entire-array query
    /// optimization exploits (§VI-C).
    fn all_to_all(&self) -> bool {
        false
    }

    /// Whether the *entire-array* optimization may be applied across this
    /// operator when the intermediate cell set already covers a whole array:
    /// `backward == true` asks "is the backward lineage of the entire output
    /// array the entire `input_idx`'th input array?", `backward == false`
    /// asks "is the forward lineage of the entire `input_idx`'th input array
    /// the entire output array?".
    ///
    /// The paper relies on a manual annotation because the property cannot be
    /// inferred safely (concatenation is the counterexample); the default is
    /// `true` only for all-to-all operators.
    fn spans_entire_array(&self, _input_idx: usize, _backward: bool) -> bool {
        self.all_to_all()
    }
}

/// Blanket helpers available on all operators.
pub trait OperatorExt: Operator {
    /// Whether the operator declared support for `mode`.
    fn supports(&self, mode: LineageMode) -> bool {
        mode == LineageMode::Blackbox || self.supported_modes().contains(&mode)
    }

    /// Whether the operator is a *mapping operator* (declares `Map` support).
    fn is_mapping(&self) -> bool {
        self.supported_modes().contains(&LineageMode::Map)
    }
}

impl<T: Operator + ?Sized> OperatorExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::BufferSink;
    use std::sync::Arc;

    /// A minimal identity operator used to exercise the trait defaults.
    struct Identity;

    impl Operator for Identity {
        fn name(&self) -> &str {
            "identity"
        }

        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }

        fn run(
            &self,
            inputs: &[ArrayRef],
            _cur_modes: &[LineageMode],
            _sink: &mut dyn LineageSink,
        ) -> Array {
            (*inputs[0]).clone()
        }
    }

    #[test]
    fn trait_defaults_are_blackbox_all_to_nothing() {
        let op = Identity;
        assert_eq!(op.num_inputs(), 1);
        assert_eq!(op.supported_modes(), vec![LineageMode::Blackbox]);
        assert!(op.supports(LineageMode::Blackbox));
        assert!(!op.supports(LineageMode::Map));
        assert!(!op.is_mapping());
        assert!(!op.all_to_all());
        let meta = OpMeta::new(vec![Shape::d2(2, 2)], Shape::d2(2, 2));
        assert_eq!(op.map_backward(&Coord::d2(0, 0), 0, &meta), None);
        assert_eq!(op.map_forward(&Coord::d2(0, 0), 0, &meta), None);
        assert_eq!(op.map_payload(&Coord::d2(0, 0), &[1], 0, &meta), None);
    }

    #[test]
    fn run_produces_output() {
        let op = Identity;
        let input = Arc::new(Array::filled(Shape::d2(2, 2), 3.0));
        let mut sink = BufferSink::new();
        let out = op.run(&[input], &[LineageMode::Blackbox], &mut sink);
        assert_eq!(out.sum(), 12.0);
        assert!(sink.is_empty());
    }

    #[test]
    fn op_meta_accessors() {
        let meta = OpMeta::new(vec![Shape::d2(2, 3), Shape::d1(7)], Shape::d2(3, 2));
        assert_eq!(meta.input_shape(0), Shape::d2(2, 3));
        assert_eq!(meta.input_shape(1), Shape::d1(7));
        assert_eq!(meta.output_shape, Shape::d2(3, 2));
    }
}
