//! Workflow specifications.
//!
//! A workflow specification is a DAG `W = (N, E)` where `N` is a set of
//! operators and an edge `(O_P, I^i_{P'})` says the output of operator `P`
//! feeds the `i`'th input of operator `P'` (§IV of the paper).  Inputs that
//! do not come from another operator come from named external arrays.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;

use subzero_store::hash::FxHasher;

use crate::operator::Operator;

/// Identifier of an operator inside one workflow.
pub type OpId = u32;

/// Where one input of an operator comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InputSource {
    /// A named external array supplied when the workflow is executed.
    External(String),
    /// The output of another operator in the same workflow.
    Operator(OpId),
}

/// One operator node of a workflow.
pub struct WorkflowNode {
    /// Identifier of the node within its workflow.
    pub id: OpId,
    /// The operator implementation.
    pub operator: Arc<dyn Operator>,
    /// Where each of the operator's inputs comes from (length equals
    /// `operator.num_inputs()`).
    pub inputs: Vec<InputSource>,
}

impl fmt::Debug for WorkflowNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkflowNode")
            .field("id", &self.id)
            .field("operator", &self.operator.name())
            .field("inputs", &self.inputs)
            .finish()
    }
}

/// Errors detected while building or validating a workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// An input referenced an operator id that does not exist.
    UnknownOperator(OpId),
    /// The number of declared inputs does not match `Operator::num_inputs`.
    ArityMismatch {
        /// The offending operator.
        op: OpId,
        /// Inputs declared in the workflow.
        declared: usize,
        /// Inputs the operator expects.
        expected: usize,
    },
    /// The graph contains a cycle (workflows must be DAGs).
    Cycle,
    /// A query or execution referenced an operator not present in the
    /// workflow.
    NoSuchOperator(OpId),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::UnknownOperator(id) => {
                write!(f, "input references unknown operator {id}")
            }
            WorkflowError::ArityMismatch {
                op,
                declared,
                expected,
            } => write!(
                f,
                "operator {op} declares {declared} inputs but expects {expected}"
            ),
            WorkflowError::Cycle => write!(f, "workflow graph contains a cycle"),
            WorkflowError::NoSuchOperator(id) => write!(f, "no operator with id {id}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// A validated workflow specification.
pub struct Workflow {
    name: String,
    nodes: Vec<WorkflowNode>,
    topo: Vec<OpId>,
    dag_hash: u64,
}

impl fmt::Debug for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workflow")
            .field("name", &self.name)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Workflow {
    /// Starts building a workflow with the given name.
    pub fn builder(name: impl Into<String>) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, ordered by id.
    pub fn nodes(&self) -> &[WorkflowNode] {
        &self.nodes
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the workflow has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by id.
    pub fn node(&self, id: OpId) -> Result<&WorkflowNode, WorkflowError> {
        self.nodes
            .get(id as usize)
            .ok_or(WorkflowError::NoSuchOperator(id))
    }

    /// Operator ids in a topological order (every operator appears after all
    /// operators whose output it consumes).
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// A content hash of the workflow DAG: its name, per-node operator names
    /// and the input wiring.  Computed once at build time.  Equal
    /// specifications hash equally across program runs of the same build, so
    /// the hash keys cross-session caches of DAG-derived artifacts (e.g.
    /// traversal plans, which depend only on the wiring).
    pub fn dag_hash(&self) -> u64 {
        self.dag_hash
    }

    /// The operators that consume the output of `id`, together with the input
    /// index at which they consume it.
    pub fn consumers(&self, id: OpId) -> Vec<(OpId, usize)> {
        let mut out = Vec::new();
        for node in &self.nodes {
            for (idx, src) in node.inputs.iter().enumerate() {
                if *src == InputSource::Operator(id) {
                    out.push((node.id, idx));
                }
            }
        }
        out
    }

    /// Ids of the *sink* operators (whose output no other operator consumes).
    pub fn sinks(&self) -> Vec<OpId> {
        self.nodes
            .iter()
            .map(|n| n.id)
            .filter(|&id| self.consumers(id).is_empty())
            .collect()
    }

    /// Names of all external arrays the workflow reads.
    pub fn external_inputs(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for node in &self.nodes {
            for src in &node.inputs {
                if let InputSource::External(name) = src {
                    if !names.contains(&name.as_str()) {
                        names.push(name.as_str());
                    }
                }
            }
        }
        names
    }
}

/// Incremental builder for [`Workflow`].
pub struct WorkflowBuilder {
    name: String,
    nodes: Vec<WorkflowNode>,
}

impl WorkflowBuilder {
    /// Adds an operator whose inputs are described by `inputs`; returns the
    /// new operator's id.
    pub fn add(&mut self, operator: Arc<dyn Operator>, inputs: Vec<InputSource>) -> OpId {
        let id = self.nodes.len() as OpId;
        self.nodes.push(WorkflowNode {
            id,
            operator,
            inputs,
        });
        id
    }

    /// Adds an operator that reads a single external array.
    pub fn add_source(&mut self, operator: Arc<dyn Operator>, external: &str) -> OpId {
        self.add(operator, vec![InputSource::External(external.to_string())])
    }

    /// Adds a single-input operator fed by the output of `upstream`.
    pub fn add_unary(&mut self, operator: Arc<dyn Operator>, upstream: OpId) -> OpId {
        self.add(operator, vec![InputSource::Operator(upstream)])
    }

    /// Adds a two-input operator fed by the outputs of `left` and `right`.
    pub fn add_binary(&mut self, operator: Arc<dyn Operator>, left: OpId, right: OpId) -> OpId {
        self.add(
            operator,
            vec![InputSource::Operator(left), InputSource::Operator(right)],
        )
    }

    /// Validates the graph and produces the immutable [`Workflow`].
    ///
    /// # Errors
    ///
    /// Returns a [`WorkflowError`] if an input references a missing operator,
    /// an operator's declared arity does not match, or the graph contains a
    /// cycle.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        let n = self.nodes.len();
        // Arity and reference checks.
        for node in &self.nodes {
            if node.inputs.len() != node.operator.num_inputs() {
                return Err(WorkflowError::ArityMismatch {
                    op: node.id,
                    declared: node.inputs.len(),
                    expected: node.operator.num_inputs(),
                });
            }
            for src in &node.inputs {
                if let InputSource::Operator(dep) = src {
                    if *dep as usize >= n {
                        return Err(WorkflowError::UnknownOperator(*dep));
                    }
                }
            }
        }
        // Kahn's algorithm for a topological order (also detects cycles).
        let mut indegree: HashMap<OpId, usize> = HashMap::new();
        for node in &self.nodes {
            indegree.entry(node.id).or_insert(0);
            for src in &node.inputs {
                if let InputSource::Operator(_) = src {
                    *indegree.entry(node.id).or_insert(0) += 1;
                }
            }
        }
        let mut ready: Vec<OpId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        ready.sort_unstable();
        let mut topo = Vec::with_capacity(n);
        while let Some(id) = ready.pop() {
            topo.push(id);
            for node in &self.nodes {
                if node.inputs.contains(&InputSource::Operator(id)) {
                    let d = indegree.get_mut(&node.id).expect("indegree present");
                    // An operator may consume the same upstream output at
                    // several input positions; decrement once per edge.
                    let edges = node
                        .inputs
                        .iter()
                        .filter(|src| **src == InputSource::Operator(id))
                        .count();
                    *d -= edges;
                    if *d == 0 {
                        ready.push(node.id);
                    }
                }
            }
        }
        if topo.len() != n {
            return Err(WorkflowError::Cycle);
        }
        let dag_hash = compute_dag_hash(&self.name, &self.nodes);
        Ok(Workflow {
            name: self.name,
            nodes: self.nodes,
            topo,
            dag_hash,
        })
    }
}

/// Hashes a workflow specification's identity: the name, each node's
/// operator name, and where each input comes from.  Deliberately *not* the
/// operator parameters — two workflows that wire the same graph shape share
/// DAG-derived artifacts even if their operators are tuned differently.
fn compute_dag_hash(name: &str, nodes: &[WorkflowNode]) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.write_usize(nodes.len());
    for node in nodes {
        h.write_u32(node.id);
        h.write(node.operator.name().as_bytes());
        h.write_usize(node.inputs.len());
        for src in &node.inputs {
            match src {
                InputSource::External(ext) => {
                    h.write_u8(0);
                    h.write(ext.as_bytes());
                }
                InputSource::Operator(id) => {
                    h.write_u8(1);
                    h.write_u32(*id);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::{LineageMode, LineageSink};
    use crate::operator::Operator;
    use subzero_array::{Array, ArrayRef, Shape};

    struct Dummy {
        name: String,
        inputs: usize,
    }

    impl Dummy {
        fn arc(name: &str, inputs: usize) -> Arc<dyn Operator> {
            Arc::new(Dummy {
                name: name.to_string(),
                inputs,
            })
        }
    }

    impl Operator for Dummy {
        fn name(&self) -> &str {
            &self.name
        }
        fn num_inputs(&self) -> usize {
            self.inputs
        }
        fn output_shape(&self, input_shapes: &[Shape]) -> Shape {
            input_shapes[0]
        }
        fn run(
            &self,
            inputs: &[ArrayRef],
            _cur_modes: &[LineageMode],
            _sink: &mut dyn LineageSink,
        ) -> Array {
            (*inputs[0]).clone()
        }
    }

    fn diamond() -> Workflow {
        // ext -> a -> b ┐
        //          └─ c ┴-> d
        let mut b = Workflow::builder("diamond");
        let a = b.add_source(Dummy::arc("a", 1), "ext");
        let b1 = b.add_unary(Dummy::arc("b", 1), a);
        let c = b.add_unary(Dummy::arc("c", 1), a);
        let _d = b.add_binary(Dummy::arc("d", 2), b1, c);
        b.build().unwrap()
    }

    #[test]
    fn build_and_topo_order() {
        let w = diamond();
        assert_eq!(w.len(), 4);
        assert_eq!(w.name(), "diamond");
        let topo = w.topo_order();
        let pos = |id: OpId| topo.iter().position(|&x| x == id).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn consumers_and_sinks() {
        let w = diamond();
        let mut consumers = w.consumers(0);
        consumers.sort_unstable();
        assert_eq!(consumers, vec![(1, 0), (2, 0)]);
        assert_eq!(w.consumers(3), vec![]);
        assert_eq!(w.sinks(), vec![3]);
        assert_eq!(w.external_inputs(), vec!["ext"]);
    }

    #[test]
    fn dag_hash_is_stable_and_wiring_sensitive() {
        // Equal specifications hash equally; different graphs do not.
        assert_eq!(diamond().dag_hash(), diamond().dag_hash());
        let mut b = Workflow::builder("diamond");
        let a = b.add_source(Dummy::arc("a", 1), "ext");
        let _b1 = b.add_unary(Dummy::arc("b", 1), a);
        let chain = b.build().unwrap();
        assert_ne!(diamond().dag_hash(), chain.dag_hash());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut b = Workflow::builder("bad");
        b.add(
            Dummy::arc("two-input", 2),
            vec![InputSource::External("x".into())],
        );
        assert!(matches!(
            b.build(),
            Err(WorkflowError::ArityMismatch {
                expected: 2,
                declared: 1,
                ..
            })
        ));
    }

    #[test]
    fn unknown_operator_detected() {
        let mut b = Workflow::builder("bad");
        b.add(Dummy::arc("a", 1), vec![InputSource::Operator(7)]);
        assert_eq!(b.build().err(), Some(WorkflowError::UnknownOperator(7)));
    }

    #[test]
    fn cycle_detected() {
        let mut b = Workflow::builder("cyclic");
        // Two operators feeding each other.
        let _x = b.add(Dummy::arc("x", 1), vec![InputSource::Operator(1)]);
        let _y = b.add(Dummy::arc("y", 1), vec![InputSource::Operator(0)]);
        assert_eq!(b.build().err(), Some(WorkflowError::Cycle));
    }

    #[test]
    fn node_lookup_errors_for_missing_id() {
        let w = diamond();
        assert!(w.node(2).is_ok());
        assert!(matches!(w.node(99), Err(WorkflowError::NoSuchOperator(99))));
    }

    #[test]
    fn same_upstream_used_twice_is_allowed() {
        let mut b = Workflow::builder("double-edge");
        let a = b.add_source(Dummy::arc("a", 1), "ext");
        let _sq = b.add_binary(Dummy::arc("self-product", 2), a, a);
        let w = b.build().unwrap();
        assert_eq!(w.consumers(a), vec![(1, 0), (1, 1)]);
    }

    #[test]
    fn error_display() {
        assert!(WorkflowError::Cycle.to_string().contains("cycle"));
        assert!(WorkflowError::UnknownOperator(3).to_string().contains('3'));
    }
}
