//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this tiny crate provides
//! exactly the API surface the `subzero-bench` generators use: a seedable RNG
//! ([`rngs::StdRng`]), `gen_range` over integer and float ranges, and
//! `gen_bool`.  The generator is SplitMix64 — fast, well distributed, and
//! deterministic across platforms, which is all the benchmark generators need
//! (they require reproducibility, not compatibility with upstream `rand`
//! streams).

use std::ops::Range;

/// Minimal core-RNG trait (a stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the benchmark-sized spans
                // used here (all far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        // 53 random bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}
