//! Offline stand-in for the `loom` crate.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small systematic concurrency tester (in the spirit of loom and CHESS) with
//! the API surface `subzero::sync` needs: [`model`] runs a test body under
//! *every* schedule of its threads, where a schedule is a sequence of
//! decisions about which runnable thread proceeds at each synchronization
//! point.
//!
//! ## How it works
//!
//! Model threads are real OS threads, but only one ever runs at a time: each
//! synchronization operation — mutex acquire, condvar wait/notify, atomic
//! access, spawn, join, `yield_now` — is a *yield point* where the active
//! thread hands control to a scheduler that picks the next runnable thread.
//! Whenever more than one thread is runnable the pick is a recorded decision;
//! the model replays the test body under every decision sequence via
//! depth-first search until the space is exhausted.  Data-race-free code only
//! communicates through these synchronization operations, so exploring all
//! schedules *modulo local computation* is exhaustive for the properties the
//! suites assert (ordering, accounting, absence of lost wake-ups and
//! deadlocks).
//!
//! Blocked threads (on a held lock, a condvar, or a join) are excluded from
//! the runnable set; if no thread is runnable while some are still blocked,
//! the model reports a deadlock together with every thread's wait state.  A
//! panic that escapes a model thread (and is not consumed by a `join`) fails
//! the model and is re-raised on the caller with the failing schedule's
//! iteration number.
//!
//! ## Differences from upstream loom
//!
//! * No `Arc` tracking or leak detection: [`sync::Arc`] is `std`'s.
//! * Atomics are sequentially consistent regardless of the requested
//!   `Ordering` (every access is a yield point, and accesses are serialized,
//!   so weaker orderings are explored as SeqCst).  This explores *fewer*
//!   behaviours than real hardware allows; the subzero concurrency code uses
//!   its atomics SeqCst-only, where the two models agree.
//! * Condvars do not wake spuriously and `notify_one` wakes the
//!   longest-waiting thread, so wake-up *order* nondeterminism beyond
//!   scheduling is not explored.
//! * No partial-order reduction.  Instead the scheduler uses CHESS-style
//!   *preemption bounding*: switching away from a thread that could keep
//!   running is a preemption, and schedules are explored exhaustively up to
//!   `LOOM_MAX_PREEMPTIONS` of them (default 2) — voluntary switches
//!   (blocking on a lock/condvar/join, finishing) are always free and fully
//!   explored.  Empirically almost all concurrency bugs need very few
//!   preemptions (Musuvathi & Qadeer, PLDI'07), and the bound turns an
//!   exponential schedule space into a polynomial one.  Raise the bound to
//!   widen the exploration (at exponential cost in the bound).
//!
//! The iteration budget defaults to 1,000,000 schedules and can be raised
//! with the `LOOM_MAX_ITERATIONS` environment variable; exceeding it panics
//! (an incomplete exploration must never pass silently).

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock};

/// Sentinel panic payload used to unwind parked threads when a model run
/// aborts (deadlock or escaped panic); never surfaced to the caller.
struct Abort;

type Payload = Box<dyn Any + Send + 'static>;

/// What a non-runnable thread is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wait {
    /// Blocked acquiring the lock with this identity.
    Lock(u64),
    /// Parked on the condvar with this identity.
    Condvar(u64),
    /// Waiting for this thread id to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Wait),
    Finished,
}

/// One recorded scheduling decision: index `chosen` out of `options`
/// runnable threads (ordered by thread id).
#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    options: usize,
}

#[derive(Default)]
struct SchedState {
    /// Run state per thread id (0 is the model's root thread).
    threads: Vec<Run>,
    /// The one thread allowed to make progress, `None` once all finished.
    active: Option<usize>,
    /// Logical lock table: lock identity -> owning thread.
    locks: HashMap<u64, usize>,
    /// FIFO waiters per condvar identity.
    cv_waiters: HashMap<u64, Vec<usize>>,
    /// Decisions taken this run.
    trace: Vec<Choice>,
    /// Decision prefix to replay this run.
    replay: Vec<usize>,
    /// Panics of finished threads not yet consumed by a `join`.
    panics: HashMap<usize, Payload>,
    /// Deadlock diagnostic, if the run wedged.
    deadlock: Option<String>,
    /// Tear the run down: parked threads unwind with [`Abort`].
    abort: bool,
    /// Preemptions taken so far this run (switches away from a thread that
    /// was still runnable).
    preemptions: usize,
    /// Maximum preemptions to explore; once spent, a runnable thread keeps
    /// the schedule until it blocks or finishes.
    preemption_bound: usize,
}

impl SchedState {
    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t] == Run::Runnable)
            .collect()
    }

    /// Releases `lock` and makes its waiters runnable (they re-race for the
    /// lock when next scheduled).
    fn release_lock(&mut self, lock: u64) {
        self.locks.remove(&lock);
        for t in 0..self.threads.len() {
            if self.threads[t] == Run::Blocked(Wait::Lock(lock)) {
                self.threads[t] = Run::Runnable;
            }
        }
    }

    fn describe_wedge(&self) -> String {
        let states: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .map(|(t, r)| format!("thread {t}: {r:?}"))
            .collect();
        format!("no runnable thread ({})", states.join(", "))
    }
}

/// One model run: a scheduler serializing the run's OS threads.
struct Execution {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    /// Join handles of `thread::spawn`ed (non-scoped) OS threads, joined at
    /// the end of the run so iterations never overlap.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(StdArc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(StdArc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn current_expect(op: &str) -> (StdArc<Execution>, usize) {
    current().unwrap_or_else(|| panic!("loom shim: {op} used outside loom::model"))
}

/// Runs `body` on the current OS thread as model thread `me`, restoring the
/// previous model-thread binding afterwards (executions never nest, but the
/// root runs on a scoped thread that outlives nothing).
fn bind<R>(exec: &StdArc<Execution>, me: usize, body: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| *c.borrow_mut() = Some((StdArc::clone(exec), me)));
    let r = body();
    CURRENT.with(|c| *c.borrow_mut() = None);
    r
}

impl Execution {
    fn new(replay: Vec<usize>, preemption_bound: usize) -> Self {
        let state = SchedState {
            threads: vec![Run::Runnable], // root
            active: Some(0),
            replay,
            preemption_bound,
            ..SchedState::default()
        };
        Execution {
            state: StdMutex::new(state),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Picks the next active thread from the runnable set, recording a
    /// decision when there is a real choice.  `prev` is the thread that just
    /// yielded: continuing it is free, while scheduling another thread while
    /// `prev` could still run is a *preemption*, charged against the run's
    /// preemption bound — once the bound is spent the continuation is forced
    /// and no decision is recorded.  Caller holds the state lock.  Returns
    /// the chosen thread, or `None` when nothing is runnable (all finished,
    /// or wedged — the caller distinguishes).
    fn pick_next(&self, st: &mut SchedState, prev: usize) -> Option<usize> {
        let runnable = st.runnable();
        if runnable.is_empty() {
            return None;
        }
        let prev_runnable = runnable.contains(&prev);
        // Order options so index 0 is the zero-preemption continuation: the
        // DFS then explores cheap schedules first and the bound check below
        // stays a prefix cut.
        let options: Vec<usize> = if prev_runnable {
            std::iter::once(prev)
                .chain(runnable.iter().copied().filter(|&t| t != prev))
                .collect()
        } else {
            runnable
        };
        if options.len() == 1 || (prev_runnable && st.preemptions >= st.preemption_bound) {
            return Some(options[0]);
        }
        let n = options.len();
        let depth = st.trace.len();
        let idx = if depth < st.replay.len() {
            // Clamp defensively: the model bodies are deterministic,
            // so a mismatch here is a shim bug, not a user error.
            st.replay[depth].min(n - 1)
        } else {
            0
        };
        st.trace.push(Choice {
            chosen: idx,
            options: n,
        });
        if prev_runnable && idx != 0 {
            st.preemptions += 1;
        }
        Some(options[idx])
    }

    /// Parks the calling OS thread until it is the active model thread.
    /// Caller holds the state lock; the guard is returned re-acquired.
    fn park_until_active<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == Some(me) && st.threads[me] == Run::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The fundamental yield point: optionally block the calling thread,
    /// schedule the next one, and return once the caller is active again.
    /// `pre` runs under the state lock before scheduling (lock releases,
    /// waiter registration) so block + bookkeeping are one atomic step.
    fn switch(&self, me: usize, block: Option<Wait>, pre: impl FnOnce(&mut SchedState)) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        pre(&mut st);
        if let Some(wait) = block {
            st.threads[me] = Run::Blocked(wait);
        }
        match self.pick_next(&mut st, me) {
            Some(next) => {
                st.active = Some(next);
                if next == me {
                    return;
                }
                self.cv.notify_all();
                let st = self.park_until_active(st, me);
                drop(st);
            }
            None => {
                // The caller is blocked (it cannot be runnable and absent
                // from the runnable set) and so is everyone else: deadlock.
                let msg = st.describe_wedge();
                st.deadlock.get_or_insert(msg);
                st.abort = true;
                drop(st);
                self.cv.notify_all();
                std::panic::panic_any(Abort);
            }
        }
    }

    /// A plain preemption point (no blocking, no bookkeeping).
    fn yield_point(&self, me: usize) {
        self.switch(me, None, |_| {});
    }

    /// Registers a new model thread, runnable but not yet scheduled.
    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        assert!(
            st.threads.len() < 64,
            "loom shim: more than 64 model threads — runaway spawn loop?"
        );
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    /// Marks `me` finished, wakes joiners, and hands the schedule to the
    /// next runnable thread (without parking: the caller's OS thread exits).
    fn finish(&self, me: usize, panic: Option<Payload>) {
        let mut st = self.lock_state();
        st.threads[me] = Run::Finished;
        if let Some(p) = panic {
            st.panics.insert(me, p);
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::Blocked(Wait::Join(me)) {
                st.threads[t] = Run::Runnable;
            }
        }
        if st.abort {
            drop(st);
            self.cv.notify_all();
            return;
        }
        match self.pick_next(&mut st, me) {
            Some(next) => {
                st.active = Some(next);
            }
            None => {
                if st.threads.iter().any(|r| *r != Run::Finished) {
                    let msg = st.describe_wedge();
                    st.deadlock.get_or_insert(msg);
                    st.abort = true;
                } else {
                    st.active = None;
                }
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes, then takes its panic payload (if
    /// any) out of the unconsumed set.
    fn join_thread(&self, me: usize, target: usize) -> Result<(), Payload> {
        self.switch(me, None, |_| {});
        let finished = { self.lock_state().threads[target] == Run::Finished };
        if !finished {
            self.switch(me, Some(Wait::Join(target)), |_| {});
        }
        match self.lock_state().panics.remove(&target) {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Acquires the logical lock `id` for `me`, blocking (and re-racing
    /// against other woken waiters) as needed.
    fn acquire_lock(&self, me: usize, id: u64) {
        loop {
            // Preemption point before every acquire attempt: another thread
            // may grab (or give up) the lock here, exploring acquisition
            // order.
            self.yield_point(me);
            let mut st = self.lock_state();
            if let std::collections::hash_map::Entry::Vacant(e) = st.locks.entry(id) {
                e.insert(me);
                return;
            }
            drop(st);
            self.switch(me, Some(Wait::Lock(id)), |_| {});
        }
    }

    fn release_lock(&self, _me: usize, id: u64) {
        let mut st = self.lock_state();
        st.release_lock(id);
        drop(st);
        // Waiters woken here become schedulable at the *next* yield point;
        // releasing itself is not a decision (only local work can follow
        // before the releaser's next synchronization operation).
        self.cv.notify_all();
    }
}

/// Identity for shim mutexes/condvars: assigned once per object, stable
/// across moves (unlike the object's address).
fn fresh_id(slot: &OnceLock<u64>) -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    *slot.get_or_init(|| NEXT.fetch_add(1, StdOrdering::Relaxed))
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Computes the next DFS decision prefix after a run with `trace`, or `None`
/// when the space is exhausted.
fn next_replay(trace: &[Choice]) -> Option<Vec<usize>> {
    let mut prefix: Vec<usize> = trace.iter().map(|c| c.chosen).collect();
    for i in (0..trace.len()).rev() {
        if prefix[i] + 1 < trace[i].options {
            prefix[i] += 1;
            prefix.truncate(i + 1);
            return Some(prefix);
        }
    }
    None
}

fn max_iterations() -> usize {
    std::env::var("LOOM_MAX_ITERATIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn max_preemptions() -> usize {
    std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

/// Explores every schedule of `f`'s threads (exhaustively up to the
/// preemption bound, see the module docs), panicking on the first failing
/// one (escaped panic, failed assertion, or deadlock).
pub fn model<F>(f: F)
where
    F: Fn() + Sync,
{
    let budget = max_iterations();
    let preemption_bound = max_preemptions();
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= budget,
            "loom shim: exceeded {budget} schedules without exhausting the model \
             (shrink the test or raise LOOM_MAX_ITERATIONS)"
        );
        let exec = StdArc::new(Execution::new(replay.clone(), preemption_bound));
        let root_panic: Option<Payload> = std::thread::scope(|scope| {
            let exec = &exec;
            let f = &f;
            scope
                .spawn(move || {
                    bind(exec, 0, || {
                        let result = catch_unwind(AssertUnwindSafe(f));
                        match result {
                            Ok(()) => {
                                exec.finish(0, None);
                                None
                            }
                            Err(p) if p.is::<Abort>() => {
                                exec.finish(0, None);
                                None
                            }
                            Err(p) => {
                                // Tear down the run before reporting: parked
                                // threads must unwind so the scope can close.
                                let mut st = exec.lock_state();
                                st.abort = true;
                                drop(st);
                                exec.finish(0, None);
                                Some(p)
                            }
                        }
                    })
                })
                .join()
                .expect("loom shim: root wrapper never panics")
        });
        // Non-scoped model threads keep running after the root returns (the
        // scheduler drives them to completion); reap their OS threads so the
        // next iteration starts clean.
        let handles: Vec<_> = exec
            .os_handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let mut st = exec.lock_state();
        let trace = std::mem::take(&mut st.trace);
        let unconsumed = st.panics.drain().next().map(|(_, p)| p);
        let deadlock = st.deadlock.take();
        drop(st);
        if let Some(p) = root_panic.or(unconsumed) {
            eprintln!(
                "loom shim: schedule {iterations} failed; decision trace: {:?}",
                trace.iter().map(|c| c.chosen).collect::<Vec<_>>()
            );
            resume_unwind(p);
        }
        if let Some(msg) = deadlock {
            panic!("loom shim: deadlock on schedule {iterations}: {msg}");
        }
        match next_replay(&trace) {
            Some(next) => replay = next,
            None => break,
        }
    }
}

// ---------------------------------------------------------------------------
// loom::sync
// ---------------------------------------------------------------------------

pub mod sync {
    //! Model-checked replacements for `std::sync` primitives.

    pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, Weak};

    use super::{current, current_expect, fresh_id, Wait};
    use std::ops::{Deref, DerefMut};
    use std::sync::OnceLock;

    /// A mutex whose acquire is a model yield point.  Storage is a real
    /// `std::sync::Mutex` that is never contended: the logical lock table
    /// admits one owner at a time, and only the owner touches the data.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        id: OnceLock<u64>,
        data: std::sync::Mutex<T>,
    }

    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        /// `Some` until dropped; taken first so the real guard is released
        /// before the logical lock (waiters only race after both).
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex {
                id: OnceLock::new(),
                data: std::sync::Mutex::new(value),
            }
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.data.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub(crate) fn identity(&self) -> u64 {
            fresh_id(&self.id)
        }

        /// Takes the real (always-uncontended) guard, swallowing poison: the
        /// model tracks panics itself, and a poisoned inner mutex would
        /// otherwise mask the panic actually under test.
        fn real_guard(&self) -> std::sync::MutexGuard<'_, T> {
            match self.data.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(p)) => p.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("loom shim: logical lock admitted two owners")
                }
            }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match current() {
                Some((exec, me)) => {
                    exec.acquire_lock(me, self.identity());
                    Ok(MutexGuard {
                        lock: self,
                        inner: Some(self.real_guard()),
                    })
                }
                // Outside a model (e.g. state inspected after `model`
                // returns) the logical table does not exist; fall back to
                // the real mutex.
                None => Ok(MutexGuard {
                    lock: self,
                    inner: Some(self.real_guard()),
                }),
            }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            if let Some((exec, me)) = current() {
                exec.release_lock(me, self.lock.identity());
            }
        }
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard live")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard live")
        }
    }

    /// A condition variable whose wait/notify are model yield points.  No
    /// spurious wake-ups; `notify_one` wakes the longest waiter.
    #[derive(Debug, Default)]
    pub struct Condvar {
        id: OnceLock<u64>,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                id: OnceLock::new(),
            }
        }

        fn identity(&self) -> u64 {
            fresh_id(&self.id)
        }

        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let (exec, me) = current_expect("Condvar::wait");
            let lock = guard.lock;
            let lock_id = lock.identity();
            let cv_id = self.identity();
            // Release the real guard first: after the logical release below,
            // another model thread may legitimately acquire.
            drop(guard.inner.take());
            // The guard's Drop would release the logical lock *outside* the
            // waiter registration; the atomic release-and-wait happens in
            // `pre` below instead, so the guard must not run its Drop.
            #[allow(clippy::mem_forget)]
            std::mem::forget(guard);
            exec.switch(me, Some(Wait::Condvar(cv_id)), |st| {
                st.release_lock(lock_id);
                st.cv_waiters.entry(cv_id).or_default().push(me);
            });
            // Woken: re-acquire like any other contender.
            exec.acquire_lock(me, lock_id);
            Ok(MutexGuard {
                lock,
                inner: Some(lock.real_guard()),
            })
        }

        pub fn notify_one(&self) {
            let (exec, me) = current_expect("Condvar::notify_one");
            let cv_id = self.identity();
            exec.switch(me, None, |st| {
                if let Some(waiters) = st.cv_waiters.get_mut(&cv_id) {
                    if !waiters.is_empty() {
                        let t = waiters.remove(0);
                        st.threads[t] = super::Run::Runnable;
                    }
                }
            });
        }

        pub fn notify_all(&self) {
            let (exec, me) = current_expect("Condvar::notify_all");
            let cv_id = self.identity();
            exec.switch(me, None, |st| {
                if let Some(waiters) = st.cv_waiters.get_mut(&cv_id) {
                    for t in waiters.drain(..) {
                        st.threads[t] = super::Run::Runnable;
                    }
                }
            });
        }
    }

    pub mod atomic {
        //! Atomics whose every access is a model yield point (all orderings
        //! explored as sequentially consistent).

        pub use std::sync::atomic::Ordering;

        use crate::current;

        macro_rules! shim_atomic {
            ($name:ident, $std:ident, $ty:ty) => {
                #[derive(Debug, Default)]
                pub struct $name {
                    v: std::sync::atomic::$std,
                }

                impl $name {
                    pub const fn new(v: $ty) -> Self {
                        $name {
                            v: std::sync::atomic::$std::new(v),
                        }
                    }

                    fn pre_op(&self) {
                        if let Some((exec, me)) = current() {
                            exec.yield_point(me);
                        }
                    }

                    pub fn load(&self, order: Ordering) -> $ty {
                        self.pre_op();
                        self.v.load(order)
                    }

                    pub fn store(&self, val: $ty, order: Ordering) {
                        self.pre_op();
                        self.v.store(val, order)
                    }

                    pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                        self.pre_op();
                        self.v.swap(val, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.pre_op();
                        self.v.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        shim_atomic!(AtomicBool, AtomicBool, bool);
        shim_atomic!(AtomicU64, AtomicU64, u64);

        macro_rules! shim_atomic_arith {
            ($name:ident, $ty:ty) => {
                impl $name {
                    pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                        self.pre_op();
                        self.v.fetch_add(val, order)
                    }

                    pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                        self.pre_op();
                        self.v.fetch_sub(val, order)
                    }
                }
            };
        }

        shim_atomic!(AtomicUsize, AtomicUsize, usize);
        shim_atomic_arith!(AtomicUsize, usize);
        shim_atomic_arith!(AtomicU64, u64);
    }
}

// ---------------------------------------------------------------------------
// loom::thread
// ---------------------------------------------------------------------------

pub mod thread {
    //! Model-checked replacements for `std::thread`.

    use super::{bind, current_expect, Payload};
    use std::io;
    use std::num::NonZeroUsize;
    use std::sync::{Arc as StdArc, Mutex as StdMutex};

    type ResultSlot<T> = StdArc<StdMutex<Option<Result<T, Payload>>>>;

    fn run_registered<T>(
        exec: &StdArc<super::Execution>,
        tid: usize,
        slot: &ResultSlot<T>,
        f: impl FnOnce() -> T,
    ) {
        bind(exec, tid, || {
            // Wait to be scheduled for the first time.
            let st = exec.lock_state();
            let st = exec.park_until_active(st, tid);
            drop(st);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            match result {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
                    exec.finish(tid, None);
                }
                Err(p) if p.is::<super::Abort>() => {
                    exec.finish(tid, None);
                }
                Err(p) => {
                    // The payload is surfaced through `join` when the handle
                    // is joined, and fails the model otherwise.
                    *slot.lock().unwrap_or_else(|p| p.into_inner()) =
                        Some(Err(Box::new("thread panicked") as Payload));
                    exec.finish(tid, Some(p));
                }
            }
        });
    }

    /// Consumes the slot after `target` finished: `Ok(value)` on success, or
    /// the panic payload (taken out of the model's unconsumed set).
    fn join_registered<T>(
        exec: &StdArc<super::Execution>,
        me: usize,
        target: usize,
        slot: &ResultSlot<T>,
    ) -> Result<T, Payload> {
        match exec.join_thread(me, target) {
            Ok(()) => match slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                Some(Ok(v)) => Ok(v),
                _ => unreachable!("loom shim: joined thread left no result"),
            },
            Err(p) => Err(p),
        }
    }

    pub struct JoinHandle<T> {
        tid: usize,
        exec: StdArc<super::Execution>,
        slot: ResultSlot<T>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> Result<T, Payload> {
            let (_, me) = current_expect("JoinHandle::join");
            join_registered(&self.exec, me, self.tid, &self.slot)
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("loom shim spawn")
    }

    /// Mirror of `std::thread::Builder` (the name is recorded nowhere; model
    /// threads are identified by spawn order).
    #[derive(Default)]
    pub struct Builder {
        _name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder::default()
        }

        pub fn name(mut self, name: String) -> Self {
            self._name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let (exec, me) = current_expect("thread::spawn");
            let tid = exec.register_thread();
            let slot: ResultSlot<T> = StdArc::new(StdMutex::new(None));
            let os = {
                let exec = StdArc::clone(&exec);
                let slot = StdArc::clone(&slot);
                std::thread::spawn(move || run_registered(&exec, tid, &slot, f))
            };
            exec.os_handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(os);
            // Spawning is a yield point: the child may run first.
            exec.yield_point(me);
            Ok(JoinHandle { tid, exec, slot })
        }
    }

    pub fn yield_now() {
        let (exec, me) = current_expect("thread::yield_now");
        exec.yield_point(me);
    }

    /// Model time does not advance; sleeping is just a preemption point.
    pub fn sleep(_dur: std::time::Duration) {
        yield_now();
    }

    /// Models report a fixed two-way parallelism (the host's real value
    /// would make explored schedules host-dependent).
    pub fn available_parallelism() -> io::Result<NonZeroUsize> {
        Ok(NonZeroUsize::new(2).expect("nonzero"))
    }

    pub struct Scope<'scope, 'env: 'scope> {
        std: &'scope std::thread::Scope<'scope, 'env>,
        /// Children spawned through this scope; scheduler-joined before the
        /// underlying std scope's implicit join so the parent never blocks
        /// the model while holding the active slot.
        spawned: StdMutex<Vec<usize>>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        tid: usize,
        exec: StdArc<super::Execution>,
        slot: ResultSlot<T>,
        _marker: std::marker::PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Payload> {
            let (_, me) = current_expect("ScopedJoinHandle::join");
            join_registered(&self.exec, me, self.tid, &self.slot)
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let (exec, me) = current_expect("Scope::spawn");
            let tid = exec.register_thread();
            let slot: ResultSlot<T> = StdArc::new(StdMutex::new(None));
            {
                let exec = StdArc::clone(&exec);
                let slot = StdArc::clone(&slot);
                self.std.spawn(move || run_registered(&exec, tid, &slot, f));
            }
            self.spawned
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(tid);
            exec.yield_point(me);
            ScopedJoinHandle {
                tid,
                exec,
                slot,
                _marker: std::marker::PhantomData,
            }
        }
    }

    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        let (exec, me) = current_expect("thread::scope");
        std::thread::scope(|std_scope| {
            let scope = Scope {
                std: std_scope,
                spawned: StdMutex::new(Vec::new()),
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
            // Scheduler-join every child before the std scope's implicit
            // join: the children are real OS threads that only make progress
            // when scheduled, so the parent must keep driving the model.
            // Already-joined children finish instantly (join_thread is
            // idempotent on finished threads).
            let spawned: Vec<usize> = scope
                .spawned
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone();
            let mut child_panic: Option<Payload> = None;
            for tid in spawned {
                if let Err(p) = exec.join_thread(me, tid) {
                    child_panic.get_or_insert(p);
                }
            }
            match result {
                Ok(v) => match child_panic {
                    // Mirror std: a scoped thread whose panic was never
                    // consumed by an explicit join panics the scope.
                    Some(p) => std::panic::resume_unwind(p),
                    None => v,
                },
                Err(p) => std::panic::resume_unwind(p),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::{model, next_replay, thread, Choice};
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    #[test]
    fn dfs_prefix_enumeration() {
        let trace = [
            Choice {
                chosen: 0,
                options: 2,
            },
            Choice {
                chosen: 1,
                options: 2,
            },
        ];
        assert_eq!(next_replay(&trace), Some(vec![1]));
        let done = [Choice {
            chosen: 1,
            options: 2,
        }];
        assert_eq!(next_replay(&done), None);
    }

    #[test]
    fn counter_with_mutex_is_always_consistent() {
        model(|| {
            let counter = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let mut g = counter.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        });
    }

    #[test]
    fn explores_atomic_interleavings() {
        // A racy read-modify-write: under *some* schedule both threads read
        // 0 and the final value is 1, under others it is 2.  The model must
        // visit both outcomes — that is what "exploring interleavings"
        // means.
        let saw_lost_update = StdAtomicUsize::new(0);
        let saw_both = StdAtomicUsize::new(0);
        model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    thread::spawn(move || {
                        let read = v.load(Ordering::SeqCst);
                        v.store(read + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            match v.load(Ordering::SeqCst) {
                1 => {
                    saw_lost_update.fetch_add(1, StdOrdering::SeqCst);
                }
                2 => {
                    saw_both.fetch_add(1, StdOrdering::SeqCst);
                }
                other => panic!("impossible counter value {other}"),
            }
        });
        assert!(
            saw_lost_update.load(StdOrdering::SeqCst) > 0,
            "exploration missed the lost-update schedule"
        );
        assert!(
            saw_both.load(StdOrdering::SeqCst) > 0,
            "exploration missed the sequential schedule"
        );
    }

    #[test]
    fn detects_assertion_failures_in_some_schedule() {
        // The unsynchronized flag handoff fails only when the reader runs
        // before the writer; the model must find that schedule.
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let flag = Arc::new(AtomicUsize::new(0));
                let writer = {
                    let flag = Arc::clone(&flag);
                    thread::spawn(move || flag.store(1, Ordering::SeqCst))
                };
                assert_eq!(flag.load(Ordering::SeqCst), 1, "reader ran first");
                writer.join().unwrap();
            });
        });
        assert!(result.is_err(), "model missed the racy schedule");
    }

    #[test]
    fn detects_deadlock() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                // Waits forever: nobody notifies.
                let m = Mutex::new(());
                let cv = Condvar::new();
                let g = m.lock().unwrap();
                let _g = cv.wait(g).unwrap();
            });
        });
        let err = result.expect_err("missed deadlock");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn condvar_handoff_never_loses_wakeups() {
        model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = {
                let state = Arc::clone(&state);
                thread::spawn(move || {
                    let (m, cv) = &*state;
                    let mut ready = m.lock().unwrap();
                    *ready = true;
                    drop(ready);
                    cv.notify_one();
                })
            };
            let (m, cv) = &*state;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            setter.join().unwrap();
        });
    }

    #[test]
    fn scoped_threads_join_in_model() {
        model(|| {
            let items = [1u32, 2, 3];
            let total = thread::scope(|s| {
                let handles: Vec<_> = items.iter().map(|&v| s.spawn(move || v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
            });
            assert_eq!(total, 60);
        });
    }

    #[test]
    fn join_consumes_child_panics() {
        // A panic consumed through `join` must not fail the model.
        model(|| {
            let h = thread::spawn(|| panic!("expected"));
            assert!(h.join().is_err());
        });
    }
}
