//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small, deterministic property-based testing harness with the API surface
//! the workspace's test suites use: the [`proptest!`] macro, [`Strategy`]
//! combinators (`prop_map`, `prop_flat_map`), range / tuple / collection
//! strategies, [`any`], [`Just`], [`prop_oneof!`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports the
//! case number and the assertion message.  Cases are generated from a seed
//! derived from the test name, so failures are reproducible run to run.  The
//! case count defaults to 128 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary string (the test name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy (used by [`prop_oneof!`] to unify arm types).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed alternative strategies.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $as_u64:expr, $from_u64:expr);* $(;)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = $as_u64(self.end) - $as_u64(self.start);
                $from_u64($as_u64(self.start) + rng.below(span))
            }
        }
    )*};
}

impl_int_range_strategy! {
    u8 => (|v| v as u64), (|v| v as u8);
    u16 => (|v| v as u64), (|v| v as u16);
    u32 => (|v| v as u64), (|v| v as u32);
    u64 => (|v| v), (|v| v);
    usize => (|v| v as u64), (|v| v as usize);
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s of `element` values with a length
        /// drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `Vec` strategy with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Declares property tests: each function runs [`cases`] times over values
/// drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {$(
        #[test]
        fn $name() {
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::cases() {
                let ($($arg,)+) =
                    $crate::Strategy::generate(&($($strat,)+), &mut rng);
                let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        $crate::cases(),
                        msg
                    );
                }
            }
        }
    )+};
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq! failed:\n  left: {:?}\n right: {:?}",
                left, right
            ));
        }
    }};
}

/// Chooses uniformly among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, boxed, cases, Any, Arbitrary, Just, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let xs = prop::collection::vec(0usize..5, 2..9).generate(&mut rng);
            assert!((2..9).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_flat_map_and_oneof_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = prop_oneof![
            (1u32..5).prop_map(|v| v * 10),
            (1u32..5).prop_flat_map(|v| Just(v + 100)),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) || (101..105).contains(&v), "{v}");
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #[test]
        fn harness_runs_properties(v in 0u64..1000, xs in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v < 1000);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
