//! The 0/1 integer program and its exact solver.
//!
//! The paper formulates lineage strategy selection as an integer program
//! (solved with GLPK's simplex method) whose binaries `x_ij` say "operator i
//! stores lineage with strategy j".  Because the query processor uses the
//! best available strategy per query, the objective's query term takes a
//! minimum over the selected strategies — which makes the problem a
//! *multiple-choice* selection once candidate strategy subsets are
//! enumerated.  This module solves exactly that: every operator (group) must
//! pick exactly one candidate (a strategy subset folded into aggregate
//! costs), subject to global disk and runtime budgets.
//!
//! The solver is exact branch and bound with admissible lower bounds; the
//! search spaces here are tiny (tens of groups × tens of choices) and solve
//! in well under a millisecond, matching the paper's "about 1 ms".

/// One selectable choice (a set of storage strategies for one operator,
/// folded into aggregate costs).
#[derive(Clone, Debug, PartialEq)]
pub struct IlpChoice {
    /// Human-readable label (for reports).
    pub label: String,
    /// Workload-weighted expected query cost if this choice is selected.
    pub query_cost: f64,
    /// Disk bytes this choice consumes.
    pub disk: f64,
    /// Capture overhead (seconds) this choice adds to the workflow.
    pub runtime: f64,
}

/// A multiple-choice selection problem: pick exactly one choice per group.
#[derive(Clone, Debug)]
pub struct IlpProblem {
    /// One group of candidate choices per operator.
    pub groups: Vec<Vec<IlpChoice>>,
    /// `MaxDISK`: total disk budget in bytes.
    pub max_disk: f64,
    /// `MaxRUNTIME`: total capture-overhead budget in seconds.
    pub max_runtime: f64,
    /// Tie-breaking weight of the disk/runtime penalty term.
    pub epsilon: f64,
    /// Weight of runtime against disk inside the penalty term.
    pub beta: f64,
}

/// The solver's answer.
#[derive(Clone, Debug, PartialEq)]
pub struct IlpSolution {
    /// For each group, the index of the selected choice.
    pub selection: Vec<usize>,
    /// Objective value of the selection.
    pub objective: f64,
    /// Total disk consumed.
    pub total_disk: f64,
    /// Total runtime overhead consumed.
    pub total_runtime: f64,
    /// Whether the budgets could be met.  When `false` the selection is the
    /// minimum-disk fallback (every group's cheapest choice).
    pub feasible: bool,
}

impl IlpProblem {
    /// The objective contribution of one choice.
    fn choice_cost(&self, c: &IlpChoice) -> f64 {
        c.query_cost + self.epsilon * (c.disk + self.beta * c.runtime)
    }

    /// Solves the problem exactly.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty (every operator must at least offer a
    /// black-box choice).
    pub fn solve(&self) -> IlpSolution {
        assert!(
            self.groups.iter().all(|g| !g.is_empty()),
            "every group must have at least one choice"
        );
        let n = self.groups.len();
        if n == 0 {
            return IlpSolution {
                selection: vec![],
                objective: 0.0,
                total_disk: 0.0,
                total_runtime: 0.0,
                feasible: true,
            };
        }

        // Admissible lower bounds for pruning: for the remaining groups, the
        // best possible objective / smallest possible disk / runtime.
        let mut min_cost_suffix = vec![0.0; n + 1];
        let mut min_disk_suffix = vec![0.0; n + 1];
        let mut min_runtime_suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            let best_cost = self.groups[i]
                .iter()
                .map(|c| self.choice_cost(c))
                .fold(f64::INFINITY, f64::min);
            let best_disk = self.groups[i]
                .iter()
                .map(|c| c.disk)
                .fold(f64::INFINITY, f64::min);
            let best_runtime = self.groups[i]
                .iter()
                .map(|c| c.runtime)
                .fold(f64::INFINITY, f64::min);
            min_cost_suffix[i] = min_cost_suffix[i + 1] + best_cost;
            min_disk_suffix[i] = min_disk_suffix[i + 1] + best_disk;
            min_runtime_suffix[i] = min_runtime_suffix[i + 1] + best_runtime;
        }

        struct Search<'a> {
            problem: &'a IlpProblem,
            min_cost_suffix: Vec<f64>,
            min_disk_suffix: Vec<f64>,
            min_runtime_suffix: Vec<f64>,
            best_objective: f64,
            best_selection: Option<Vec<usize>>,
            current: Vec<usize>,
        }

        impl Search<'_> {
            fn dfs(&mut self, group: usize, cost: f64, disk: f64, runtime: f64) {
                let n = self.problem.groups.len();
                if group == n {
                    if cost < self.best_objective {
                        self.best_objective = cost;
                        self.best_selection = Some(self.current.clone());
                    }
                    return;
                }
                // Prune: even the best-case completion violates a budget or
                // cannot beat the incumbent.
                if disk + self.min_disk_suffix[group] > self.problem.max_disk + f64::EPSILON {
                    return;
                }
                if runtime + self.min_runtime_suffix[group]
                    > self.problem.max_runtime + f64::EPSILON
                {
                    return;
                }
                if cost + self.min_cost_suffix[group] >= self.best_objective {
                    return;
                }
                // Explore choices in increasing cost order so good incumbents
                // are found early.
                let mut order: Vec<usize> = (0..self.problem.groups[group].len()).collect();
                order.sort_by(|&a, &b| {
                    let ca = self.problem.choice_cost(&self.problem.groups[group][a]);
                    let cb = self.problem.choice_cost(&self.problem.groups[group][b]);
                    ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
                });
                for j in order {
                    let c = &self.problem.groups[group][j];
                    let new_disk = disk + c.disk;
                    let new_runtime = runtime + c.runtime;
                    if new_disk > self.problem.max_disk + f64::EPSILON
                        || new_runtime > self.problem.max_runtime + f64::EPSILON
                    {
                        continue;
                    }
                    self.current.push(j);
                    self.dfs(
                        group + 1,
                        cost + self.problem.choice_cost(c),
                        new_disk,
                        new_runtime,
                    );
                    self.current.pop();
                }
            }
        }

        let mut search = Search {
            problem: self,
            min_cost_suffix,
            min_disk_suffix,
            min_runtime_suffix,
            best_objective: f64::INFINITY,
            best_selection: None,
            current: Vec::with_capacity(n),
        };
        search.dfs(0, 0.0, 0.0, 0.0);

        match search.best_selection {
            Some(selection) => {
                let (disk, runtime) = self.totals(&selection);
                IlpSolution {
                    objective: search.best_objective,
                    selection,
                    total_disk: disk,
                    total_runtime: runtime,
                    feasible: true,
                }
            }
            None => {
                // Infeasible: fall back to every group's minimum-disk choice
                // (in practice the black-box choice, which costs nothing).
                let selection: Vec<usize> = self
                    .groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .enumerate()
                            .min_by(|(_, a), (_, b)| {
                                a.disk
                                    .partial_cmp(&b.disk)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .map(|(i, _)| i)
                            .unwrap_or(0)
                    })
                    .collect();
                let (disk, runtime) = self.totals(&selection);
                let objective = selection
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| self.choice_cost(&self.groups[i][j]))
                    .sum();
                IlpSolution {
                    selection,
                    objective,
                    total_disk: disk,
                    total_runtime: runtime,
                    feasible: false,
                }
            }
        }
    }

    /// Brute-force solver used to validate branch and bound in tests.
    pub fn solve_exhaustive(&self) -> Option<IlpSolution> {
        let n = self.groups.len();
        let mut best: Option<IlpSolution> = None;
        let mut selection = vec![0usize; n];
        loop {
            let (disk, runtime) = self.totals(&selection);
            if disk <= self.max_disk + f64::EPSILON && runtime <= self.max_runtime + f64::EPSILON {
                let objective = selection
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| self.choice_cost(&self.groups[i][j]))
                    .sum::<f64>();
                if best
                    .as_ref()
                    .map(|b| objective < b.objective)
                    .unwrap_or(true)
                {
                    best = Some(IlpSolution {
                        selection: selection.clone(),
                        objective,
                        total_disk: disk,
                        total_runtime: runtime,
                        feasible: true,
                    });
                }
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                selection[i] += 1;
                if selection[i] < self.groups[i].len() {
                    break;
                }
                selection[i] = 0;
                i += 1;
            }
        }
    }

    fn totals(&self, selection: &[usize]) -> (f64, f64) {
        let mut disk = 0.0;
        let mut runtime = 0.0;
        for (i, &j) in selection.iter().enumerate() {
            disk += self.groups[i][j].disk;
            runtime += self.groups[i][j].runtime;
        }
        (disk, runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(label: &str, query: f64, disk: f64, runtime: f64) -> IlpChoice {
        IlpChoice {
            label: label.to_string(),
            query_cost: query,
            disk,
            runtime,
        }
    }

    fn problem(groups: Vec<Vec<IlpChoice>>, max_disk: f64) -> IlpProblem {
        IlpProblem {
            groups,
            max_disk,
            max_runtime: f64::INFINITY,
            epsilon: 1e-9,
            beta: 1.0,
        }
    }

    #[test]
    fn picks_cheapest_query_within_budget() {
        let p = problem(
            vec![
                vec![
                    choice("blackbox", 10.0, 0.0, 0.0),
                    choice("full", 1.0, 100.0, 0.0),
                ],
                vec![
                    choice("blackbox", 5.0, 0.0, 0.0),
                    choice("full", 0.5, 100.0, 0.0),
                ],
            ],
            150.0,
        );
        let s = p.solve();
        assert!(s.feasible);
        // Only one operator can afford full lineage; the one with the bigger
        // improvement (10 -> 1) gets it.
        assert_eq!(s.selection, vec![1, 0]);
        assert!((s.total_disk - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_budget_takes_all_improvements() {
        let p = problem(
            vec![
                vec![
                    choice("bb", 10.0, 0.0, 0.0),
                    choice("full", 1.0, 100.0, 0.0),
                ],
                vec![choice("bb", 5.0, 0.0, 0.0), choice("full", 0.5, 100.0, 0.0)],
            ],
            1e12,
        );
        let s = p.solve();
        assert_eq!(s.selection, vec![1, 1]);
    }

    #[test]
    fn epsilon_prefers_less_storage_between_query_ties() {
        let p = IlpProblem {
            groups: vec![vec![
                choice("small", 1.0, 10.0, 0.0),
                choice("large", 1.0, 1000.0, 0.0),
            ]],
            max_disk: 1e9,
            max_runtime: f64::INFINITY,
            epsilon: 1e-6,
            beta: 1.0,
        };
        assert_eq!(p.solve().selection, vec![0]);
    }

    #[test]
    fn runtime_budget_is_enforced() {
        let p = IlpProblem {
            groups: vec![
                vec![choice("bb", 10.0, 0.0, 0.0), choice("full", 1.0, 0.0, 5.0)],
                vec![choice("bb", 10.0, 0.0, 0.0), choice("full", 1.0, 0.0, 5.0)],
            ],
            max_disk: f64::INFINITY,
            max_runtime: 5.0,
            epsilon: 0.0,
            beta: 1.0,
        };
        let s = p.solve();
        assert!(s.feasible);
        assert!(s.total_runtime <= 5.0 + 1e-9);
        assert_eq!(s.selection.iter().filter(|&&j| j == 1).count(), 1);
    }

    #[test]
    fn infeasible_falls_back_to_minimum_disk() {
        let p = problem(
            vec![vec![
                choice("huge", 1.0, 500.0, 0.0),
                choice("big", 2.0, 200.0, 0.0),
            ]],
            50.0,
        );
        let s = p.solve();
        assert!(!s.feasible);
        assert_eq!(s.selection, vec![1], "fallback picks the smaller choice");
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let p = problem(vec![], 0.0);
        let s = p.solve();
        assert!(s.feasible);
        assert!(s.selection.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn empty_group_panics() {
        let p = problem(vec![vec![]], 10.0);
        let _ = p.solve();
    }

    #[test]
    fn branch_and_bound_matches_exhaustive_search() {
        // A pseudo-random but deterministic family of problems.
        let mut seed = 0x9E37u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 1000) as f64
        };
        for trial in 0..25 {
            let groups: Vec<Vec<IlpChoice>> = (0..5)
                .map(|g| {
                    (0..4)
                        .map(|c| choice(&format!("g{g}c{c}"), next(), next(), next() / 100.0))
                        .collect()
                })
                .collect();
            let p = IlpProblem {
                groups,
                max_disk: 1500.0 + next(),
                max_runtime: 15.0 + next() / 50.0,
                epsilon: 1e-4,
                beta: 2.0,
            };
            let bb = p.solve();
            let exhaustive = p.solve_exhaustive();
            match exhaustive {
                Some(ex) => {
                    assert!(bb.feasible, "trial {trial}");
                    assert!(
                        (bb.objective - ex.objective).abs() < 1e-6,
                        "trial {trial}: bb={} exhaustive={}",
                        bb.objective,
                        ex.objective
                    );
                }
                None => assert!(!bb.feasible, "trial {trial}"),
            }
        }
    }
}
