//! # subzero-optimizer
//!
//! The lineage strategy optimizer (§VII of the paper).
//!
//! Given a workflow, the lineage statistics gathered by a profiling run, a
//! sample query workload, and user constraints on storage and runtime
//! overhead, the optimizer chooses — for every operator — the set of storage
//! strategies that minimises the expected cost of the query workload while
//! staying within the constraints.  The task is formulated as a 0/1 integer
//! program (one binary per `(operator, strategy)` pair) and solved exactly
//! with branch and bound; the problems are tiny (tens of operators × a
//! handful of candidate strategies), mirroring the paper's "the solver takes
//! about 1 ms".
//!
//! * [`cost`] — the cost model: per-(operator, strategy) estimates of disk
//!   footprint, capture overhead, and query cost, derived from capture
//!   statistics.
//! * [`workload`] — sample query workloads: per-operator access
//!   probabilities and direction mix.
//! * [`ilp`] — the 0/1 integer program and its exact solver.
//! * [`optimizer`] — candidate enumeration and the end-to-end
//!   [`Optimizer`] that produces a
//!   [`LineageStrategy`](subzero::model::LineageStrategy).
//!
//! The *query-time* optimizer of §VII-A — the component that falls back to
//! re-execution when materialised lineage would be slower — lives in the core
//! crate ([`subzero::query::QueryTimePolicy`]) because it runs inside the
//! query executor; it is re-exported here for discoverability.

pub mod cost;
pub mod ilp;
pub mod optimizer;
pub mod workload;

pub use cost::{CostModel, StrategyCosts};
pub use ilp::{IlpProblem, IlpSolution};
pub use optimizer::{OptimizationResult, Optimizer, OptimizerConfig};
pub use subzero::query::QueryTimePolicy;
pub use workload::{OpWorkload, QueryWorkload};
