//! Sample query workloads.
//!
//! The optimizer's objective weighs each operator by "the probability that a
//! lineage query in the workload accesses operator i", computed from a sample
//! workload the user expects to run (§VII).  Because a strategy that serves
//! backward queries may be useless for forward queries, the workload also
//! records the direction mix per operator.

use std::collections::HashMap;

use subzero::model::Direction;
use subzero::query::{LineageQuery, QuerySpec};
use subzero_engine::paths;
use subzero_engine::{OpId, Workflow};

/// Per-operator workload statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpWorkload {
    /// Probability that a query in the workload traverses this operator.
    pub access_probability: f64,
    /// Fraction of the traversals that are backward (the rest are forward).
    pub backward_fraction: f64,
    /// Average number of query cells flowing into the operator's step.
    pub avg_query_cells: f64,
}

impl OpWorkload {
    /// Fraction of traversals that are forward.
    pub fn forward_fraction(&self) -> f64 {
        1.0 - self.backward_fraction
    }
}

/// A sample lineage query workload, summarised per operator.
#[derive(Clone, Debug, Default)]
pub struct QueryWorkload {
    per_op: HashMap<OpId, OpWorkload>,
}

impl QueryWorkload {
    /// An empty workload (the optimizer falls back to black-box everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarises a set of weighted sample queries.
    ///
    /// Each `(query, weight)` pair contributes `weight` to every operator on
    /// its path; weights are normalised so that access probabilities are
    /// relative to the total workload weight.
    pub fn from_queries(queries: &[(LineageQuery, f64)]) -> Self {
        let total_weight: f64 = queries.iter().map(|(_, w)| *w).sum();
        let mut per_op: HashMap<OpId, (f64, f64, f64, f64)> = HashMap::new();
        // (weight, backward weight, cells*weight, hits)
        for (q, w) in queries {
            for &(op, _) in &q.path {
                let entry = per_op.entry(op).or_insert((0.0, 0.0, 0.0, 0.0));
                entry.0 += w;
                if q.direction == Direction::Backward {
                    entry.1 += w;
                }
                entry.2 += q.cells.len() as f64 * w;
                entry.3 += w;
            }
        }
        let mut out = QueryWorkload::new();
        for (op, (weight, bw, cells, hits)) in per_op {
            out.per_op.insert(
                op,
                OpWorkload {
                    access_probability: if total_weight > 0.0 {
                        weight / total_weight
                    } else {
                        0.0
                    },
                    backward_fraction: if weight > 0.0 { bw / weight } else { 0.0 },
                    avg_query_cells: if hits > 0.0 { cells / hits } else { 0.0 },
                },
            );
        }
        out
    }

    /// Summarises a set of weighted declarative [`QuerySpec`]s against a
    /// workflow: each spec's operator traversal is derived from the DAG
    /// (exactly as the query session will derive it at execution time, with
    /// multi-path fan-out at joins) and every traversed operator receives
    /// the spec's weight once.  Specs whose endpoints the DAG does not
    /// connect contribute nothing.
    pub fn from_specs(workflow: &Workflow, specs: &[(QuerySpec, f64)]) -> Self {
        let total_weight: f64 = specs.iter().map(|(_, w)| *w).sum();
        let mut per_op: HashMap<OpId, (f64, f64, f64, f64)> = HashMap::new();
        for (spec, w) in specs {
            let plan = match spec.direction {
                Direction::Backward => {
                    let paths::ArrayNode::Output(op) = spec.from else {
                        continue;
                    };
                    paths::backward_plan(workflow, op, &spec.to)
                }
                Direction::Forward => {
                    let paths::ArrayNode::Output(op) = spec.to else {
                        continue;
                    };
                    paths::forward_plan(workflow, &spec.from, op)
                }
            };
            let Ok(plan) = plan else { continue };
            for op in plan.ops() {
                let entry = per_op.entry(op).or_insert((0.0, 0.0, 0.0, 0.0));
                entry.0 += w;
                if spec.direction == Direction::Backward {
                    entry.1 += w;
                }
                entry.2 += spec.cells.len() as f64 * w;
                entry.3 += w;
            }
        }
        let mut out = QueryWorkload::new();
        for (op, (weight, bw, cells, hits)) in per_op {
            out.per_op.insert(
                op,
                OpWorkload {
                    access_probability: if total_weight > 0.0 {
                        weight / total_weight
                    } else {
                        0.0
                    },
                    backward_fraction: if weight > 0.0 { bw / weight } else { 0.0 },
                    avg_query_cells: if hits > 0.0 { cells / hits } else { 0.0 },
                },
            );
        }
        out
    }

    /// Uniform workload: every listed operator is accessed with probability 1
    /// with the given backward fraction and query size.
    pub fn uniform(
        ops: impl IntoIterator<Item = OpId>,
        backward_fraction: f64,
        avg_query_cells: f64,
    ) -> Self {
        let mut out = QueryWorkload::new();
        for op in ops {
            out.per_op.insert(
                op,
                OpWorkload {
                    access_probability: 1.0,
                    backward_fraction,
                    avg_query_cells,
                },
            );
        }
        out
    }

    /// The workload statistics for one operator (zero if never accessed).
    pub fn for_op(&self, op: OpId) -> OpWorkload {
        self.per_op.get(&op).copied().unwrap_or_default()
    }

    /// Operators that appear in the workload.
    pub fn ops(&self) -> Vec<OpId> {
        let mut v: Vec<OpId> = self.per_op.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Sets (or overrides) one operator's workload statistics.
    pub fn set(&mut self, op: OpId, workload: OpWorkload) {
        self.per_op.insert(op, workload);
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercises the legacy LineageQuery shim alongside specs
mod tests {
    use super::*;
    use subzero_array::Coord;

    #[test]
    fn from_specs_derives_ops_from_the_dag() {
        use std::sync::Arc;
        use subzero_array::{Array, ArrayRef, Shape};
        use subzero_engine::{LineageSink, Operator};

        struct Id;
        impl Operator for Id {
            fn name(&self) -> &str {
                "id"
            }
            fn output_shape(&self, s: &[Shape]) -> Shape {
                s[0]
            }
            fn run(
                &self,
                inputs: &[ArrayRef],
                _m: &[subzero_engine::LineageMode],
                _s: &mut dyn LineageSink,
            ) -> Array {
                (*inputs[0]).clone()
            }
        }

        // src -> a -> {b, c} -> d (diamond): a backward spec from d to the
        // source must weight all four operators once each.
        let mut b = subzero_engine::Workflow::builder("w");
        let a = b.add_source(Arc::new(Id), "src");
        let b1 = b.add_unary(Arc::new(Id), a);
        let c = b.add_unary(Arc::new(Id), a);
        let d = b.add_binary(
            Arc::new(subzero_engine::ops::Elementwise2::new(
                subzero_engine::ops::BinaryKind::Mean,
            )),
            b1,
            c,
        );
        let wf = b.build().unwrap();
        let spec = QuerySpec::backward_to_source(vec![Coord::d2(0, 0)], d, "src");
        let w = QueryWorkload::from_specs(&wf, &[(spec, 1.0)]);
        assert_eq!(w.ops(), vec![0, 1, 2, 3]);
        for op in 0..4 {
            assert!((w.for_op(op).access_probability - 1.0).abs() < 1e-9);
            assert!((w.for_op(op).backward_fraction - 1.0).abs() < 1e-9);
        }
        // A disconnected spec contributes nothing but keeps the total weight.
        let bad = QuerySpec::forward_from_source(vec![Coord::d2(0, 0)], "nope", d);
        let w = QueryWorkload::from_specs(&wf, &[(bad, 1.0)]);
        assert!(w.ops().is_empty());
    }

    #[test]
    fn from_queries_computes_probabilities_and_direction_mix() {
        let q_back = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(0, 0), (1, 0)]);
        let q_fwd = LineageQuery::forward(vec![Coord::d2(0, 0), Coord::d2(0, 1)], vec![(1, 0)]);
        let w = QueryWorkload::from_queries(&[(q_back, 1.0), (q_fwd, 1.0)]);

        let op0 = w.for_op(0);
        assert!((op0.access_probability - 0.5).abs() < 1e-9);
        assert!((op0.backward_fraction - 1.0).abs() < 1e-9);
        assert!((op0.avg_query_cells - 1.0).abs() < 1e-9);

        let op1 = w.for_op(1);
        assert!((op1.access_probability - 1.0).abs() < 1e-9);
        assert!((op1.backward_fraction - 0.5).abs() < 1e-9);
        assert!((op1.avg_query_cells - 1.5).abs() < 1e-9);
        assert!((op1.forward_fraction() - 0.5).abs() < 1e-9);

        assert_eq!(w.for_op(9), OpWorkload::default());
        assert_eq!(w.ops(), vec![0, 1]);
    }

    #[test]
    fn weighted_queries_shift_probabilities() {
        let q_a = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(0, 0)]);
        let q_b = LineageQuery::backward(vec![Coord::d2(0, 0)], vec![(1, 0)]);
        let w = QueryWorkload::from_queries(&[(q_a, 3.0), (q_b, 1.0)]);
        assert!((w.for_op(0).access_probability - 0.75).abs() < 1e-9);
        assert!((w.for_op(1).access_probability - 0.25).abs() < 1e-9);
    }

    #[test]
    fn uniform_workload() {
        let mut w = QueryWorkload::uniform(0..3, 0.5, 100.0);
        assert_eq!(w.ops(), vec![0, 1, 2]);
        assert_eq!(w.for_op(2).avg_query_cells, 100.0);
        w.set(
            5,
            OpWorkload {
                access_probability: 0.1,
                backward_fraction: 1.0,
                avg_query_cells: 4.0,
            },
        );
        assert_eq!(w.ops(), vec![0, 1, 2, 5]);
    }

    #[test]
    fn empty_workload_is_all_zero() {
        let w = QueryWorkload::new();
        assert!(w.ops().is_empty());
        assert_eq!(w.for_op(0).access_probability, 0.0);
    }
}
