//! Candidate enumeration and the end-to-end strategy optimizer.
//!
//! The optimizer turns *(workflow, profiling statistics, sample query
//! workload, user constraints)* into a [`LineageStrategy`]: for every
//! operator, the set of storage strategies that minimises expected query cost
//! within the disk/runtime budgets.  It follows the paper's §VII recipe:
//!
//! * mapping functions are preferred over every other class of lineage, so
//!   mapping operators are assigned `Map` unconditionally;
//! * strategies that cannot serve any query in the workload (e.g. a
//!   forward-optimized layout when the workload only contains backward
//!   queries) are pruned heuristically;
//! * the remaining candidates form a 0/1 program solved exactly
//!   ([`IlpProblem`]);
//! * an operator may be given *several* strategies (e.g. one backward- and
//!   one forward-optimized store) when the workload mixes directions and the
//!   budget allows it;
//! * the user may pin specific operators to specific strategies before the
//!   optimizer runs.

use std::collections::HashMap;

use subzero::model::{LineageStrategy, StorageStrategy};
use subzero::runtime::OperatorLineageStats;
use subzero_engine::{LineageMode, OpId, OperatorExt, Workflow};

use crate::cost::{CostModel, StrategyCosts};
use crate::ilp::{IlpChoice, IlpProblem};
use crate::workload::QueryWorkload;

/// User-facing optimizer constraints and weights.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerConfig {
    /// `MaxDISK`: lineage storage budget in bytes.
    pub max_disk_bytes: f64,
    /// `MaxRUNTIME`: capture-overhead budget in seconds.
    pub max_runtime_secs: f64,
    /// Weight of runtime against disk inside the tie-breaking penalty.
    pub beta: f64,
    /// Magnitude of the tie-breaking penalty (small; a large value behaves
    /// like shrinking the budgets).
    pub epsilon: f64,
    /// Maximum number of stored strategies per operator (the paper's
    /// configurations use at most two: one per query direction).
    pub max_strategies_per_op: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_disk_bytes: f64::INFINITY,
            max_runtime_secs: f64::INFINITY,
            beta: 1.0,
            epsilon: 1e-12,
            max_strategies_per_op: 2,
        }
    }
}

impl OptimizerConfig {
    /// A configuration with a disk budget in megabytes and no runtime bound —
    /// the knob varied in the paper's Figure 7 (`SubZero-X MB`).
    pub fn with_disk_budget_mb(mb: f64) -> Self {
        OptimizerConfig {
            max_disk_bytes: mb * 1024.0 * 1024.0,
            ..Default::default()
        }
    }
}

/// The chosen strategies for one operator, with their predicted costs.
#[derive(Clone, Debug)]
pub struct OpChoice {
    /// The operator.
    pub op_id: OpId,
    /// The storage strategies assigned to it.
    pub strategies: Vec<StorageStrategy>,
    /// Predicted disk bytes for the assignment.
    pub disk_bytes: f64,
    /// Predicted capture overhead in seconds.
    pub runtime_secs: f64,
    /// Predicted workload-weighted query cost in seconds.
    pub query_secs: f64,
}

/// The optimizer's output.
#[derive(Clone, Debug)]
pub struct OptimizationResult {
    /// The workflow-level strategy to install on the SubZero runtime.
    pub strategy: LineageStrategy,
    /// Per-operator breakdown.
    pub per_op: Vec<OpChoice>,
    /// Total predicted lineage bytes.
    pub predicted_disk_bytes: f64,
    /// Total predicted capture overhead in seconds.
    pub predicted_runtime_secs: f64,
    /// Total predicted workload query cost in seconds.
    pub predicted_query_secs: f64,
    /// Whether the budgets could be met (when `false` the result is the
    /// all-black-box fallback).
    pub feasible: bool,
}

/// The lineage strategy optimizer.
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    config: OptimizerConfig,
    cost_model: CostModel,
    user_fixed: HashMap<OpId, Vec<StorageStrategy>>,
}

impl Optimizer {
    /// Creates an optimizer with the given constraints and the default cost
    /// model.
    pub fn new(config: OptimizerConfig) -> Self {
        Optimizer {
            config,
            cost_model: CostModel::default(),
            user_fixed: HashMap::new(),
        }
    }

    /// Overrides the cost model calibration.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Pins an operator to a user-specified strategy set; the optimizer will
    /// not consider alternatives for it (but its costs still count toward the
    /// budgets).
    pub fn fix_operator(&mut self, op: OpId, strategies: Vec<StorageStrategy>) -> &mut Self {
        self.user_fixed.insert(op, strategies);
        self
    }

    /// The strategy to use for a *profiling* run: every non-mapping operator
    /// that can produce region pairs is asked for its cheapest pair-producing
    /// mode so that pair counts, fanin/fanout and payload sizes can be
    /// measured.  Mapping operators need no profiling.
    pub fn profiling_strategy(workflow: &Workflow) -> LineageStrategy {
        let mut s = LineageStrategy::new();
        for node in workflow.nodes() {
            let op = node.operator.as_ref();
            if op.is_mapping() {
                continue;
            }
            let modes = op.supported_modes();
            let strategy = if modes.contains(&LineageMode::Comp) {
                Some(StorageStrategy::composite_one())
            } else if modes.contains(&LineageMode::Pay) {
                Some(StorageStrategy::pay_one())
            } else if modes.contains(&LineageMode::Full) {
                Some(StorageStrategy::full_one())
            } else {
                None
            };
            if let Some(strategy) = strategy {
                s.set(node.id, vec![strategy]);
            }
        }
        s
    }

    /// Runs the optimizer.
    ///
    /// `stats` are the per-operator lineage statistics from a profiling run
    /// (operators absent from the map are treated as producing no lineage and
    /// are left on the default strategy).
    pub fn optimize(
        &self,
        workflow: &Workflow,
        stats: &HashMap<OpId, OperatorLineageStats>,
        workload: &QueryWorkload,
    ) -> OptimizationResult {
        // Build one ILP group per operator that has something to decide.
        let mut group_ops: Vec<OpId> = Vec::new();
        let mut groups: Vec<Vec<(Vec<StorageStrategy>, IlpChoice)>> = Vec::new();

        for node in workflow.nodes() {
            let op_id = node.id;
            let op = node.operator.as_ref();
            let op_workload = workload.for_op(op_id);
            let op_stats = stats
                .get(&op_id)
                .cloned()
                .unwrap_or_else(|| OperatorLineageStats {
                    op_name: op.name().to_string(),
                    ..Default::default()
                });
            let exec_time = op_stats.exec_time;

            // Mapping operators always use mapping lineage (free, answers
            // both directions); nothing to optimize.
            if op.is_mapping() && !self.user_fixed.contains_key(&op_id) {
                continue;
            }

            // Candidate strategy subsets.
            let candidate_sets: Vec<Vec<StorageStrategy>> = match self.user_fixed.get(&op_id) {
                Some(fixed) => vec![fixed.clone()],
                None => self.candidate_sets(
                    op,
                    op_workload.backward_fraction,
                    op_workload.access_probability,
                ),
            };

            let mut choices = Vec::with_capacity(candidate_sets.len());
            for set in candidate_sets {
                let mut disk = 0.0;
                let mut runtime = 0.0;
                // Query cost: the executor picks the best of the selected
                // strategies per direction, and can always fall back to
                // re-execution (black-box is implicitly available).
                let blackbox = self.cost_model.estimate(
                    &op_stats,
                    exec_time,
                    op_workload.avg_query_cells,
                    StorageStrategy::blackbox(),
                );
                let mut best_backward = blackbox.backward_query_secs;
                let mut best_forward = blackbox.forward_query_secs;
                let mut costs: Vec<StrategyCosts> = Vec::new();
                for s in &set {
                    let c = self.cost_model.estimate(
                        &op_stats,
                        exec_time,
                        op_workload.avg_query_cells,
                        *s,
                    );
                    disk += c.disk_bytes;
                    runtime += c.runtime_secs;
                    best_backward = best_backward.min(c.backward_query_secs);
                    best_forward = best_forward.min(c.forward_query_secs);
                    costs.push(c);
                }
                let query_cost = op_workload.access_probability
                    * (op_workload.backward_fraction * best_backward
                        + op_workload.forward_fraction() * best_forward);
                let label = if set.is_empty() {
                    "BlackBox".to_string()
                } else {
                    set.iter().map(|s| s.label()).collect::<Vec<_>>().join("+")
                };
                choices.push((
                    set,
                    IlpChoice {
                        label,
                        query_cost,
                        disk,
                        runtime,
                    },
                ));
            }
            group_ops.push(op_id);
            groups.push(choices);
        }

        let problem = IlpProblem {
            groups: groups
                .iter()
                .map(|g| g.iter().map(|(_, c)| c.clone()).collect())
                .collect(),
            max_disk: self.config.max_disk_bytes,
            max_runtime: self.config.max_runtime_secs,
            epsilon: self.config.epsilon,
            beta: self.config.beta,
        };
        let solution = problem.solve();

        // Assemble the workflow-level strategy: mapping operators keep their
        // default (mapping) behaviour by having no explicit assignment.
        let mut strategy = LineageStrategy::new();
        let mut per_op = Vec::new();
        let mut total_query = 0.0;
        for (g, (&op_id, choices)) in group_ops.iter().zip(groups.iter()).enumerate() {
            let j = solution.selection[g];
            let (set, ilp_choice) = &choices[j];
            if !set.is_empty() {
                strategy.set(op_id, set.clone());
            }
            total_query += ilp_choice.query_cost;
            per_op.push(OpChoice {
                op_id,
                strategies: set.clone(),
                disk_bytes: ilp_choice.disk,
                runtime_secs: ilp_choice.runtime,
                query_secs: ilp_choice.query_cost,
            });
        }

        OptimizationResult {
            strategy,
            per_op,
            predicted_disk_bytes: solution.total_disk,
            predicted_runtime_secs: solution.total_runtime,
            predicted_query_secs: total_query,
            feasible: solution.feasible,
        }
    }

    /// Enumerates the candidate strategy subsets for one (non-mapping)
    /// operator.
    fn candidate_sets(
        &self,
        op: &dyn subzero_engine::Operator,
        backward_fraction: f64,
        access_probability: f64,
    ) -> Vec<Vec<StorageStrategy>> {
        // The black-box (store nothing) choice is always available.
        let mut sets: Vec<Vec<StorageStrategy>> = vec![vec![]];
        if access_probability == 0.0 {
            // Never queried: storing lineage can only waste resources.
            return sets;
        }
        let modes = op.supported_modes();
        let mut backward_serving: Vec<StorageStrategy> = Vec::new();
        let mut forward_serving: Vec<StorageStrategy> = Vec::new();
        if modes.contains(&LineageMode::Comp) {
            backward_serving.push(StorageStrategy::composite_one());
            backward_serving.push(StorageStrategy::composite_many());
        }
        if modes.contains(&LineageMode::Pay) {
            backward_serving.push(StorageStrategy::pay_one());
            backward_serving.push(StorageStrategy::pay_many());
        }
        if modes.contains(&LineageMode::Full) {
            backward_serving.push(StorageStrategy::full_one());
            backward_serving.push(StorageStrategy::full_many());
            forward_serving.push(StorageStrategy::full_one_forward());
            forward_serving.push(StorageStrategy::full_many_forward());
        }
        // Heuristic pruning: drop layouts that no query in the workload can
        // use through its index.
        let has_backward = backward_fraction > 0.0;
        let has_forward = backward_fraction < 1.0;
        if !has_backward {
            backward_serving.clear();
        }
        if !has_forward {
            forward_serving.clear();
        }
        for s in backward_serving.iter().chain(forward_serving.iter()) {
            sets.push(vec![*s]);
        }
        // Pairs: one backward-serving plus one forward-serving store (the
        // paper's `FullBoth` / `PayBoth` configurations).
        if self.config.max_strategies_per_op >= 2 {
            for b in &backward_serving {
                for f in &forward_serving {
                    sets.push(vec![*b, *f]);
                }
            }
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use subzero::model::Direction;
    use subzero_array::{Array, ArrayRef, Coord, Shape};
    use subzero_engine::ops::{Elementwise1, UnaryKind};
    use subzero_engine::{LineageSink, OpMeta, Operator, Workflow};

    /// A UDF that supports payload and full lineage but has no mapping
    /// functions — the kind of operator the optimizer exists for.
    struct Udf;

    impl Operator for Udf {
        fn name(&self) -> &str {
            "udf"
        }
        fn output_shape(&self, s: &[Shape]) -> Shape {
            s[0]
        }
        fn supported_modes(&self) -> Vec<LineageMode> {
            vec![LineageMode::Full, LineageMode::Pay, LineageMode::Blackbox]
        }
        fn run(&self, inputs: &[ArrayRef], _m: &[LineageMode], _s: &mut dyn LineageSink) -> Array {
            (*inputs[0]).clone()
        }
        fn map_payload(
            &self,
            outcell: &Coord,
            _payload: &[u8],
            _i: usize,
            _meta: &OpMeta,
        ) -> Option<Vec<Coord>> {
            Some(vec![*outcell])
        }
    }

    fn workflow() -> Arc<Workflow> {
        let mut b = Workflow::builder("opt");
        let a = b.add_source(Arc::new(Elementwise1::new(UnaryKind::Scale(1.0))), "x");
        let _u = b.add_unary(Arc::new(Udf), a);
        Arc::new(b.build().unwrap())
    }

    fn stats_for_udf(pairs: u64, fanin: u64, payload: u64) -> HashMap<OpId, OperatorLineageStats> {
        let mut m = HashMap::new();
        m.insert(
            1,
            OperatorLineageStats {
                op_name: "udf".into(),
                pairs,
                out_cells: pairs,
                in_cells: pairs * fanin,
                payload_bytes: pairs * payload,
                exec_time: Duration::from_millis(200),
                capture_time: Duration::ZERO,
            },
        );
        m.insert(
            0,
            OperatorLineageStats {
                op_name: "scale".into(),
                exec_time: Duration::from_millis(1),
                ..Default::default()
            },
        );
        m
    }

    #[test]
    fn mapping_operators_are_left_alone() {
        let wf = workflow();
        let opt = Optimizer::new(OptimizerConfig::default());
        let workload = QueryWorkload::uniform([0, 1], 1.0, 10.0);
        let result = opt.optimize(&wf, &stats_for_udf(10_000, 8, 4), &workload);
        assert!(result.feasible);
        // Operator 0 (scale) is a mapping operator: no explicit assignment.
        assert!(result.strategy.get(0).is_none());
        // The UDF gets a backward-optimized materialised strategy.
        let udf = result.strategy.get(1).expect("udf assigned");
        assert!(udf.iter().all(|s| s.stores_pairs()));
        assert!(udf.iter().any(|s| s.serves(Direction::Backward)));
    }

    #[test]
    fn tiny_disk_budget_forces_blackbox() {
        let wf = workflow();
        let opt = Optimizer::new(OptimizerConfig {
            max_disk_bytes: 10.0,
            ..Default::default()
        });
        let workload = QueryWorkload::uniform([0, 1], 1.0, 10.0);
        let result = opt.optimize(&wf, &stats_for_udf(1_000_000, 8, 4), &workload);
        assert!(result.feasible);
        assert!(result.strategy.get(1).is_none(), "UDF stays black-box");
        assert_eq!(result.predicted_disk_bytes, 0.0);
    }

    #[test]
    fn larger_budgets_store_more_and_predict_cheaper_queries() {
        let wf = workflow();
        let stats = stats_for_udf(500_000, 8, 4);
        let workload = QueryWorkload::uniform([0, 1], 0.5, 10.0);
        let mut previous_query = f64::INFINITY;
        let mut previous_disk = -1.0;
        for mb in [0.001, 1.0, 10.0, 1000.0] {
            let opt = Optimizer::new(OptimizerConfig::with_disk_budget_mb(mb));
            let r = opt.optimize(&wf, &stats, &workload);
            assert!(r.feasible);
            assert!(r.predicted_disk_bytes <= mb * 1024.0 * 1024.0 + 1.0);
            assert!(r.predicted_disk_bytes >= previous_disk);
            assert!(r.predicted_query_secs <= previous_query + 1e-12);
            previous_query = r.predicted_query_secs;
            previous_disk = r.predicted_disk_bytes;
        }
    }

    #[test]
    fn mixed_workload_with_budget_stores_both_directions() {
        let wf = workflow();
        let stats = stats_for_udf(100_000, 4, 4);
        let workload = QueryWorkload::uniform([1], 0.5, 10.0);
        let opt = Optimizer::new(OptimizerConfig::default());
        let r = opt.optimize(&wf, &stats, &workload);
        let udf = r.strategy.get(1).expect("udf assigned");
        assert!(udf.iter().any(|s| s.serves(Direction::Backward)));
        assert!(udf.iter().any(|s| s.serves(Direction::Forward)));
    }

    #[test]
    fn backward_only_workload_prunes_forward_layouts() {
        let wf = workflow();
        let stats = stats_for_udf(100_000, 4, 4);
        let workload = QueryWorkload::uniform([1], 1.0, 10.0);
        let opt = Optimizer::new(OptimizerConfig::default());
        let r = opt.optimize(&wf, &stats, &workload);
        let udf = r.strategy.get(1).expect("udf assigned");
        assert!(udf.iter().all(|s| s.serves(Direction::Backward)));
        assert!(!udf.iter().any(|s| s.direction == Direction::Forward));
    }

    #[test]
    fn unqueried_operators_store_nothing() {
        let wf = workflow();
        let stats = stats_for_udf(100_000, 4, 4);
        // Workload never touches the UDF.
        let workload = QueryWorkload::uniform([0], 1.0, 10.0);
        let opt = Optimizer::new(OptimizerConfig::default());
        let r = opt.optimize(&wf, &stats, &workload);
        assert!(r.strategy.get(1).is_none());
    }

    #[test]
    fn user_fixed_strategies_are_respected() {
        let wf = workflow();
        let stats = stats_for_udf(100_000, 4, 4);
        let workload = QueryWorkload::uniform([1], 1.0, 10.0);
        let mut opt = Optimizer::new(OptimizerConfig::default());
        opt.fix_operator(1, vec![StorageStrategy::full_many()]);
        let r = opt.optimize(&wf, &stats, &workload);
        assert_eq!(r.strategy.get(1).unwrap(), &[StorageStrategy::full_many()]);
    }

    #[test]
    fn profiling_strategy_targets_non_mapping_operators() {
        let wf = workflow();
        let profile = Optimizer::profiling_strategy(&wf);
        assert!(profile.get(0).is_none(), "mapping op needs no profiling");
        let udf = profile.get(1).expect("udf profiled");
        assert_eq!(udf, &[StorageStrategy::pay_one()]);
    }
}
