//! The cost model.
//!
//! For every `(operator, strategy)` pair the optimizer needs three numbers
//! (§VII): the disk overhead `disk_ij`, the runtime (capture) overhead
//! `run_ij`, and the average query cost `q_ij`.  This module derives them
//! analytically from the lineage statistics gathered during a profiling run
//! — pair counts, average fanin/fanout, payload sizes and operator execution
//! times — using calibration constants that reflect the encodings in
//! `subzero::encoder`.
//!
//! Exact byte counts do not matter; what matters is that the model preserves
//! the *orderings* the paper's experiments show (FullOne vs FullMany
//! crossover with fanout, payload ≪ full lineage, black-box ≈ free storage
//! but expensive queries), so that the ILP picks the same kinds of strategies
//! the paper's optimizer does.

use std::time::Duration;

use subzero::model::{Direction, Granularity, StorageStrategy};
use subzero::runtime::OperatorLineageStats;
use subzero_engine::LineageMode;

/// Cost estimates for one `(operator, strategy)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StrategyCosts {
    /// Estimated lineage bytes stored.
    pub disk_bytes: f64,
    /// Estimated capture overhead added to the workflow, in seconds.
    pub runtime_secs: f64,
    /// Estimated cost of answering one backward query step, in seconds.
    pub backward_query_secs: f64,
    /// Estimated cost of answering one forward query step, in seconds.
    pub forward_query_secs: f64,
}

impl StrategyCosts {
    /// The query cost for a workload with the given backward fraction.
    pub fn query_secs(&self, backward_fraction: f64) -> f64 {
        self.backward_query_secs * backward_fraction
            + self.forward_query_secs * (1.0 - backward_fraction)
    }
}

/// Calibration constants of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Bytes per stored coordinate after packing/delta encoding.
    pub bytes_per_cell: f64,
    /// Fixed bytes per hash entry (key, header, allocator slack).
    pub bytes_per_entry: f64,
    /// Bytes per R-tree node entry.
    pub bytes_per_index_entry: f64,
    /// Seconds to encode and store one cell during capture.
    pub write_secs_per_cell: f64,
    /// Seconds to fetch and decode one hash entry at query time.
    pub entry_secs: f64,
    /// Seconds to evaluate a mapping function for one cell.
    pub map_secs: f64,
    /// Multiplier applied to the operator execution time when estimating the
    /// cost of re-running it in tracing mode (tracing emits lineage, so it is
    /// somewhat slower than the plain run).
    pub reexec_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bytes_per_cell: 3.0,
            bytes_per_entry: 24.0,
            bytes_per_index_entry: 48.0,
            write_secs_per_cell: 120e-9,
            entry_secs: 2.5e-6,
            map_secs: 0.4e-6,
            reexec_factor: 1.6,
        }
    }
}

impl CostModel {
    /// Estimates the costs of storing (and querying) `strategy` for an
    /// operator whose profiling statistics are `stats`.
    ///
    /// `exec_time` is the operator's plain execution time (the black-box
    /// re-execution baseline) and `avg_query_cells` the expected number of
    /// query cells flowing into the operator per query step.
    pub fn estimate(
        &self,
        stats: &OperatorLineageStats,
        exec_time: Duration,
        avg_query_cells: f64,
        strategy: StorageStrategy,
    ) -> StrategyCosts {
        let pairs = stats.pairs as f64;
        let out_cells = stats.out_cells as f64;
        let in_cells = stats.in_cells as f64;
        let payload_per_pair = if stats.pairs > 0 {
            stats.payload_bytes as f64 / pairs
        } else {
            0.0
        };
        let reexec_secs = exec_time.as_secs_f64() * self.reexec_factor;
        let query_cells = avg_query_cells.max(1.0);

        match strategy.mode {
            LineageMode::Blackbox => StrategyCosts {
                disk_bytes: 0.0,
                runtime_secs: 0.0,
                backward_query_secs: reexec_secs,
                forward_query_secs: reexec_secs,
            },
            LineageMode::Map => StrategyCosts {
                disk_bytes: 0.0,
                runtime_secs: 0.0,
                backward_query_secs: query_cells * self.map_secs,
                forward_query_secs: query_cells * self.map_secs,
            },
            LineageMode::Full => {
                let (entries, key_cells) = match strategy.direction {
                    Direction::Backward => (out_cells, out_cells),
                    Direction::Forward => (in_cells, in_cells),
                };
                let (disk, indexed_entries) = match strategy.granularity {
                    Granularity::One => (
                        // One hash entry per key cell, plus one shared entry
                        // per pair holding the value-side cells.
                        entries * self.bytes_per_entry
                            + pairs * self.bytes_per_entry
                            + match strategy.direction {
                                Direction::Backward => in_cells * self.bytes_per_cell,
                                Direction::Forward => out_cells * self.bytes_per_cell,
                            },
                        entries,
                    ),
                    Granularity::Many => (
                        // One hash entry per pair holding both sides, plus the
                        // R-tree over the key cells.
                        pairs * self.bytes_per_entry
                            + (in_cells + out_cells) * self.bytes_per_cell
                            + pairs * self.bytes_per_index_entry,
                        pairs,
                    ),
                };
                let runtime = (key_cells + in_cells + out_cells) * self.write_secs_per_cell;
                // Served direction: indexed lookups proportional to the query
                // size.  Mismatched direction: a scan of every entry.
                let serving_cost = query_cells.min(indexed_entries.max(1.0)) * self.entry_secs;
                let scan_cost = indexed_entries.max(1.0) * self.entry_secs;
                let (backward, forward) = match strategy.direction {
                    Direction::Backward => (serving_cost, scan_cost),
                    Direction::Forward => (scan_cost, serving_cost),
                };
                StrategyCosts {
                    disk_bytes: disk,
                    runtime_secs: runtime,
                    backward_query_secs: backward,
                    forward_query_secs: forward,
                }
            }
            LineageMode::Pay | LineageMode::Comp => {
                let (disk, indexed_entries) = match strategy.granularity {
                    Granularity::One => (
                        out_cells * (self.bytes_per_entry + payload_per_pair),
                        out_cells,
                    ),
                    Granularity::Many => (
                        pairs * (self.bytes_per_entry + payload_per_pair)
                            + out_cells * self.bytes_per_cell
                            + pairs * self.bytes_per_index_entry,
                        pairs,
                    ),
                };
                let runtime = out_cells * self.write_secs_per_cell
                    + pairs * payload_per_pair * self.write_secs_per_cell;
                // Payload lineage serves backward queries with indexed
                // lookups (plus a map_p evaluation per hit); forward queries
                // must iterate every stored pair.
                let backward = query_cells.min(indexed_entries.max(1.0)) * self.entry_secs
                    + query_cells * self.map_secs;
                let forward = indexed_entries.max(1.0) * (self.entry_secs + self.map_secs);
                StrategyCosts {
                    disk_bytes: disk,
                    runtime_secs: runtime,
                    backward_query_secs: backward,
                    forward_query_secs: forward,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: u64, fanout: u64, fanin: u64, payload: u64) -> OperatorLineageStats {
        OperatorLineageStats {
            op_name: "udf".to_string(),
            pairs,
            out_cells: pairs * fanout,
            in_cells: pairs * fanin,
            payload_bytes: pairs * payload,
            exec_time: Duration::from_millis(5),
            capture_time: Duration::ZERO,
        }
    }

    #[test]
    fn blackbox_is_free_to_store_but_expensive_to_query() {
        let m = CostModel::default();
        let s = stats(10_000, 1, 9, 0);
        let c = m.estimate(
            &s,
            Duration::from_millis(50),
            100.0,
            StorageStrategy::blackbox(),
        );
        assert_eq!(c.disk_bytes, 0.0);
        assert_eq!(c.runtime_secs, 0.0);
        assert!(c.backward_query_secs > 0.05);
        let full = m.estimate(
            &s,
            Duration::from_millis(50),
            100.0,
            StorageStrategy::full_one(),
        );
        assert!(full.backward_query_secs < c.backward_query_secs);
    }

    #[test]
    fn mapping_is_cheapest_overall() {
        let m = CostModel::default();
        let s = stats(10_000, 1, 9, 0);
        let map = m.estimate(
            &s,
            Duration::from_millis(50),
            100.0,
            StorageStrategy::mapping(),
        );
        for other in [
            StorageStrategy::blackbox(),
            StorageStrategy::full_one(),
            StorageStrategy::full_many(),
            StorageStrategy::pay_one(),
        ] {
            let c = m.estimate(&s, Duration::from_millis(50), 100.0, other);
            assert!(map.disk_bytes <= c.disk_bytes);
            assert!(map.query_secs(0.5) <= c.query_secs(0.5) + 1e-12);
        }
    }

    #[test]
    fn payload_is_smaller_than_full_for_high_fanin() {
        let m = CostModel::default();
        // Fanin 49 (the cosmic-ray detector) with a 4-byte payload.
        let s = stats(5_000, 1, 49, 4);
        let pay = m.estimate(
            &s,
            Duration::from_millis(20),
            50.0,
            StorageStrategy::pay_one(),
        );
        let full = m.estimate(
            &s,
            Duration::from_millis(20),
            50.0,
            StorageStrategy::full_one(),
        );
        assert!(pay.disk_bytes < full.disk_bytes);
        assert!(pay.runtime_secs < full.runtime_secs);
    }

    #[test]
    fn full_one_vs_full_many_crossover_with_fanout() {
        let m = CostModel::default();
        // Low fanout: FullOne avoids the spatial index and is smaller.
        let low = stats(10_000, 1, 5, 0);
        let one = m.estimate(
            &low,
            Duration::from_millis(10),
            100.0,
            StorageStrategy::full_one(),
        );
        let many = m.estimate(
            &low,
            Duration::from_millis(10),
            100.0,
            StorageStrategy::full_many(),
        );
        assert!(one.disk_bytes < many.disk_bytes);
        // High fanout: duplicating a hash entry per output cell dominates and
        // FullMany wins.
        let high = stats(1_000, 100, 5, 0);
        let one = m.estimate(
            &high,
            Duration::from_millis(10),
            100.0,
            StorageStrategy::full_one(),
        );
        let many = m.estimate(
            &high,
            Duration::from_millis(10),
            100.0,
            StorageStrategy::full_many(),
        );
        assert!(many.disk_bytes < one.disk_bytes);
    }

    #[test]
    fn direction_determines_which_queries_are_served() {
        let m = CostModel::default();
        let s = stats(100_000, 1, 3, 0);
        let bwd = m.estimate(
            &s,
            Duration::from_millis(10),
            10.0,
            StorageStrategy::full_one(),
        );
        let fwd = m.estimate(
            &s,
            Duration::from_millis(10),
            10.0,
            StorageStrategy::full_one_forward(),
        );
        assert!(bwd.backward_query_secs < bwd.forward_query_secs);
        assert!(fwd.forward_query_secs < fwd.backward_query_secs);
        // The mismatched directions are dramatically (not marginally) slower.
        assert!(bwd.forward_query_secs / bwd.backward_query_secs > 100.0);
    }

    #[test]
    fn query_secs_mixes_directions() {
        let c = StrategyCosts {
            disk_bytes: 0.0,
            runtime_secs: 0.0,
            backward_query_secs: 1.0,
            forward_query_secs: 3.0,
        };
        assert!((c.query_secs(1.0) - 1.0).abs() < 1e-12);
        assert!((c.query_secs(0.0) - 3.0).abs() < 1e-12);
        assert!((c.query_secs(0.5) - 2.0).abs() < 1e-12);
    }
}
