//! Stress tests for concurrent `FileBackend` access.
//!
//! The capture pipeline's flushers append lineage batches (`put_batch`)
//! while query sessions stream the same databases back (`scan_batch`,
//! point `get`s) through the backend's shared cursor-less reader handle.
//! These tests drive many reader threads against an interleaved writer at
//! full speed so the ThreadSanitizer CI lane (`ci.yml` `tsan` job) can
//! observe the positioned-read paths under real contention — several
//! threads issuing overlapping `pread`s on one `File` — and so the
//! consistency invariants (a reader never sees a torn record or a partial
//! batch) hold under every interleaving the scheduler produces.
//!
//! Writer exclusivity mirrors production: flushers mutate a store only
//! under its shard lock, so the test arbitrates `put_batch` vs readers
//! with an `RwLock` and lets everything *inside* the read side race.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::RwLock;

use subzero_store::kv::{FileBackend, KvBackend, ScanMode};

/// Batches appended by the writer; readers assert they only ever observe
/// whole batches.
const BATCHES: usize = 24;
/// Records per batch.
const BATCH: usize = 32;
/// Concurrent reader threads racing the scans.
const READERS: usize = 4;

fn record(batch: usize, i: usize) -> (Vec<u8>, Vec<u8>) {
    let id = (batch * BATCH + i) as u32;
    // Value derives from the key so torn reads are detectable.
    let val: Vec<u8> = id.to_be_bytes().iter().cycle().take(64).copied().collect();
    (id.to_be_bytes().to_vec(), val)
}

#[test]
fn readers_race_scan_batch_against_put_batch_flushes() {
    let dir = std::env::temp_dir().join(format!("subzero-kv-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stress.kv");
    let _ = std::fs::remove_file(&path);

    let backend = RwLock::new(FileBackend::open(&path).unwrap());
    let done = AtomicBool::new(false);
    let max_seen = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let backend = &backend;
        let done = &done;
        let max_seen = &max_seen;

        for reader in 0..READERS {
            scope.spawn(move || {
                let mut last_count = 0usize;
                while !done.load(Ordering::Acquire) || last_count < BATCHES * BATCH {
                    let guard = backend.read().unwrap();
                    // Full streamed scan: whole batches only, values intact.
                    let mut count = 0usize;
                    guard.scan_batch(7, &mut |pairs| {
                        for (key, value) in pairs {
                            let expected: Vec<u8> = key.iter().cycle().take(64).copied().collect();
                            assert_eq!(value, &expected, "torn record for key {key:?}");
                        }
                        count += pairs.len();
                    });
                    assert_eq!(count % BATCH, 0, "reader saw a partial batch: {count}");
                    assert!(
                        count >= last_count,
                        "scan went backwards: {count} < {last_count}"
                    );
                    last_count = count;
                    // Point reads race the other readers' scans on the same
                    // shared reader handle.
                    if count > 0 {
                        let i = (reader * 13) % count;
                        let (key, val) = record(i / BATCH, i % BATCH);
                        assert_eq!(guard.get(&key).as_deref(), Some(&val[..]));
                    }
                    max_seen.fetch_max(count, Ordering::Release);
                }
            });
        }

        scope.spawn(move || {
            for batch in 0..BATCHES {
                let items: Vec<_> = (0..BATCH).map(|i| record(batch, i)).collect();
                backend.write().unwrap().put_batch(items);
                // Brief yield so readers interleave between flushes.
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    assert_eq!(
        max_seen.load(Ordering::Acquire),
        BATCHES * BATCH,
        "readers never observed the fully-flushed backend"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mmap_and_pread_scans_agree_under_flush_race() {
    // Same reader-vs-flush race as above, but run against two backends over
    // identical data pinned to the two scan modes.  Every observation a
    // reader makes must be identical between the mmap'd read path and the
    // pread fallback — same batches, same bytes, in the same order — so the
    // zero-copy region can never serve a view the portable path wouldn't.
    let dir = std::env::temp_dir().join(format!("subzero-kv-stress-modes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mmap_path = dir.join("race-mmap.kv");
    let pread_path = dir.join("race-pread.kv");
    let _ = std::fs::remove_file(&mmap_path);
    let _ = std::fs::remove_file(&pread_path);

    let mut mmap = FileBackend::open(&mmap_path).unwrap();
    mmap.set_scan_mode(ScanMode::Mmap);
    let mut pread = FileBackend::open(&pread_path).unwrap();
    pread.set_scan_mode(ScanMode::Pread);
    // One lock over the pair: the writer appends each batch to both backends
    // atomically, so readers always compare like-for-like states.
    let backends = RwLock::new((mmap, pread));
    let done = AtomicBool::new(false);
    let max_seen = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let backends = &backends;
        let done = &done;
        let max_seen = &max_seen;

        for reader in 0..READERS {
            scope.spawn(move || {
                let mut last_count = 0usize;
                while !done.load(Ordering::Acquire) || last_count < BATCHES * BATCH {
                    let guard = backends.read().unwrap();
                    let (m, p) = &*guard;
                    let mut via_mmap: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                    m.scan_slices(7, &mut |pairs| {
                        via_mmap.extend(pairs.iter().map(|&(k, v)| (k.to_vec(), v.to_vec())));
                    });
                    let mut via_pread: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                    p.scan_slices(7, &mut |pairs| {
                        via_pread.extend(pairs.iter().map(|&(k, v)| (k.to_vec(), v.to_vec())));
                    });
                    assert_eq!(via_mmap, via_pread, "scan modes diverged");
                    let count = via_mmap.len();
                    assert_eq!(count % BATCH, 0, "reader saw a partial batch: {count}");
                    assert!(
                        count >= last_count,
                        "scan went backwards: {count} < {last_count}"
                    );
                    last_count = count;
                    // Point reads must agree between the modes too.
                    if count > 0 {
                        let i = (reader * 13) % count;
                        let (key, val) = record(i / BATCH, i % BATCH);
                        assert_eq!(m.get(&key).as_deref(), Some(&val[..]));
                        assert_eq!(p.get(&key).as_deref(), Some(&val[..]));
                    }
                    max_seen.fetch_max(count, Ordering::Release);
                }
            });
        }

        scope.spawn(move || {
            for batch in 0..BATCHES {
                let items: Vec<_> = (0..BATCH).map(|i| record(batch, i)).collect();
                let mut guard = backends.write().unwrap();
                guard.0.put_batch(items.clone());
                guard.1.put_batch(items);
                drop(guard);
                std::thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    assert_eq!(
        max_seen.load(Ordering::Acquire),
        BATCHES * BATCH,
        "readers never observed the fully-flushed backends"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn point_gets_race_scans_on_a_fully_written_backend() {
    // All-reader contention: every thread hammers the single shared reader
    // handle with interleaved positioned reads — the pattern the TSan lane
    // must prove race-free without any write-side arbitration in the mix.
    let dir = std::env::temp_dir().join(format!("subzero-kv-stress-ro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stress-ro.kv");
    let _ = std::fs::remove_file(&path);

    let mut backend = FileBackend::open(&path).unwrap();
    let items: Vec<_> = (0..BATCHES)
        .flat_map(|b| (0..BATCH).map(move |i| record(b, i)))
        .collect();
    backend.put_batch(items);
    let backend = &backend;

    std::thread::scope(|scope| {
        for t in 0..READERS * 2 {
            scope.spawn(move || {
                for round in 0..8 {
                    if (t + round) % 2 == 0 {
                        let mut count = 0usize;
                        backend.scan_batch(11, &mut |pairs| count += pairs.len());
                        assert_eq!(count, BATCHES * BATCH);
                    } else {
                        for i in (t..BATCHES * BATCH).step_by(READERS * 2) {
                            let (key, val) = record(i / BATCH, i % BATCH);
                            assert_eq!(backend.get(&key).as_deref(), Some(&val[..]));
                        }
                    }
                }
            });
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}
