//! Property tests for write-ahead-log replay: under arbitrary torn tails
//! (truncation at any byte) and arbitrary single-bit corruption, replay
//! must never panic, must accept exactly a prefix of the original records,
//! and recovery planning must only treat transactions whose commit record
//! survived as committed.

use std::collections::HashSet;

use proptest::prelude::*;
use subzero_store::wal::{plan_recovery, replay, WalEntry, WalRecord, WriteAheadLog};
use subzero_store::{WalFileLen, WAL_FILE};

fn entry(seed: u64) -> WalEntry {
    WalEntry {
        run_id: seed % 7,
        op_id: (seed % 11) as u32,
        op_name: format!("op{}", seed % 5),
        input_versions: vec![seed, seed.wrapping_mul(3)],
        output_version: seed.wrapping_add(1),
        elapsed_us: seed % 1000,
    }
}

fn files_of(seed: u64, n: usize) -> Vec<WalFileLen> {
    (0..n)
        .map(|i| {
            (
                format!("store{}.kv", (seed as usize).wrapping_add(i) % 4),
                seed.wrapping_mul(10).wrapping_add(i as u64),
            )
        })
        .collect()
}

/// One arbitrary record from a small generator alphabet.
fn record_of(kind: u8, seed: u64) -> WalRecord {
    match kind % 4 {
        0 => WalRecord::Exec(entry(seed)),
        1 => WalRecord::Prepare {
            txn: seed % 9 + 1,
            files: files_of(seed, (seed % 3) as usize + 1),
        },
        2 => WalRecord::Commit { txn: seed % 9 + 1 },
        _ => WalRecord::Checkpoint {
            files: files_of(seed, (seed % 3) as usize),
            next_txn: seed % 64 + 1,
        },
    }
}

/// Writes `records` through the durable API and returns the raw log bytes.
fn raw_log(dir: &std::path::Path, records: &[WalRecord]) -> Vec<u8> {
    let path = dir.join(WAL_FILE);
    let _ = std::fs::remove_file(&path);
    let mut wal = WriteAheadLog::open(&path).expect("open fresh wal");
    for r in records {
        wal.append_record(r.clone()).expect("append");
    }
    wal.sync().expect("sync");
    drop(wal);
    std::fs::read(&path).expect("read wal bytes")
}

fn tmp() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "subzero-wal-proptest-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

proptest! {
    #[test]
    fn truncated_logs_replay_to_a_prefix_and_recover_to_last_commit(
        kinds in prop::collection::vec((0u8..4, any::<u64>()), 1..24),
        cut_frac in 0.0f64..1.0,
    ) {
        let records: Vec<WalRecord> =
            kinds.iter().map(|&(k, s)| record_of(k, s)).collect();
        let dir = tmp();
        let raw = raw_log(&dir, &records);
        let cut = ((raw.len() as f64) * cut_frac) as usize;
        let torn = &raw[..cut];

        // Replay never panics and yields a prefix of what was written.
        let (replayed, valid_len) = replay(torn);
        prop_assert!(valid_len <= torn.len());
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()]);
        // Re-replaying the valid prefix is a fixpoint.
        let (again, again_len) = replay(&torn[..valid_len]);
        prop_assert_eq!(again_len, valid_len);
        prop_assert_eq!(again, replayed.clone());

        // Opening the torn file truncates it to the valid prefix, and a
        // second open finds nothing more to heal.
        let torn_path = dir.join("torn.wal");
        std::fs::write(&torn_path, torn).expect("write torn log");
        let wal = WriteAheadLog::open(&torn_path).expect("open torn log");
        prop_assert_eq!(wal.records(), &replayed[..]);
        drop(wal);
        let healed = std::fs::read(&torn_path).expect("read healed log");
        prop_assert_eq!(healed.len(), valid_len);
        let wal = WriteAheadLog::open(&torn_path).expect("reopen healed log");
        prop_assert_eq!(wal.records(), &replayed[..]);
        drop(wal);

        // Recovery-to-last-commit: only transactions whose commit record
        // survived the tear are committed; every prepared-but-undecided
        // transaction is rolled back.
        let committed: HashSet<u64> = replayed
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let plan = plan_recovery(&replayed, &|t| committed.contains(&t));
        for txn in &plan.aborted_txns {
            prop_assert!(!committed.contains(txn), "aborted a committed txn {txn}");
        }
        let prepared: HashSet<u64> = replayed
            .iter()
            .filter_map(|r| match r {
                WalRecord::Prepare { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        for txn in prepared.difference(&committed) {
            prop_assert!(
                plan.aborted_txns.contains(txn),
                "undecided txn {txn} was not rolled back"
            );
        }
    }

    #[test]
    fn bit_flipped_logs_replay_to_a_clean_prefix_without_panicking(
        kinds in prop::collection::vec((0u8..4, any::<u64>()), 1..16),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records: Vec<WalRecord> =
            kinds.iter().map(|&(k, s)| record_of(k, s)).collect();
        let dir = tmp();
        let mut raw = raw_log(&dir, &records);
        // At least one record was written, so the log is never empty.
        let pos = ((raw.len() as f64) * flip_frac) as usize % raw.len();
        raw[pos] ^= 1 << bit;

        // A corrupt byte invalidates its frame's checksum (or its length
        // prefix): replay keeps the records before it and never panics.
        let (replayed, valid_len) = replay(&raw);
        prop_assert!(valid_len <= raw.len());
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()]);

        // And opening the corrupt file both succeeds and heals it.
        let path = dir.join("flipped.wal");
        std::fs::write(&path, &raw).expect("write flipped log");
        let wal = WriteAheadLog::open(&path).expect("open flipped log");
        prop_assert_eq!(wal.records(), &replayed[..]);
    }
}
