//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use subzero_array::{BoundingBox, Coord, Shape};
use subzero_store::codec::{
    decode_cells, decode_cells_at, decode_cells_block, encode_cells, encode_cells_into,
    encode_payload, pack_coord, read_varint, skip_cells_block, write_varint, Arena, ScanFrame,
};
use subzero_store::kv::{FileBackend, KvBackend, MemBackend};
use subzero_store::RTree;

/// A scratch path for one property test's file backend, cleaned up by the
/// caller.
fn scratch_file(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("subzero-store-proptests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.kv"))
}

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
        prop_assert!(buf.len() <= 10);
    }

    #[test]
    fn varint_sequence_roundtrip(vals in prop::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            decoded.push(read_varint(&buf, &mut pos).unwrap());
        }
        prop_assert_eq!(decoded, vals);
    }

    #[test]
    fn encode_cells_roundtrip_is_sorted_set(
        rows in 1u32..60,
        cols in 1u32..60,
        picks in prop::collection::vec(0usize..3600, 0..128),
    ) {
        let shape = Shape::d2(rows, cols);
        let coords: Vec<Coord> = picks
            .iter()
            .map(|&i| shape.unravel(i % shape.num_cells()))
            .collect();
        let buf = encode_cells(&shape, &coords);
        let decoded = decode_cells(&shape, &buf).unwrap();
        let mut expected = coords;
        expected.sort();
        expected.dedup();
        prop_assert_eq!(decoded, expected);
    }

    #[test]
    fn columnar_decode_matches_legacy_decode(
        // Several cell blocks encoded back-to-back into one buffer, the way
        // entry values carry them.  Decoding each block with the columnar
        // `decode_cells_block` must visit the same bytes and yield the same
        // cells (as linear indices) as the legacy per-coord `decode_cells_at`,
        // and the validate-only `skip_cells_block` must advance identically.
        rows in 1u32..60,
        cols in 1u32..60,
        blocks in prop::collection::vec(prop::collection::vec(0usize..3600, 0..96), 1..12),
    ) {
        let shape = Shape::d2(rows, cols);
        let num_cells = shape.num_cells() as u64;
        let mut buf = Vec::new();
        let mut expected: Vec<Vec<u64>> = Vec::with_capacity(blocks.len());
        for picks in &blocks {
            let coords: Vec<Coord> = picks
                .iter()
                .map(|&i| shape.unravel(i % shape.num_cells()))
                .collect();
            encode_cells_into(&mut buf, &shape, &coords);
            let mut idxs: Vec<u64> = coords.iter().map(|c| pack_coord(&shape, c)).collect();
            idxs.sort_unstable();
            idxs.dedup();
            expected.push(idxs);
        }
        let mut frame = ScanFrame::new();
        let mut legacy_pos = 0usize;
        let mut columnar_pos = 0usize;
        let mut skip_pos = 0usize;
        for idxs in &expected {
            let coords = decode_cells_at(&shape, &buf, &mut legacy_pos).unwrap();
            let run = decode_cells_block(&mut frame, num_cells, &buf, &mut columnar_pos).unwrap();
            skip_cells_block(num_cells, &buf, &mut skip_pos).unwrap();
            // Same bytes consumed, same cells produced.
            prop_assert_eq!(columnar_pos, legacy_pos);
            prop_assert_eq!(skip_pos, legacy_pos);
            let linear: Vec<u64> = coords.iter().map(|c| pack_coord(&shape, c)).collect();
            prop_assert_eq!(frame.run(run), linear.as_slice());
            prop_assert_eq!(frame.run(run), idxs.as_slice());
        }
        prop_assert_eq!(legacy_pos, buf.len());
        prop_assert_eq!(frame.len(), expected.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn columnar_decode_rejects_exactly_what_legacy_rejects(
        // Arbitrary (mostly invalid) bytes: the columnar decoder must accept
        // and reject exactly the inputs the legacy decoder does, and on
        // rejection roll the frame back to its pre-call length.
        rows in 1u32..20,
        cols in 1u32..20,
        raw in prop::collection::vec(any::<u8>(), 0..64),
        picks in prop::collection::vec(0usize..400, 0..32),
    ) {
        let shape = Shape::d2(rows, cols);
        let num_cells = shape.num_cells() as u64;
        let cut = raw.iter().map(|&b| b as usize).sum::<usize>() % 200;
        // Mix of genuinely random bytes and a truncated valid encoding, so
        // both accept and reject paths are exercised.
        let coords: Vec<Coord> = picks
            .iter()
            .map(|&i| shape.unravel(i % shape.num_cells()))
            .collect();
        let mut valid = encode_cells(&shape, &coords);
        valid.truncate(cut.min(valid.len()));
        for buf in [raw.as_slice(), valid.as_slice()] {
            let mut legacy_pos = 0usize;
            let legacy = decode_cells_at(&shape, buf, &mut legacy_pos);
            // Seed the frame with pre-existing content to protect.
            let mut frame = ScanFrame::new();
            let seed = encode_cells(&shape, &[shape.unravel(0)]);
            let mut seed_pos = 0usize;
            decode_cells_block(&mut frame, num_cells, &seed, &mut seed_pos).unwrap();
            let pre_len = frame.len();
            let mut columnar_pos = 0usize;
            let columnar = decode_cells_block(&mut frame, num_cells, buf, &mut columnar_pos);
            let mut skip_pos = 0usize;
            let skipped = skip_cells_block(num_cells, buf, &mut skip_pos);
            prop_assert_eq!(legacy.is_ok(), columnar.is_ok());
            prop_assert_eq!(legacy.is_ok(), skipped.is_ok());
            match (legacy, columnar) {
                (Ok(coords), Ok(run)) => {
                    prop_assert_eq!(columnar_pos, legacy_pos);
                    prop_assert_eq!(skip_pos, legacy_pos);
                    let linear: Vec<u64> =
                        coords.iter().map(|c| pack_coord(&shape, c)).collect();
                    prop_assert_eq!(frame.run(run), linear.as_slice());
                }
                // On rejection the frame must roll back to its pre-call length.
                _ => prop_assert_eq!(frame.len(), pre_len),
            }
        }
    }

    #[test]
    fn arena_encode_matches_legacy_encode(
        // A random "region batch": each element is one entry's cell list plus
        // an optional payload blob, all serialised back-to-back into one
        // arena.  Every spanned value must be byte-identical to what the
        // legacy per-entry `Vec` encoders produce, and decode identically.
        rows in 1u32..40,
        cols in 1u32..40,
        batch in prop::collection::vec(
            (prop::collection::vec(0usize..1600, 0..32),
             any::<bool>(),
             prop::collection::vec(any::<u8>(), 0..24)),
            1..24,
        ),
    ) {
        let shape = Shape::d2(rows, cols);
        let mut arena = Arena::new();
        let mut spans = Vec::with_capacity(batch.len());
        let mut legacy = Vec::with_capacity(batch.len());
        for (picks, has_payload, payload) in &batch {
            let coords: Vec<Coord> = picks
                .iter()
                .map(|&i| shape.unravel(i % shape.num_cells()))
                .collect();
            let start = arena.begin();
            encode_cells_into(arena.buf_mut(), &shape, &coords);
            if *has_payload {
                encode_payload(arena.buf_mut(), payload);
            }
            spans.push(arena.finish(start));
            let mut reference = encode_cells(&shape, &coords);
            if *has_payload {
                encode_payload(&mut reference, payload);
            }
            legacy.push(reference);
        }
        // Spans tile the arena exactly (no gaps, no overlaps) and each value
        // is byte-identical to its legacy encoding, so anything the legacy
        // decoder accepted decodes identically from the arena.
        let mut expected_total = 0usize;
        for (span, reference) in spans.iter().zip(&legacy) {
            prop_assert_eq!(arena.get(*span), reference.as_slice());
            expected_total += span.len();
            let mut pos = 0usize;
            let decoded =
                subzero_store::codec::decode_cells_at(&shape, arena.get(*span), &mut pos);
            prop_assert!(decoded.is_ok(), "arena value must stay decodable");
        }
        prop_assert_eq!(arena.len(), expected_total);
    }

    #[test]
    fn kv_backend_behaves_like_hashmap(
        ops in prop::collection::vec((prop::collection::vec(any::<u8>(), 1..8),
                                      prop::collection::vec(any::<u8>(), 0..16)), 0..100),
    ) {
        let mut backend = MemBackend::new();
        let mut reference = std::collections::HashMap::new();
        for (k, v) in &ops {
            backend.put(k, v);
            reference.insert(k.clone(), v.clone());
        }
        prop_assert_eq!(backend.len(), reference.len());
        for (k, v) in &reference {
            let got = backend.get(k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        let expected_bytes: usize = reference.iter().map(|(k, v)| k.len() + v.len()).sum();
        prop_assert_eq!(backend.bytes_used(), expected_bytes);
    }

    #[test]
    fn file_backend_bytes_used_excludes_superseded_records(
        // Keys drawn from a tiny space so random op sequences re-put keys
        // constantly; values vary in length so stale accounting would show.
        ops in prop::collection::vec((0u8..6, prop::collection::vec(any::<u8>(), 0..24)), 1..60),
        flush_every in 1usize..8,
        batch_from in 0usize..60,
    ) {
        let path = scratch_file("bytes-used");
        let _ = std::fs::remove_file(&path);
        let mut file = FileBackend::open(&path).unwrap();
        let mut reference = MemBackend::new();
        for (i, (k, v)) in ops.iter().enumerate() {
            let key = [b'k', *k];
            if i >= batch_from {
                // Exercise both batched write paths against the same oracle:
                // owned records and zero-copy arena slices.
                if i % 2 == 0 {
                    file.put_batch(vec![(key.to_vec(), v.clone())]);
                } else {
                    file.put_batch_slices(&[(&key[..], v.as_slice())]);
                }
            } else {
                file.put(&key, v);
            }
            reference.put(&key, v);
            if i % flush_every == 0 {
                file.flush().unwrap();
            }
            // Dead (superseded) records must not be counted, regardless of
            // how writes interleave with flushes.
            prop_assert_eq!(file.bytes_used(), reference.bytes_used());
            prop_assert_eq!(file.get(&key), reference.get(&key));
        }
        prop_assert_eq!(file.len(), reference.len());
        // Accounting must also survive an index rebuild from the log, which
        // scans every record including the superseded ones.
        file.flush().unwrap();
        drop(file);
        let reopened = FileBackend::open(&path).unwrap();
        prop_assert_eq!(reopened.bytes_used(), reference.bytes_used());
        prop_assert_eq!(reopened.len(), reference.len());
        for (k, v) in reference.iter() {
            prop_assert_eq!(reopened.get(&k), Some(v));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rtree_query_matches_linear_scan(
        entries in prop::collection::vec(((0u32..200, 0u32..200), (0u32..8, 0u32..8)), 1..150),
        query in ((0u32..200, 0u32..200), (0u32..40, 0u32..40)),
    ) {
        let mut tree = RTree::new();
        let mut reference = Vec::new();
        for (id, ((r, c), (dr, dc))) in entries.iter().enumerate() {
            let b = BoundingBox::new(&Coord::d2(*r, *c), &Coord::d2(r + dr, c + dc));
            tree.insert(b, id as u64);
            reference.push((b, id as u64));
        }
        let ((qr, qc), (qdr, qdc)) = query;
        let q = BoundingBox::new(&Coord::d2(qr, qc), &Coord::d2(qr + qdr, qc + qdc));
        let mut got = tree.query(&q);
        got.sort_unstable();
        let mut expected: Vec<u64> = reference
            .iter()
            .filter(|(b, _)| b.intersects(&q))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn rtree_point_queries_find_containing_boxes(
        entries in prop::collection::vec(((0u32..50, 0u32..50), (0u32..5, 0u32..5)), 1..80),
        point in (0u32..55, 0u32..55),
    ) {
        let mut tree = RTree::new();
        let mut reference = Vec::new();
        for (id, ((r, c), (dr, dc))) in entries.iter().enumerate() {
            let b = BoundingBox::new(&Coord::d2(*r, *c), &Coord::d2(r + dr, c + dc));
            tree.insert(b, id as u64);
            reference.push((b, id as u64));
        }
        let p = Coord::d2(point.0, point.1);
        let mut got = tree.query_point(&p);
        got.sort_unstable();
        let mut expected: Vec<u64> = reference
            .iter()
            .filter(|(b, _)| b.contains(&p))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
