//! Read-only memory-mapped views of the append-only lineage log.
//!
//! This is the **only** module in `subzero-store` that may contain `unsafe`
//! code — `cargo xtask lint`'s `unsafe-outside-mmap` lint rejects the token
//! anywhere else in the crate.  Everything unsafe about the mmap read path
//! (the raw `mmap`/`munmap` calls and the slice view over the mapping) is
//! confined here behind a safe, owning [`MmapRegion`] handle.
//!
//! # Safety argument
//!
//! A [`MmapRegion`] is only ever created over the *flushed prefix* of a
//! lineage log file ([`FileBackend`](crate::kv::FileBackend) maps exactly
//! `write_offset` bytes, all of which provably reached the file before the
//! mapping was created):
//!
//! * The log is strictly append-only: bytes below the mapped length are
//!   never rewritten or truncated while the backend is open (the only
//!   `set_len` happens in `open`, before any mapping exists).  The bytes a
//!   region exposes are therefore immutable for the region's lifetime, so
//!   handing out `&[u8]` views is sound.
//! * The mapped length never exceeds the file length, so no access through
//!   the slice can fault on a page past end-of-file.
//! * The region owns the mapping and unmaps it on drop; the `Send`/`Sync`
//!   impls are sound because the underlying pages are never written through
//!   the mapping (`PROT_READ`) and never unmapped while borrowed (`as_slice`
//!   borrows the region).
//!
//! On non-unix targets (or when mapping fails, e.g. on an empty file) the
//! constructor returns `None` and callers fall back to positioned reads —
//! the pread block path is always available.

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x1;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned, read-only memory mapping of the first `len` bytes of a file.
    #[derive(Debug)]
    pub struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    impl MmapRegion {
        /// Maps the first `len` bytes of `file` read-only, sharing the page
        /// cache with every other mapping and with ordinary reads of the same
        /// file.  Returns `None` for an empty prefix or if the kernel refuses
        /// the mapping (callers fall back to positioned reads).
        pub fn map(file: &File, len: u64) -> Option<MmapRegion> {
            if len == 0 || len > usize::MAX as u64 {
                return None;
            }
            let len = len as usize;
            // SAFETY: requesting a fresh PROT_READ/MAP_SHARED mapping of a
            // file descriptor we own; the kernel validates the fd and length
            // and returns MAP_FAILED on any error, which we check below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return None;
            }
            Some(MmapRegion { ptr, len })
        }

        /// Number of mapped bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// Whether the region maps no bytes (never true for a live region —
        /// zero-length mappings are rejected by [`MmapRegion::map`]).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// The mapped bytes.  The borrow ties the slice to the region, so the
        /// pages cannot be unmapped while a view is alive.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes (invariant of `map`), valid for the region's lifetime and
            // never written through; see the module-level safety argument for
            // why the underlying file bytes are immutable.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe a mapping this region owns and
            // that has not been unmapped (Drop runs at most once); any
            // borrowed slice is tied to `self` and therefore already gone.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only and its bytes are immutable for the
    // region's lifetime (append-only file, mapped prefix only), so sharing
    // or moving the handle across threads cannot race.
    unsafe impl Send for MmapRegion {}
    // SAFETY: as above — concurrent `as_slice` readers only perform loads
    // from pages no one can write through this mapping.
    unsafe impl Sync for MmapRegion {}
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;

    /// Stub mapping for targets without `mmap`: construction always fails and
    /// callers use the positioned-read fallback.
    #[derive(Debug)]
    pub struct MmapRegion {
        never: std::convert::Infallible,
    }

    impl MmapRegion {
        /// Always `None` on this target.
        pub fn map(_file: &File, _len: u64) -> Option<MmapRegion> {
            None
        }

        /// Unreachable (no region can exist on this target).
        pub fn len(&self) -> usize {
            match self.never {}
        }

        /// Unreachable (no region can exist on this target).
        pub fn is_empty(&self) -> bool {
            match self.never {}
        }

        /// Unreachable (no region can exist on this target).
        pub fn as_slice(&self) -> &[u8] {
            match self.never {}
        }
    }
}

pub use sys::MmapRegion;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_flushed_prefix_and_reads_it_back() {
        let dir = std::env::temp_dir().join(format!("subzero-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let mut f = std::fs::File::create(&path).unwrap();
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        f.write_all(&payload).unwrap();
        f.flush().unwrap();

        let read = std::fs::File::open(&path).unwrap();
        let region = MmapRegion::map(&read, payload.len() as u64).expect("mapping");
        assert_eq!(region.len(), payload.len());
        assert!(!region.is_empty());
        assert_eq!(region.as_slice(), payload.as_slice());

        // A prefix shorter than the file is equally valid.
        let prefix = MmapRegion::map(&read, 100).expect("prefix mapping");
        assert_eq!(prefix.as_slice(), &payload[..100]);

        // Zero-length prefixes are rejected rather than mapped.
        assert!(MmapRegion::map(&read, 0).is_none());
        drop(region);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn region_is_shareable_across_threads() {
        let dir = std::env::temp_dir().join(format!("subzero-mmap-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.bin");
        std::fs::write(&path, [7u8; 1024]).unwrap();
        let read = std::fs::File::open(&path).unwrap();
        let region = MmapRegion::map(&read, 1024).expect("mapping");
        let region = &region;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    assert!(region.as_slice().iter().all(|&b| b == 7));
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
