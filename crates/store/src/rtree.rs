//! R-tree spatial index over cell bounding boxes.
//!
//! The `FullMany`/`PayMany` encodings store each region pair's *set* of output
//! cells as one hash key; answering a lineage query then requires finding the
//! hash entries whose output cells intersect the query region.  The paper
//! ("We also create an R Tree on the cells in the hash key to quickly find
//! the entries that intersect with the query", §VI-B) used `libspatialindex`;
//! this is a self-contained replacement with the classic Guttman quadratic
//! split.
//!
//! Entries are `(BoundingBox, u64)` pairs; the `u64` is an opaque identifier
//! (for SubZero, the hash-entry id of the encoded region pair).

use crate::codec::{read_varint, write_varint, CodecError};
use subzero_array::{BoundingBox, Coord};

/// Maximum number of entries per node before a split (the tree's branching
/// factor; re-exported as [`RTree::BRANCHING`] for size estimation).
const MAX_ENTRIES: usize = 8;
/// Minimum number of entries assigned to each side of a split.
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum Node {
    Leaf(Vec<(BoundingBox, u64)>),
    Inner(Vec<(BoundingBox, Box<Node>)>),
}

fn merge_boxes(mut boxes: impl Iterator<Item = BoundingBox>) -> Option<BoundingBox> {
    let first = boxes.next()?;
    Some(boxes.fold(first, |acc, b| acc.merged(&b)))
}

/// An R-tree mapping bounding boxes to opaque `u64` identifiers.
///
/// ```
/// use subzero_array::{BoundingBox, Coord};
/// use subzero_store::RTree;
///
/// let mut t = RTree::new();
/// t.insert(BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(2, 2)), 1);
/// t.insert(BoundingBox::point(&Coord::d2(10, 10)), 2);
/// let hits = t.query_point(&Coord::d2(1, 1));
/// assert_eq!(hits, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    root: Node,
    len: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// The tree's branching factor.  A packed tree over `n` entries holds
    /// roughly `n * BRANCHING / (BRANCHING - 1)` node entries in total
    /// (leaves plus inner levels), which callers use to estimate the size of
    /// an index before it is built.
    pub const BRANCHING: usize = MAX_ENTRIES;

    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Builds a tree from a full entry set using Sort-Tile-Recursive (STR)
    /// packing.
    ///
    /// Bulk loading replaces the per-entry insert-and-split work of
    /// [`insert`](RTree::insert) — the dominant cost of incremental index
    /// maintenance during lineage capture — with one sort-and-pack pass:
    /// entries are sorted into spatial tiles (first dimension, then second
    /// within each tile slab) and packed into full leaves, and each upper
    /// level packs the level below the same way.  The batched ingestion
    /// pipeline stages `(bbox, id)` entries during capture and builds the
    /// index here before the first lookup.
    pub fn bulk_load(entries: Vec<(BoundingBox, u64)>) -> Self {
        let len = entries.len();
        if len == 0 {
            return RTree::new();
        }
        // Decorate each entry with its centre along the first two dimensions
        // once — sort keys must not be recomputed per comparison, that alone
        // would cost more than the incremental inserts this pass replaces.
        let mut decorated: Vec<(u64, u64, (BoundingBox, u64))> = entries
            .into_iter()
            .map(|(b, id)| {
                let (lo, hi) = (b.lo(), b.hi());
                let center = |d: usize| {
                    if d < lo.ndim() {
                        lo.get(d) as u64 + hi.get(d) as u64
                    } else {
                        0
                    }
                };
                (center(0), center(1), (b, id))
            })
            .collect();
        // STR tiling: sort by the first dimension, slice into vertical slabs
        // of whole leaves, sort each slab by the second dimension.  Ties
        // break on the entry id so loads are deterministic.
        let n_leaves = len.div_ceil(MAX_ENTRIES);
        let slab_leaves = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_len = slab_leaves * MAX_ENTRIES;
        decorated.sort_unstable_by_key(|&(c0, _, (_, id))| (c0, id));
        for slab in decorated.chunks_mut(slab_len.max(1)) {
            slab.sort_unstable_by_key(|&(_, c1, (_, id))| (c1, id));
        }
        // Pack full leaves, then pack each upper level from the one below.
        let mut level: Vec<(BoundingBox, Node)> = decorated
            .chunks(MAX_ENTRIES)
            .map(|chunk| {
                let bbox =
                    merge_boxes(chunk.iter().map(|(_, _, (b, _))| *b)).expect("non-empty leaf");
                (bbox, Node::Leaf(chunk.iter().map(|&(_, _, e)| e).collect()))
            })
            .collect();
        while level.len() > 1 {
            level = level
                .chunks_mut(MAX_ENTRIES)
                .map(|chunk| {
                    let bbox = merge_boxes(chunk.iter().map(|(b, _)| *b)).expect("non-empty node");
                    let children = chunk
                        .iter_mut()
                        .map(|(b, n)| (*b, Box::new(std::mem::replace(n, Node::Leaf(Vec::new())))))
                        .collect();
                    (bbox, Node::Inner(children))
                })
                .collect();
        }
        let (_, root) = level.pop().expect("non-empty level");
        RTree { root, len }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry.
    pub fn insert(&mut self, bbox: BoundingBox, id: u64) {
        self.len += 1;
        if let Some((left_box, left, right_box, right)) = insert_rec(&mut self.root, bbox, id) {
            // Root split: grow the tree by one level.
            self.root = Node::Inner(vec![
                (left_box, Box::new(left)),
                (right_box, Box::new(right)),
            ]);
        }
    }

    /// Identifiers of every entry whose box intersects `query`.
    pub fn query(&self, query: &BoundingBox) -> Vec<u64> {
        let mut out = Vec::new();
        query_rec(&self.root, query, &mut out);
        out
    }

    /// Identifiers of every entry whose box contains the single cell `c`.
    pub fn query_point(&self, c: &Coord) -> Vec<u64> {
        self.query(&BoundingBox::point(c))
    }

    /// Approximate memory footprint in bytes (used by the cost model to
    /// account for the index overhead of the *Many* encodings).
    pub fn size_bytes(&self) -> usize {
        fn node_bytes(n: &Node) -> usize {
            match n {
                Node::Leaf(entries) => entries.len() * (std::mem::size_of::<BoundingBox>() + 8),
                Node::Inner(children) => children
                    .iter()
                    .map(|(_, c)| std::mem::size_of::<BoundingBox>() + 8 + node_bytes(c))
                    .sum(),
            }
        }
        node_bytes(&self.root)
    }

    /// Depth of the tree (1 for a single leaf); exposed for tests.
    pub fn depth(&self) -> usize {
        fn depth_rec(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Inner(children) => {
                    1 + children
                        .iter()
                        .map(|(_, c)| depth_rec(c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth_rec(&self.root)
    }

    /// Appends a byte serialisation of the tree to `out`.
    ///
    /// The encoding is a pre-order walk (entry count, then the node tree;
    /// each node is a tag byte, a child/entry count and varint-packed
    /// bounding boxes), so a bulk-loaded index round-trips structurally
    /// identical — [`deserialize`](RTree::deserialize) restores the exact
    /// packing without re-running STR.  Persisting the index beside its `.kv`
    /// file is what lets a restarted lineage daemon skip the per-shard
    /// rebuild.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        fn write_bbox(out: &mut Vec<u8>, b: &BoundingBox) {
            let (lo, hi) = (b.lo(), b.hi());
            write_varint(out, lo.ndim() as u64);
            for &d in lo.as_slice() {
                write_varint(out, u64::from(d));
            }
            for &d in hi.as_slice() {
                write_varint(out, u64::from(d));
            }
        }
        fn write_node(out: &mut Vec<u8>, n: &Node) {
            match n {
                Node::Leaf(entries) => {
                    out.push(0);
                    write_varint(out, entries.len() as u64);
                    for (b, id) in entries {
                        write_bbox(out, b);
                        write_varint(out, *id);
                    }
                }
                Node::Inner(children) => {
                    out.push(1);
                    write_varint(out, children.len() as u64);
                    for (b, child) in children {
                        write_bbox(out, b);
                        write_node(out, child);
                    }
                }
            }
        }
        write_varint(out, self.len as u64);
        write_node(out, &self.root);
    }

    /// Decodes a tree serialised by [`serialize_into`](RTree::serialize_into),
    /// advancing `*pos` past the encoded bytes.
    ///
    /// Corrupt input is rejected with an error — never a panic, unbounded
    /// recursion or oversized allocation: counts are validated against the
    /// remaining buffer and nesting is capped well beyond any tree this
    /// module can build.
    pub fn deserialize(buf: &[u8], pos: &mut usize) -> Result<RTree, CodecError> {
        // A node of depth d indexes >= MIN_ENTRIES^d entries, so genuine
        // trees stay tiny; anything deeper is corruption trying to recurse.
        const MAX_DEPTH: usize = 64;
        fn read_bbox(buf: &[u8], pos: &mut usize) -> Result<BoundingBox, CodecError> {
            let ndim = read_varint(buf, pos)? as usize;
            if ndim == 0 || ndim > subzero_array::MAX_NDIM {
                return Err(CodecError::Corrupt("r-tree bbox dimensionality"));
            }
            let mut dims = [0u32; subzero_array::MAX_NDIM];
            let read_coord = |pos: &mut usize,
                              dims: &mut [u32; subzero_array::MAX_NDIM]|
             -> Result<Coord, CodecError> {
                for d in dims.iter_mut().take(ndim) {
                    let v = read_varint(buf, pos)?;
                    *d = u32::try_from(v)
                        .map_err(|_| CodecError::Corrupt("r-tree bbox coordinate"))?;
                }
                Ok(Coord::new(&dims[..ndim]))
            };
            let lo = read_coord(pos, &mut dims)?;
            let hi = read_coord(pos, &mut dims)?;
            for d in 0..ndim {
                if lo.get(d) > hi.get(d) {
                    return Err(CodecError::Corrupt("r-tree bbox inverted"));
                }
            }
            Ok(BoundingBox::new(&lo, &hi))
        }
        fn read_node(
            buf: &[u8],
            pos: &mut usize,
            depth: usize,
            entries_seen: &mut u64,
        ) -> Result<Node, CodecError> {
            if depth > MAX_DEPTH {
                return Err(CodecError::Corrupt("r-tree nesting depth"));
            }
            let tag = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
            *pos += 1;
            let count = read_varint(buf, pos)? as usize;
            // Every entry/child costs at least one encoded byte; a count the
            // remaining buffer cannot possibly satisfy is corruption, and
            // rejecting it here bounds every allocation below.
            if count > buf.len() - *pos {
                return Err(CodecError::Corrupt("r-tree node count"));
            }
            match tag {
                0 => {
                    let mut entries = Vec::with_capacity(count);
                    for _ in 0..count {
                        let b = read_bbox(buf, pos)?;
                        let id = read_varint(buf, pos)?;
                        entries.push((b, id));
                    }
                    *entries_seen += count as u64;
                    Ok(Node::Leaf(entries))
                }
                1 => {
                    if count == 0 {
                        return Err(CodecError::Corrupt("r-tree empty inner node"));
                    }
                    let mut children = Vec::with_capacity(count);
                    for _ in 0..count {
                        let b = read_bbox(buf, pos)?;
                        let child = read_node(buf, pos, depth + 1, entries_seen)?;
                        children.push((b, Box::new(child)));
                    }
                    Ok(Node::Inner(children))
                }
                _ => Err(CodecError::Corrupt("r-tree node tag")),
            }
        }
        let len = read_varint(buf, pos)?;
        let mut entries_seen = 0u64;
        let root = read_node(buf, pos, 1, &mut entries_seen)?;
        if entries_seen != len {
            return Err(CodecError::Corrupt("r-tree entry count mismatch"));
        }
        Ok(RTree {
            root,
            len: len as usize,
        })
    }
}

fn query_rec(node: &Node, query: &BoundingBox, out: &mut Vec<u64>) {
    match node {
        Node::Leaf(entries) => {
            for (b, id) in entries {
                if b.intersects(query) {
                    out.push(*id);
                }
            }
        }
        Node::Inner(children) => {
            for (b, child) in children {
                if b.intersects(query) {
                    query_rec(child, query, out);
                }
            }
        }
    }
}

/// Recursive insert.  Returns `Some((left_box, left, right_box, right))` when
/// the node split and the caller must replace it with the two halves.
fn insert_rec(
    node: &mut Node,
    bbox: BoundingBox,
    id: u64,
) -> Option<(BoundingBox, Node, BoundingBox, Node)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((bbox, id));
            if entries.len() <= MAX_ENTRIES {
                return None;
            }
            let (a, b) = quadratic_split(std::mem::take(entries));
            let a_box = merge_boxes(a.iter().map(|(b, _)| *b)).expect("non-empty split");
            let b_box = merge_boxes(b.iter().map(|(b, _)| *b)).expect("non-empty split");
            Some((a_box, Node::Leaf(a), b_box, Node::Leaf(b)))
        }
        Node::Inner(children) => {
            // Choose the child whose box needs the least enlargement.
            let idx = children
                .iter()
                .enumerate()
                .min_by_key(|(_, (b, _))| (b.enlargement(&bbox), b.area()))
                .map(|(i, _)| i)
                .expect("inner node has children");
            let (child_box, child) = &mut children[idx];
            let split = insert_rec(child, bbox, id);
            match split {
                None => {
                    *child_box = child_box.merged(&bbox);
                    None
                }
                Some((lb, l, rb, r)) => {
                    children[idx] = (lb, Box::new(l));
                    children.push((rb, Box::new(r)));
                    if children.len() <= MAX_ENTRIES {
                        return None;
                    }
                    let (a, b) = quadratic_split(std::mem::take(children));
                    let a_box = merge_boxes(a.iter().map(|(b, _)| *b)).expect("non-empty split");
                    let b_box = merge_boxes(b.iter().map(|(b, _)| *b)).expect("non-empty split");
                    Some((a_box, Node::Inner(a), b_box, Node::Inner(b)))
                }
            }
        }
    }
}

/// The two groups a node's entries are split into.
type SplitGroups<T> = (Vec<(BoundingBox, T)>, Vec<(BoundingBox, T)>);

/// Guttman's quadratic split: pick the two entries that would waste the most
/// area if grouped together as seeds, then greedily assign the rest to the
/// group whose box grows least.
fn quadratic_split<T>(entries: Vec<(BoundingBox, T)>) -> SplitGroups<T> {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // Pick seeds.
    let mut seed_a = 0usize;
    let mut seed_b = 1usize;
    let mut worst = 0u64;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i]
                .0
                .merged(&entries[j].0)
                .area()
                .saturating_sub(entries[i].0.area())
                .saturating_sub(entries[j].0.area());
            if waste >= worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a: Vec<(BoundingBox, T)> = Vec::new();
    let mut group_b: Vec<(BoundingBox, T)> = Vec::new();
    let mut box_a = entries[seed_a].0;
    let mut box_b = entries[seed_b].0;
    let total = entries.len();
    for (i, entry) in entries.into_iter().enumerate() {
        if i == seed_a {
            box_a = box_a.merged(&entry.0);
            group_a.push(entry);
            continue;
        }
        if i == seed_b {
            box_b = box_b.merged(&entry.0);
            group_b.push(entry);
            continue;
        }
        // If one group needs every remaining entry to reach MIN_ENTRIES,
        // assign there unconditionally.
        let remaining = total - i - 1;
        if group_a.len() < MIN_ENTRIES && group_a.len() + remaining + 1 == MIN_ENTRIES {
            box_a = box_a.merged(&entry.0);
            group_a.push(entry);
            continue;
        }
        if group_b.len() < MIN_ENTRIES && group_b.len() + remaining + 1 == MIN_ENTRIES {
            box_b = box_b.merged(&entry.0);
            group_b.push(entry);
            continue;
        }
        let grow_a = box_a.enlargement(&entry.0);
        let grow_b = box_b.enlargement(&entry.0);
        if grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len()) {
            box_a = box_a.merged(&entry.0);
            group_a.push(entry);
        } else {
            box_b = box_b.merged(&entry.0);
            group_b.push(entry);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.query_point(&Coord::d2(0, 0)), Vec::<u64>::new());
    }

    #[test]
    fn insert_and_point_query() {
        let mut t = RTree::new();
        t.insert(BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(4, 4)), 1);
        t.insert(BoundingBox::new(&Coord::d2(10, 10), &Coord::d2(12, 12)), 2);
        t.insert(BoundingBox::point(&Coord::d2(3, 3)), 3);
        assert_eq!(t.len(), 3);
        let mut hits = t.query_point(&Coord::d2(3, 3));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert_eq!(t.query_point(&Coord::d2(11, 11)), vec![2]);
        assert!(t.query_point(&Coord::d2(100, 100)).is_empty());
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut t = RTree::new();
        let mut boxes = Vec::new();
        // A deterministic scatter of 200 small boxes.
        for i in 0u32..200 {
            let r = (i * 37) % 500;
            let c = (i * 91) % 500;
            let b = BoundingBox::new(&Coord::d2(r, c), &Coord::d2(r + i % 5, c + i % 7));
            boxes.push((b, i as u64));
            t.insert(b, i as u64);
        }
        assert_eq!(t.len(), 200);
        assert!(t.depth() > 1, "200 entries must split beyond a single leaf");
        for q in [
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(50, 50)),
            BoundingBox::new(&Coord::d2(100, 100), &Coord::d2(300, 200)),
            BoundingBox::point(&Coord::d2(250, 250)),
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(499, 499)),
        ] {
            let mut expected: Vec<u64> = boxes
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|(_, id)| *id)
                .collect();
            expected.sort_unstable();
            let mut got = t.query(&q);
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn duplicate_boxes_are_all_returned() {
        let mut t = RTree::new();
        let b = BoundingBox::point(&Coord::d2(5, 5));
        for id in 0..20 {
            t.insert(b, id);
        }
        let mut hits = t.query_point(&Coord::d2(5, 5));
        hits.sort_unstable();
        assert_eq!(hits, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn size_bytes_grows_with_entries() {
        let mut t = RTree::new();
        let before = t.size_bytes();
        for i in 0..100u32 {
            t.insert(BoundingBox::point(&Coord::d2(i, i)), i as u64);
        }
        assert!(t.size_bytes() > before);
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let mut entries = Vec::new();
        let mut incremental = RTree::new();
        for i in 0u32..500 {
            let r = (i * 37) % 700;
            let c = (i * 91) % 700;
            let b = BoundingBox::new(&Coord::d2(r, c), &Coord::d2(r + i % 5, c + i % 7));
            entries.push((b, i as u64));
            incremental.insert(b, i as u64);
        }
        let bulk = RTree::bulk_load(entries.clone());
        assert_eq!(bulk.len(), 500);
        assert!(bulk.depth() > 1);
        for q in [
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(80, 80)),
            BoundingBox::new(&Coord::d2(200, 100), &Coord::d2(450, 300)),
            BoundingBox::point(&Coord::d2(350, 350)),
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(699, 699)),
        ] {
            let mut got = bulk.query(&q);
            got.sort_unstable();
            let mut expected = incremental.query(&q);
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn bulk_load_edge_sizes() {
        assert!(RTree::bulk_load(Vec::new()).is_empty());
        let one = RTree::bulk_load(vec![(BoundingBox::point(&Coord::d2(1, 1)), 7)]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.query_point(&Coord::d2(1, 1)), vec![7]);
        // Exactly one full leaf, and one-past-a-leaf.
        for n in [MAX_ENTRIES as u32, MAX_ENTRIES as u32 + 1] {
            let t = RTree::bulk_load(
                (0..n)
                    .map(|i| (BoundingBox::point(&Coord::d2(i, i)), i as u64))
                    .collect(),
            );
            assert_eq!(t.len(), n as usize);
            for i in 0..n {
                assert_eq!(t.query_point(&Coord::d2(i, i)), vec![i as u64]);
            }
        }
    }

    #[test]
    fn bulk_load_duplicates_and_1d() {
        let b = BoundingBox::point(&Coord::d1(5));
        let t = RTree::bulk_load((0..20).map(|id| (b, id)).collect());
        let mut hits = t.query_point(&Coord::d1(5));
        hits.sort_unstable();
        assert_eq!(hits, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn serialize_round_trips_structure_and_queries() {
        let entries: Vec<(BoundingBox, u64)> = (0u32..500)
            .map(|i| {
                let r = (i * 37) % 700;
                let c = (i * 91) % 700;
                (
                    BoundingBox::new(&Coord::d2(r, c), &Coord::d2(r + i % 5, c + i % 7)),
                    i as u64,
                )
            })
            .collect();
        let tree = RTree::bulk_load(entries);
        let mut bytes = Vec::new();
        tree.serialize_into(&mut bytes);
        let mut pos = 0;
        let back = RTree::deserialize(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len(), "decoder consumes exactly what it wrote");
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.depth(), tree.depth());
        assert_eq!(back.size_bytes(), tree.size_bytes());
        for q in [
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(80, 80)),
            BoundingBox::point(&Coord::d2(350, 350)),
            BoundingBox::new(&Coord::d2(0, 0), &Coord::d2(699, 699)),
        ] {
            assert_eq!(back.query(&q), tree.query(&q), "identical visit order");
        }
        // A deserialized tree stays mutable.
        let mut back = back;
        back.insert(BoundingBox::point(&Coord::d2(1000, 1000)), 9999);
        assert_eq!(back.query_point(&Coord::d2(1000, 1000)), vec![9999]);
    }

    #[test]
    fn serialize_round_trips_empty_and_1d() {
        for tree in [
            RTree::new(),
            RTree::bulk_load(vec![(BoundingBox::point(&Coord::d1(5)), 7)]),
        ] {
            let mut bytes = Vec::new();
            tree.serialize_into(&mut bytes);
            let mut pos = 0;
            let back = RTree::deserialize(&bytes, &mut pos).unwrap();
            assert_eq!(back.len(), tree.len());
            assert_eq!(
                back.query(&BoundingBox::new(&Coord::d1(0), &Coord::d1(100))),
                tree.query(&BoundingBox::new(&Coord::d1(0), &Coord::d1(100)))
            );
        }
    }

    #[test]
    fn deserialize_rejects_corruption_without_panicking() {
        let tree = RTree::bulk_load(
            (0u32..100)
                .map(|i| (BoundingBox::point(&Coord::d2(i, i)), i as u64))
                .collect(),
        );
        let mut bytes = Vec::new();
        tree.serialize_into(&mut bytes);
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            let mut pos = 0;
            assert!(RTree::deserialize(&bytes[..cut], &mut pos).is_err());
        }
        // A huge claimed count must be rejected before allocating for it.
        let mut huge = Vec::new();
        write_varint(&mut huge, 100);
        huge.push(0); // leaf tag
        write_varint(&mut huge, u64::MAX); // absurd entry count
        let mut pos = 0;
        assert!(RTree::deserialize(&huge, &mut pos).is_err());
        // Single flipped bytes either decode to *some* tree or error cleanly.
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xff;
            let mut pos = 0;
            let _ = RTree::deserialize(&flipped, &mut pos);
        }
    }

    #[test]
    fn one_dimensional_boxes() {
        let mut t = RTree::new();
        for i in 0..50u32 {
            t.insert(
                BoundingBox::new(&Coord::d1(i * 2), &Coord::d1(i * 2 + 1)),
                i as u64,
            );
        }
        assert_eq!(t.query_point(&Coord::d1(21)), vec![10]);
        let hits = t.query(&BoundingBox::new(&Coord::d1(0), &Coord::d1(9)));
        assert_eq!(hits.len(), 5);
    }
}
