//! Crash-point registry for fault-injection testing.
//!
//! The transactional commit path (see [`crate::wal`]) registers a small,
//! fixed set of *crash points* — moments in the two-phase commit where a
//! process death is interesting: before any shard prepared, between two
//! shard prepares, before the decision record, mid-way through writing the
//! decision record (a torn write), and after the decision but before the
//! checkpoint.  The SIGKILL integration tests in `crates/server` spawn the
//! real daemon with one point armed and assert byte-identical recovery to
//! the last committed run.
//!
//! Arming is runtime-gated by the `SUBZERO_FAILPOINT` environment variable
//! (set it to one of the [`CRASH_POINTS`] names) and compile-time-gated by
//! the `failpoints` cargo feature (on by default; disabling it compiles
//! every check down to `false`).  The environment variable is consulted
//! directly on each check: crash points sit on the commit path only — a
//! handful of checks per committed run — so no caching (and no atomics,
//! which the store crate deliberately avoids) is needed.

/// Environment variable naming the armed crash point.
pub const ENV: &str = "SUBZERO_FAILPOINT";

/// Before the coordinator sends the first shard prepare.
pub const PRE_PREPARE: &str = "commit.pre-prepare";
/// After the first shard prepared, before the remaining shards do.
pub const MID_PREPARE: &str = "commit.mid-prepare";
/// Every shard prepared; the decision record is not yet written.
pub const PRE_COMMIT: &str = "commit.pre-commit";
/// Mid-way through writing the commit record: a torn write — the record's
/// length prefix reaches the disk but the payload does not, exercising the
/// replay-side torn-tail truncation.
pub const MID_COMMIT: &str = "commit.mid-commit";
/// The commit record is durable; the checkpoint/compaction that folds it
/// into the baseline has not run.
pub const POST_COMMIT: &str = "commit.post-commit";

/// Every registered crash point, in commit-lifecycle order.
pub const CRASH_POINTS: &[&str] = &[
    PRE_PREPARE,
    MID_PREPARE,
    PRE_COMMIT,
    MID_COMMIT,
    POST_COMMIT,
];

/// Whether `name` is the armed crash point.
#[cfg(feature = "failpoints")]
pub fn armed(name: &str) -> bool {
    std::env::var_os(ENV).is_some_and(|v| v == *name)
}

/// Always `false` without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn armed(_name: &str) -> bool {
    false
}

/// Dies on the spot (as `SIGKILL` would: no unwinding, no destructors, no
/// flushes) if `name` is the armed crash point.
pub fn crash_if_armed(name: &str) {
    if armed(name) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_distinct_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for p in CRASH_POINTS {
            assert!(p.starts_with("commit."), "{p}");
            assert!(seen.insert(*p), "duplicate crash point {p}");
        }
        assert_eq!(CRASH_POINTS.len(), 5);
    }

    #[test]
    fn unarmed_points_never_fire() {
        // The test harness never arms SUBZERO_FAILPOINT for unit tests, so
        // this both documents and exercises the fast path.
        for p in CRASH_POINTS {
            assert!(!armed(p));
            crash_if_armed(p); // must not abort
        }
        assert!(!armed("commit.unknown"));
    }
}
