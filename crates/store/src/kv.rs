//! Embedded key-value store.
//!
//! SubZero stores region lineage in "a collection of BerkeleyDB hashtable
//! instances", one per operator instance, with fsync/logging/concurrency
//! control turned off because the lineage store is a cache (§VI-A).  This
//! module provides an equivalent embedded store:
//!
//! * [`MemBackend`] — a plain in-process hash table.
//! * [`FileBackend`] — an append-only log file with an in-memory hash index
//!   (rebuildable by scanning the log), giving the same "hash table on disk,
//!   no transactional guarantees" durability stance as the prototype.
//! * [`Database`] — one named store instance (≈ one BerkeleyDB database).
//! * [`StoreManager`] — allocates a database per operator/strategy and tracks
//!   aggregate storage statistics, which the benchmarks report as the "disk
//!   cost" of a lineage strategy.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{read_varint, write_varint};
use crate::hash::FxHashMap;
use crate::mmap::MmapRegion;

/// One owned `(key, value)` record, as stored and scanned.
pub type KvPair = (Vec<u8>, Vec<u8>);

/// One borrowed `(key, value)` record, as streamed zero-copy by
/// [`KvBackend::scan_slices`].
pub type KvRef<'a> = (&'a [u8], &'a [u8]);

/// How [`FileBackend`] physically serves full scans and point reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Serve reads zero-copy from a read-only memory mapping of the flushed
    /// log prefix (the default on unix).  Concurrent scans, fanned-out query
    /// shards and point lookups all share one mapping — and therefore one
    /// copy of the page cache — instead of issuing per-record positioned
    /// reads.
    Mmap,
    /// Positioned-read (`pread`) fallback: scans fetch the log in large
    /// block-batched chunks through the shared cursor-less reader handle.
    /// Selected automatically where mmap is unavailable or refused, at
    /// compile time by the `pread-scan` feature, or at runtime via
    /// `SUBZERO_SCAN_MODE=pread`.
    Pread,
}

impl ScanMode {
    /// Mode a fresh backend starts in: the `pread-scan` feature and non-unix
    /// targets force [`ScanMode::Pread`]; otherwise `SUBZERO_SCAN_MODE`
    /// (`mmap`/`pread`) decides, defaulting to [`ScanMode::Mmap`].
    fn default_mode() -> ScanMode {
        if cfg!(feature = "pread-scan") || !cfg!(unix) {
            return ScanMode::Pread;
        }
        match std::env::var("SUBZERO_SCAN_MODE").as_deref() {
            Ok("pread") => ScanMode::Pread,
            _ => ScanMode::Mmap,
        }
    }
}

/// Default sequential-read chunk for [`ScanMode::Pread`] scans.
const DEFAULT_SCAN_CHUNK: usize = 256 * 1024;

/// Chunk size a fresh backend starts with: `SUBZERO_SCAN_CHUNK` (bytes)
/// overrides the 256 KiB default.
fn default_scan_chunk() -> usize {
    std::env::var("SUBZERO_SCAN_CHUNK")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(DEFAULT_SCAN_CHUNK, |v| v.max(1))
}

/// Abstract hash-table storage backend.
///
/// Backends are `Sync` so read-only lookups (`get`, the scans) can be fanned
/// across the scoped worker threads of the batched query path; writes still
/// require `&mut self` and therefore exclusive access.
pub trait KvBackend: Send + Sync {
    /// Inserts or replaces the value stored under `key`.
    fn put(&mut self, key: &[u8], value: &[u8]);

    /// Fetches the value stored under `key`.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Whether `key` is present.
    fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the store holds no keys.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all live `(key, value)` pairs (order unspecified).
    fn iter(&self) -> Box<dyn Iterator<Item = (Vec<u8>, Vec<u8>)> + '_>;

    /// Bytes of key + value payload currently stored (logical size — for the
    /// file backend this excludes dead, superseded records).
    fn bytes_used(&self) -> usize;

    /// Flushes buffered writes to their destination (no-op for memory).
    fn flush(&mut self) -> io::Result<()>;

    /// Forces flushed bytes to stable storage (`fdatasync`; no-op for
    /// memory).  The transactional commit path calls this before a prepare
    /// record may name this store's length as durable.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Byte length of the append-only log for persistent backends (`None`
    /// for memory).  Only meaningful after [`flush`](KvBackend::flush): the
    /// commit path records this as the published length of the file.
    fn log_len(&self) -> Option<u64> {
        None
    }

    /// Rewrites the log keeping only live records, folding superseded
    /// `merge_append_batch` delta chains into dense entries.  Returns the
    /// bytes reclaimed (0 for memory backends and garbage-free logs).
    ///
    /// Crash-safe: the dense log is staged as `<file>.compact`, fsynced and
    /// renamed over the original, so an interrupted compaction leaves either
    /// the old log or a staging file that recovery finishes or discards.
    fn compact(&mut self) -> io::Result<u64> {
        Ok(0)
    }

    /// Path of the backing file for persistent backends, `None` for memory.
    ///
    /// Callers use this to place sidecar artefacts (e.g. a serialised
    /// spatial index) next to the data they derive from.
    fn file_path(&self) -> Option<&Path> {
        None
    }

    /// A cheap fingerprint of the flushed contents, used to validate sidecar
    /// artefacts on reopen: a sidecar written at stamp `s` is only trusted
    /// while the backend still reports `s`.  Purely in-memory backends
    /// (which never outlive the process) may return 0.
    fn persist_stamp(&self) -> u64 {
        0
    }

    /// Inserts or replaces many pairs with one group flush at the end.
    ///
    /// Backends take ownership of the keys and values, so batched writers
    /// avoid the per-record copies of repeated [`put`](KvBackend::put) calls;
    /// the file backend additionally serialises the whole batch into a single
    /// log write.  Later entries win when a key repeats within the batch.
    fn put_batch(&mut self, items: Vec<(Vec<u8>, Vec<u8>)>) {
        for (key, value) in &items {
            self.put(key, value);
        }
        self.flush().expect("group flush");
    }

    /// Inserts or replaces many pairs given as borrowed slices — views into
    /// an encode [`Arena`](crate::codec::Arena) — with one group flush at the
    /// end.
    ///
    /// This is the zero-copy counterpart of [`put_batch`](KvBackend::put_batch):
    /// batched writers that serialise a whole batch into one contiguous
    /// buffer hand the slices straight through, and the file backend
    /// serialises them into a single log append without any intermediate
    /// owned records.  Later entries win when a key repeats within the batch.
    fn put_batch_slices(&mut self, items: &[(&[u8], &[u8])]) {
        for &(key, value) in items {
            self.put(key, value);
        }
        self.flush().expect("group flush");
    }

    /// Appends bytes to the values of many records with one group flush: for
    /// each `(key, append)` item the stored value becomes `old ++ append`
    /// (or just `append` for a previously absent key).
    ///
    /// This is the flush half of write-side key dedup: batched writers stage
    /// append-only deltas per *distinct* key and apply them all at once, so
    /// the backing table is probed once per key instead of the
    /// read-clone-modify-write of per-record merges.  Keys must be distinct
    /// within one call (the dedup table guarantees that); behaviour for
    /// repeated keys is backend-specific.
    fn merge_append_batch(&mut self, items: &[(&[u8], &[u8])]) {
        for &(key, append) in items {
            let mut value = self.get(key).unwrap_or_default();
            value.extend_from_slice(append);
            self.put(key, &value);
        }
        self.flush().expect("group flush");
    }

    /// Streams every live `(key, value)` pair through `visit` in blocks of up
    /// to `block` records (order unspecified, each live key exactly once).
    ///
    /// This is the vectorised counterpart of [`iter`](KvBackend::iter): full
    /// scans hand the consumer whole decode blocks instead of one record at a
    /// time, and backends may exploit their physical layout — the file
    /// backend reads the `put_batch`-laid-out log sequentially in large
    /// chunks rather than issuing one seek per key.
    fn scan_batch(&self, block: usize, visit: &mut dyn FnMut(&[KvPair])) {
        scan_blocks(self.iter(), block, visit);
    }

    /// Streams every live `(key, value)` pair through `visit` as blocks of
    /// *borrowed* slices — the zero-copy counterpart of
    /// [`scan_batch`](KvBackend::scan_batch).
    ///
    /// The slices are only valid for the duration of each `visit` call;
    /// consumers decode out of them in place (into a columnar
    /// [`ScanFrame`](crate::codec::ScanFrame)) instead of taking ownership.
    /// The file backend serves the slices straight from its mapped log
    /// region, the memory backend from its table — neither allocates per
    /// record.  The default implementation adapts [`iter`](KvBackend::iter)
    /// and does copy; backends with a physical layout override it.
    fn scan_slices(&self, block: usize, visit: &mut dyn FnMut(&[KvRef])) {
        scan_blocks(self.iter(), block, &mut |pairs: &[KvPair]| {
            let refs: Vec<(&[u8], &[u8])> = pairs
                .iter()
                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                .collect();
            visit(&refs);
        });
    }
}

/// Shared body of the iterator-driven [`KvBackend::scan_batch`] path:
/// groups `iter`'s records into blocks of up to `block` and hands each
/// block to `visit`.
fn scan_blocks(iter: impl Iterator<Item = KvPair>, block: usize, visit: &mut dyn FnMut(&[KvPair])) {
    let block = block.max(1);
    let mut buf: Vec<KvPair> = Vec::with_capacity(block);
    for pair in iter {
        buf.push(pair);
        if buf.len() == block {
            visit(&buf);
            buf.clear();
        }
    }
    if !buf.is_empty() {
        visit(&buf);
    }
}

/// Purely in-memory backend.
///
/// The table is keyed through the [`FxHasher`](crate::hash::FxHasher):
/// one-granularity ingest resolves a key per stored cell, and with short
/// structured keys the default SipHash costs more than the bucket operation
/// it guards (see `BENCH_ingest.json` for the measured effect).
#[derive(Default, Debug)]
pub struct MemBackend {
    map: FxHashMap<Vec<u8>, Vec<u8>>,
    bytes: usize,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KvBackend for MemBackend {
    fn put(&mut self, key: &[u8], value: &[u8]) {
        if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
            self.bytes -= old.len();
        } else {
            self.bytes += key.len();
        }
        self.bytes += value.len();
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (Vec<u8>, Vec<u8>)> + '_> {
        Box::new(self.map.iter().map(|(k, v)| (k.clone(), v.clone())))
    }

    fn bytes_used(&self) -> usize {
        self.bytes
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn put_batch(&mut self, items: Vec<(Vec<u8>, Vec<u8>)>) {
        self.map.reserve(items.len());
        for (key, value) in items {
            // Move the owned buffers straight into the table — the batch
            // path's win over repeated `put` calls is skipping these copies.
            let key_len = key.len();
            self.bytes += value.len();
            if let Some(old) = self.map.insert(key, value) {
                self.bytes -= old.len();
            } else {
                self.bytes += key_len;
            }
        }
    }

    fn put_batch_slices(&mut self, items: &[(&[u8], &[u8])]) {
        // The table must own its keys and values, so each slice is copied
        // exactly once, straight into its final allocation — the arena writer
        // never allocated per-record buffers to move from.
        self.map.reserve(items.len());
        for &(key, value) in items {
            self.bytes += value.len();
            if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
                self.bytes -= old.len();
            } else {
                self.bytes += key.len();
            }
        }
    }

    fn merge_append_batch(&mut self, items: &[(&[u8], &[u8])]) {
        // One probe per key, no value clone: hits extend the stored value in
        // place, misses insert the delta as the whole value.  Reserving up
        // front keeps the whole group write out of rehash growth.
        self.map.reserve(items.len());
        // The contract makes the keys distinct, so application order is
        // free — use it for locality: probing a big table in random order is
        // a cache miss per key, so when the flush covers a dense share of
        // the table, visit the keys in (estimated) bucket order instead,
        // turning the flush into a near-sequential sweep.  The table indexes
        // buckets by the low hash bits, and the estimate below mirrors the
        // 7/8-load power-of-two sizing the `reserve` above just applied, so
        // it is normally exact; a misestimate by a factor of 2^k only splits
        // the sweep into 2^k interleaved passes (weaker locality, identical
        // results — keys are distinct, so per-key appends are independent).
        // A sparse flush (few keys scattered over a big table) gains no
        // adjacency from sorting, so it skips straight to application.
        use std::hash::BuildHasher;
        let dense = items.len() * 8 >= self.map.len();
        let mut apply = |map: &mut FxHashMap<Vec<u8>, Vec<u8>>, key: &[u8], append: &[u8]| {
            if let Some(value) = map.get_mut(key) {
                value.extend_from_slice(append);
                self.bytes += append.len();
            } else {
                map.insert(key.to_vec(), append.to_vec());
                self.bytes += key.len() + append.len();
            }
        };
        if dense {
            let buckets = ((self.map.len() + items.len()) * 8 / 7).next_power_of_two();
            let mask = (buckets.max(1) as u64) - 1;
            let mut order: Vec<(u64, u32)> = items
                .iter()
                .enumerate()
                .map(|(i, (key, _))| (self.map.hasher().hash_one(*key) & mask, i as u32))
                .collect();
            order.sort_unstable();
            for (_, i) in order {
                let (key, append) = items[i as usize];
                apply(&mut self.map, key, append);
            }
        } else {
            for &(key, append) in items {
                apply(&mut self.map, key, append);
            }
        }
    }

    fn scan_slices(&self, block: usize, visit: &mut dyn FnMut(&[KvRef])) {
        // The table owns every record, so blocks borrow straight from it —
        // no per-record clones, unlike the iter-driven default.
        let block = block.max(1);
        let mut refs: Vec<(&[u8], &[u8])> = Vec::with_capacity(block);
        for (k, v) in self.map.iter() {
            refs.push((k.as_slice(), v.as_slice()));
            if refs.len() == block {
                visit(&refs);
                refs.clear();
            }
        }
        if !refs.is_empty() {
            visit(&refs);
        }
    }
}

/// Append-only-file backend with an in-memory hash index.
///
/// Records are `[key_len varint][value_len varint][key][value]`; the last
/// record for a key wins.  The index is rebuilt by scanning the log on open,
/// so no separate metadata needs to be persisted — matching the paper's
/// treatment of lineage storage as a recoverable cache.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Dedicated read handle (the writer's position must stay untouched).
    /// Opened once; re-opening the file per lookup costs more than the read.
    /// All reads go through positioned I/O (`read_at`/`seek_read`), so the
    /// handle carries no cursor state and concurrent readers — fanned-out
    /// lookup shards, capture flusher threads — never serialise on a lock.
    reader: File,
    /// key -> (offset of the value bytes, value length)
    index: FxHashMap<Vec<u8>, (u64, u32)>,
    /// Values written since the last flush; served from memory because the
    /// buffered writer may not have reached the file yet.
    pending: FxHashMap<Vec<u8>, Vec<u8>>,
    /// Logical bytes (live keys + values).
    live_bytes: usize,
    /// Next append offset.
    write_offset: u64,
    /// Read-only mapping of the flushed log prefix, refreshed after every
    /// group flush (`&mut self` paths only, so readers never race a remap —
    /// writer exclusivity is the backend's concurrency contract).  `None`
    /// when empty, unavailable on this target, or in [`ScanMode::Pread`].
    map: Option<MmapRegion>,
    /// How scans and point reads are served; see [`ScanMode`].
    scan_mode: ScanMode,
    /// Sequential-read chunk size for [`ScanMode::Pread`] scans.
    scan_chunk: usize,
}

impl FileBackend {
    /// Opens (or creates) the log file at `path`, scanning any existing
    /// records to rebuild the index.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut existing = Vec::new();
        if path.exists() {
            File::open(path)?.read_to_end(&mut existing)?;
        }
        let mut index = FxHashMap::default();
        let mut live_bytes = 0usize;
        let mut pos = 0usize;
        while pos < existing.len() {
            let record_start = pos;
            let Ok(klen) = read_varint(&existing, &mut pos) else {
                break;
            };
            let Ok(vlen) = read_varint(&existing, &mut pos) else {
                break;
            };
            let klen = klen as usize;
            let vlen = vlen as usize;
            if pos + klen + vlen > existing.len() {
                // Truncated trailing record (e.g. crash mid-append): ignore it.
                pos = record_start;
                break;
            }
            let key = existing[pos..pos + klen].to_vec();
            let value_off = (pos + klen) as u64;
            if let Some((_, old_len)) = index.insert(key.clone(), (value_off, vlen as u32)) {
                live_bytes -= old_len as usize;
            } else {
                live_bytes += klen;
            }
            live_bytes += vlen;
            pos += klen + vlen;
        }
        let write_offset = pos as u64;
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(path)?;
        if (existing.len() as u64) > write_offset {
            // Drop a torn trailing record now.  Leaving it in place would let
            // a later, shorter append leave garbage bytes behind it, which
            // the next index rebuild could mis-parse as a live record —
            // corrupting both lookups and the live-bytes accounting.
            file.set_len(write_offset)?;
        }
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::Start(write_offset))?;
        let reader = File::open(path)?;
        let mut backend = FileBackend {
            path: path.to_path_buf(),
            writer,
            reader,
            index,
            pending: FxHashMap::default(),
            live_bytes,
            write_offset,
            map: None,
            scan_mode: ScanMode::default_mode(),
            scan_chunk: default_scan_chunk(),
        };
        backend.remap();
        Ok(backend)
    }

    /// Path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current [`ScanMode`].
    pub fn scan_mode(&self) -> ScanMode {
        self.scan_mode
    }

    /// Switches between the mmap and pread read paths (tests use this to
    /// prove both serve identical results).  Entering [`ScanMode::Mmap`]
    /// maps the flushed prefix immediately; leaving it drops the mapping.
    pub fn set_scan_mode(&mut self, mode: ScanMode) {
        self.scan_mode = mode;
        self.remap();
    }

    /// Sequential-read chunk size used by [`ScanMode::Pread`] scans.
    pub fn scan_chunk(&self) -> usize {
        self.scan_chunk
    }

    /// Tunes the pread scan chunk (clamped to ≥ 1 byte; the default is
    /// 256 KiB, overridable per process with `SUBZERO_SCAN_CHUNK`).
    pub fn set_scan_chunk(&mut self, bytes: usize) {
        self.scan_chunk = bytes.max(1);
    }

    /// Refreshes the mapped region to cover exactly the flushed log prefix.
    /// Called from `&mut self` write paths only (open / flush / group
    /// writes), so no reader can hold a view of the old region — writer
    /// exclusivity is what makes dropping it sound.  Mapping failure simply
    /// leaves `map` unset and reads fall back to positioned I/O.
    fn remap(&mut self) {
        if self.scan_mode != ScanMode::Mmap {
            self.map = None;
            return;
        }
        let covered = self.map.as_ref().map_or(0, |m| m.len() as u64);
        if covered != self.write_offset {
            self.map = MmapRegion::map(&self.reader, self.write_offset);
        }
    }

    /// Parses every *complete* record in `buf` (whose first byte sits at
    /// absolute log offset `base`), emitting live records as blocks of
    /// borrowed `(key, value)` slices; superseded records are dropped by
    /// checking each parsed value position against the live index.  Returns
    /// the number of bytes consumed (everything up to the first incomplete
    /// trailing record).
    fn emit_live_records<'b>(
        &self,
        buf: &'b [u8],
        base: u64,
        block: usize,
        visit: &mut dyn FnMut(&[KvRef]),
    ) -> usize {
        let mut refs: Vec<(&'b [u8], &'b [u8])> = Vec::with_capacity(block);
        let mut pos = 0usize;
        loop {
            let record_start = pos;
            let (Ok(klen), Ok(vlen)) = (read_varint(buf, &mut pos), read_varint(buf, &mut pos))
            else {
                pos = record_start;
                break;
            };
            let (klen, vlen) = (klen as usize, vlen as usize);
            if pos + klen + vlen > buf.len() {
                pos = record_start;
                break;
            }
            let key = &buf[pos..pos + klen];
            let value_off = base + (pos + klen) as u64;
            let live = self
                .index
                .get(key)
                .is_some_and(|&(off, len)| off == value_off && len as usize == vlen);
            if live {
                refs.push((key, &buf[pos + klen..pos + klen + vlen]));
                if refs.len() == block {
                    visit(&refs);
                    refs.clear();
                }
            }
            pos += klen + vlen;
        }
        if !refs.is_empty() {
            visit(&refs);
        }
        pos
    }
}

/// Reads exactly `buf.len()` bytes at absolute `offset` without moving any
/// file cursor, so a single shared handle serves concurrent readers.
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Windows equivalent of the positioned read (`seek_read` moves the handle's
/// cursor, but every read in this backend passes an explicit offset, so the
/// cursor state is irrelevant).
#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "lineage log ended mid-record",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

impl KvBackend for FileBackend {
    fn put(&mut self, key: &[u8], value: &[u8]) {
        let mut header = Vec::with_capacity(10);
        write_varint(&mut header, key.len() as u64);
        write_varint(&mut header, value.len() as u64);
        let value_off = self.write_offset + header.len() as u64 + key.len() as u64;
        // Lineage storage is best-effort (a cache); treat I/O errors as fatal
        // for the process rather than corrupting the index silently.
        self.writer.write_all(&header).expect("lineage log write");
        self.writer.write_all(key).expect("lineage log write");
        self.writer.write_all(value).expect("lineage log write");
        self.write_offset = value_off + value.len() as u64;
        if let Some((_, old_len)) = self
            .index
            .insert(key.to_vec(), (value_off, value.len() as u32))
        {
            self.live_bytes -= old_len as usize;
        } else {
            self.live_bytes += key.len();
        }
        self.live_bytes += value.len();
        self.pending.insert(key.to_vec(), value.to_vec());
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Values written since the last flush may still sit in the buffered
        // writer; serve them from the pending map.
        if let Some(v) = self.pending.get(key) {
            return Some(v.clone());
        }
        let &(off, len) = self.index.get(key)?;
        let end = off + len as u64;
        if let Some(map) = &self.map {
            if end <= map.len() as u64 {
                // The mapped prefix covers the record: serve it with a plain
                // memcpy out of the shared page cache — no syscall.
                return Some(map.as_slice()[off as usize..end as usize].to_vec());
            }
        }
        // Positioned read through the shared handle: no seek, no lock.
        let mut buf = vec![0u8; len as usize];
        read_exact_at(&self.reader, &mut buf, off).ok()?;
        Some(buf)
    }

    fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (Vec<u8>, Vec<u8>)> + '_> {
        Box::new(
            self.index
                .keys()
                .filter_map(move |k| self.get(k).map(|v| (k.clone(), v))),
        )
    }

    fn bytes_used(&self) -> usize {
        self.live_bytes
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.pending.clear();
        // Every flushed byte is now in the file; extend the mapped prefix
        // over it so subsequent scans and gets stay zero-copy.
        self.remap();
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.pending.clear();
        self.writer.get_ref().sync_data()?;
        self.remap();
        Ok(())
    }

    fn log_len(&self) -> Option<u64> {
        Some(self.write_offset)
    }

    fn compact(&mut self) -> io::Result<u64> {
        self.writer.flush()?;
        self.pending.clear();
        let old_len = self.write_offset;
        if self.index.is_empty() && old_len == 0 {
            return Ok(0);
        }
        let mut raw = Vec::with_capacity(old_len as usize);
        File::open(&self.path)?.read_to_end(&mut raw)?;
        // Stream live records, in log order, into the staging file.  The
        // recovery path (`wal::apply_recovery`) recognises `<file>.compact`
        // and either finishes the rename or discards it, so a crash anywhere
        // in here never loses committed data.
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".compact");
        let staging_path = PathBuf::from(name);
        let staging = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&staging_path)?;
        let mut dense = BufWriter::new(staging);
        let mut new_index: FxHashMap<Vec<u8>, (u64, u32)> = FxHashMap::default();
        let mut new_offset = 0u64;
        let mut pos = 0usize;
        while pos < raw.len() {
            let record_start = pos;
            let (Ok(klen), Ok(vlen)) = (read_varint(&raw, &mut pos), read_varint(&raw, &mut pos))
            else {
                break;
            };
            let (klen, vlen) = (klen as usize, vlen as usize);
            if pos + klen + vlen > raw.len() {
                break;
            }
            let key = &raw[pos..pos + klen];
            let value_off = (pos + klen) as u64;
            let live = self
                .index
                .get(key)
                .is_some_and(|&(off, len)| off == value_off && len as usize == vlen);
            if live {
                let header_len = pos - record_start;
                dense.write_all(&raw[record_start..pos + klen + vlen])?;
                new_index.insert(
                    key.to_vec(),
                    (new_offset + (header_len + klen) as u64, vlen as u32),
                );
                new_offset += (header_len + klen + vlen) as u64;
            }
            pos += klen + vlen;
        }
        dense.flush()?;
        let staging = dense.into_inner().map_err(|e| e.into_error())?;
        staging.sync_data()?;
        if new_offset == old_len {
            // Nothing superseded: keep the original log untouched.
            drop(staging);
            std::fs::remove_file(&staging_path)?;
            return Ok(0);
        }
        drop(staging);
        std::fs::rename(&staging_path, &self.path)?;
        // Swap every handle over to the dense log and rebuild derived state.
        let file = OpenOptions::new().write(true).read(true).open(&self.path)?;
        let mut writer = BufWriter::new(file);
        writer.seek(SeekFrom::Start(new_offset))?;
        self.writer = writer;
        self.reader = File::open(&self.path)?;
        self.index = new_index;
        self.write_offset = new_offset;
        self.map = None;
        self.remap();
        Ok(old_len - new_offset)
    }

    fn file_path(&self) -> Option<&Path> {
        Some(&self.path)
    }

    fn persist_stamp(&self) -> u64 {
        // Mixes the append offset with the live-key population: reopening the
        // log replays to the same offset/index, while any write (or a torn
        // tail truncated on reopen) moves the stamp and invalidates sidecars
        // derived from the old contents.
        self.write_offset
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.index.len() as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.live_bytes as u64)
    }

    fn put_batch(&mut self, items: Vec<(Vec<u8>, Vec<u8>)>) {
        let slices: Vec<(&[u8], &[u8])> = items
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        self.put_batch_slices(&slices);
    }

    fn put_batch_slices(&mut self, items: &[(&[u8], &[u8])]) {
        // Serialise the whole batch into one buffer and append it with a
        // single group flush.  Because the records provably reach the file
        // before this call returns, none of them need to be double-buffered
        // in the `pending` map — the biggest per-record cost of the
        // one-at-a-time path.
        if !self.pending.is_empty() {
            // Earlier one-at-a-time puts may still be buffered; flush them so
            // a stale `pending` entry can never shadow a batch record.
            self.flush().expect("lineage log flush");
        }
        let payload: usize = items.iter().map(|(k, v)| k.len() + v.len() + 20).sum();
        let mut buf = Vec::with_capacity(payload);
        for &(key, value) in items {
            write_varint(&mut buf, key.len() as u64);
            write_varint(&mut buf, value.len() as u64);
            let value_off = self.write_offset + (buf.len() + key.len()) as u64;
            buf.extend_from_slice(key);
            buf.extend_from_slice(value);
            if let Some((_, old_len)) = self
                .index
                .insert(key.to_vec(), (value_off, value.len() as u32))
            {
                self.live_bytes -= old_len as usize;
            } else {
                self.live_bytes += key.len();
            }
            self.live_bytes += value.len();
        }
        self.write_offset += buf.len() as u64;
        self.writer.write_all(&buf).expect("lineage log write");
        self.writer.flush().expect("lineage log group flush");
        self.remap();
    }

    fn merge_append_batch(&mut self, items: &[(&[u8], &[u8])]) {
        // The log is append-only, so a merged record must be rewritten whole:
        // read the old values first (through the pending map / index as
        // usual), then append every merged record with one group write.
        let merged: Vec<Vec<u8>> = items
            .iter()
            .map(|&(key, append)| {
                let mut value = self.get(key).unwrap_or_default();
                value.extend_from_slice(append);
                value
            })
            .collect();
        let slices: Vec<(&[u8], &[u8])> = items
            .iter()
            .zip(&merged)
            .map(|(&(key, _), value)| (key, value.as_slice()))
            .collect();
        self.put_batch_slices(&slices);
    }

    /// Owned-pair scan: a thin adapter over [`KvBackend::scan_slices`] that copies each
    /// block into a scratch buffer whose `(key, value)` allocations are
    /// reused across blocks (and only ever grow), so a whole-log scan costs
    /// at most one allocation per scratch slot rather than two per record.
    fn scan_batch(&self, block: usize, visit: &mut dyn FnMut(&[KvPair])) {
        let mut scratch: Vec<KvPair> = Vec::new();
        self.scan_slices(block, &mut |pairs| {
            for (i, &(key, value)) in pairs.iter().enumerate() {
                if i < scratch.len() {
                    let (k, v) = &mut scratch[i];
                    k.clear();
                    k.extend_from_slice(key);
                    v.clear();
                    v.extend_from_slice(value);
                } else {
                    scratch.push((key.to_vec(), value.to_vec()));
                }
            }
            visit(&scratch[..pairs.len()]);
        });
    }

    /// Scans the log zero-copy.  In [`ScanMode::Mmap`] the whole flushed
    /// prefix is one mapped slice and blocks borrow straight from the page
    /// cache; in [`ScanMode::Pread`] (or when the prefix could not be
    /// mapped) the log is fetched *sequentially* in large tunable chunks and
    /// blocks borrow from the carry buffer for the duration of each `visit`.
    /// Either way record parsing rides the `put_batch` layout (batched
    /// records are physically contiguous) and superseded records are skipped
    /// via the live index.
    fn scan_slices(&self, block: usize, visit: &mut dyn FnMut(&[KvRef])) {
        let block = block.max(1);
        if !self.pending.is_empty() {
            // Unflushed one-at-a-time puts may not have reached the file yet;
            // fall back to the index-driven scan, which serves them.
            scan_blocks(self.iter(), block, &mut |pairs: &[KvPair]| {
                let refs: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(k, v)| (k.as_slice(), v.as_slice()))
                    .collect();
                visit(&refs);
            });
            return;
        }
        if let Some(map) = &self.map {
            if map.len() as u64 == self.write_offset {
                // Zero-copy fast path: every record lives in the mapping.
                self.emit_live_records(map.as_slice(), 0, block, visit);
                return;
            }
        }
        let mut chunk = vec![0u8; self.scan_chunk];
        let mut carry: Vec<u8> = Vec::new();
        let mut remaining = self.write_offset;
        let mut read_pos = 0u64; // absolute log offset of the next chunk read
        let mut file_pos = 0u64; // absolute log offset of carry[0]
        loop {
            if remaining > 0 {
                let want = remaining.min(chunk.len() as u64) as usize;
                // Positioned read: the scan tracks its own offset, so
                // concurrent point lookups through the same handle are
                // unaffected.  A truncated scan would silently drop lineage
                // from query answers; like the other log I/O in this
                // backend, treat failures as fatal.
                read_exact_at(&self.reader, &mut chunk[..want], read_pos)
                    .expect("lineage log scan read");
                read_pos += want as u64;
                remaining -= want as u64;
                carry.extend_from_slice(&chunk[..want]);
            }
            // Parse and emit every complete record in the carry buffer; the
            // borrowed blocks are handed out before the drain invalidates
            // them (a block may come up short at a chunk boundary).
            let consumed = self.emit_live_records(&carry, file_pos, block, visit);
            carry.drain(..consumed);
            file_pos += consumed as u64;
            if remaining == 0 {
                break;
            }
        }
    }
}

/// A single named key-value database (≈ one BerkeleyDB hashtable instance).
pub struct Database {
    name: String,
    backend: Box<dyn KvBackend>,
    puts: u64,
    gets: u64,
}

impl Database {
    /// Wraps a backend under a name.
    pub fn new(name: impl Into<String>, backend: Box<dyn KvBackend>) -> Self {
        Database {
            name: name.into(),
            backend,
            puts: 0,
            gets: 0,
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts or replaces a value.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.puts += 1;
        self.backend.put(key, value);
    }

    /// Inserts or replaces many pairs with one group flush at the end (see
    /// [`KvBackend::put_batch`]).
    pub fn put_batch(&mut self, items: Vec<(Vec<u8>, Vec<u8>)>) {
        self.puts += items.len() as u64;
        self.backend.put_batch(items);
    }

    /// Inserts or replaces many pairs given as borrowed slices (arena views)
    /// with one group flush at the end (see [`KvBackend::put_batch_slices`]).
    pub fn put_batch_slices(&mut self, items: &[(&[u8], &[u8])]) {
        self.puts += items.len() as u64;
        self.backend.put_batch_slices(items);
    }

    /// Appends bytes to the values of many records with one group flush (the
    /// flush half of write-side key dedup; see
    /// [`KvBackend::merge_append_batch`]).
    pub fn merge_append_batch(&mut self, items: &[(&[u8], &[u8])]) {
        self.puts += items.len() as u64;
        self.backend.merge_append_batch(items);
    }

    /// Fetches a value.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.gets += 1;
        self.backend.get(key)
    }

    /// Fetches a value without recording an access (used by iterators and
    /// statistics).
    pub fn peek(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.backend.get(key)
    }

    /// Reads the current value of `key`, applies `merge` to it (or to `None`)
    /// and stores the result.  This is the "on a key collision, decode, merge
    /// and re-encode" path of the paper's runtime.
    pub fn merge(&mut self, key: &[u8], merge: impl FnOnce(Option<Vec<u8>>) -> Vec<u8>) {
        let existing = self.backend.get(key);
        let merged = merge(existing);
        self.put(key, &merged);
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.backend.contains(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Iterates over all `(key, value)` pairs.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (Vec<u8>, Vec<u8>)> + '_> {
        self.backend.iter()
    }

    /// Streams every `(key, value)` pair through `visit` in blocks of up to
    /// `block` records (see [`KvBackend::scan_batch`]); full scans should
    /// prefer this over [`iter`](Database::iter) so the backend can use its
    /// physical layout.
    pub fn scan_batch(&self, block: usize, visit: &mut dyn FnMut(&[KvPair])) {
        self.backend.scan_batch(block, visit);
    }

    /// Streams every `(key, value)` pair through `visit` as blocks of
    /// borrowed slices, zero-copy where the backend's layout allows it (see
    /// [`KvBackend::scan_slices`]); the slices are valid only during each
    /// `visit` call.
    pub fn scan_slices(&self, block: usize, visit: &mut dyn FnMut(&[KvRef])) {
        self.backend.scan_slices(block, visit);
    }

    /// Logical bytes stored.
    pub fn bytes_used(&self) -> usize {
        self.backend.bytes_used()
    }

    /// Flushes buffered writes.
    pub fn flush(&mut self) -> io::Result<()> {
        self.backend.flush()
    }

    /// Forces flushed bytes to stable storage (see [`KvBackend::sync`]).
    pub fn sync(&mut self) -> io::Result<()> {
        self.backend.sync()
    }

    /// Flushed log length for persistent backends (see
    /// [`KvBackend::log_len`]).
    pub fn log_len(&self) -> Option<u64> {
        self.backend.log_len()
    }

    /// Folds superseded records out of the log, returning bytes reclaimed
    /// (see [`KvBackend::compact`]).
    pub fn compact(&mut self) -> io::Result<u64> {
        self.backend.compact()
    }

    /// Path of the backing file for persistent backends, `None` for memory
    /// (see [`KvBackend::file_path`]).
    pub fn file_path(&self) -> Option<&Path> {
        self.backend.file_path()
    }

    /// Fingerprint of the flushed contents for sidecar validation (see
    /// [`KvBackend::persist_stamp`]).
    pub fn persist_stamp(&self) -> u64 {
        self.backend.persist_stamp()
    }

    /// Access statistics `(puts, gets)`.
    pub fn access_stats(&self) -> (u64, u64) {
        (self.puts, self.gets)
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("name", &self.name)
            .field("len", &self.backend.len())
            .field("bytes", &self.backend.bytes_used())
            .finish()
    }
}

/// Aggregate statistics over every database owned by a [`StoreManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of databases allocated.
    pub databases: usize,
    /// Total live keys across databases.
    pub entries: usize,
    /// Total logical bytes across databases.
    pub bytes: usize,
}

/// Allocates and owns one [`Database`] per operator/strategy instance.
///
/// If constructed with [`StoreManager::on_disk`], databases persist to
/// append-only files under the given directory; otherwise they live in
/// memory.  Either way the interface is identical, so the lineage runtime
/// does not care which mode the benchmark harness selects.
pub struct StoreManager {
    dir: Option<PathBuf>,
    databases: HashMap<String, Database>,
}

impl StoreManager {
    /// A manager whose databases live purely in memory.
    pub fn in_memory() -> Self {
        StoreManager {
            dir: None,
            databases: HashMap::new(),
        }
    }

    /// A manager whose databases persist under `dir` (one file per database).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        StoreManager {
            dir: Some(dir.into()),
            databases: HashMap::new(),
        }
    }

    /// Returns the database named `name`, creating it if needed.
    pub fn database(&mut self, name: &str) -> &mut Database {
        if !self.databases.contains_key(name) {
            let backend: Box<dyn KvBackend> = match &self.dir {
                None => Box::new(MemBackend::new()),
                Some(dir) => {
                    let file = dir.join(format!("{}.kv", sanitize_filename(name)));
                    Box::new(FileBackend::open(&file).expect("open lineage database file"))
                }
            };
            self.databases
                .insert(name.to_string(), Database::new(name, backend));
        }
        self.databases
            .get_mut(name)
            .expect("database just inserted")
    }

    /// Returns the database named `name` if it already exists.
    pub fn existing(&self, name: &str) -> Option<&Database> {
        self.databases.get(name)
    }

    /// Returns a mutable reference to an existing database.
    pub fn existing_mut(&mut self, name: &str) -> Option<&mut Database> {
        self.databases.get_mut(name)
    }

    /// Whether a database named `name` has been created.
    pub fn has(&self, name: &str) -> bool {
        self.databases.contains_key(name)
    }

    /// Drops a database (its file, if any, is left on disk; callers that want
    /// to reclaim the space can remove the directory).
    pub fn drop_database(&mut self, name: &str) {
        self.databases.remove(name);
    }

    /// Names of all allocated databases.
    pub fn names(&self) -> Vec<&str> {
        self.databases.keys().map(|s| s.as_str()).collect()
    }

    /// Aggregate statistics across every database.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            databases: self.databases.len(),
            ..Default::default()
        };
        for db in self.databases.values() {
            s.entries += db.len();
            s.bytes += db.bytes_used();
        }
        s
    }

    /// Total logical bytes stored across databases.
    pub fn total_bytes(&self) -> usize {
        self.stats().bytes
    }

    /// Flushes every database.
    pub fn flush_all(&mut self) -> io::Result<()> {
        for db in self.databases.values_mut() {
            db.flush()?;
        }
        Ok(())
    }
}

impl Default for StoreManager {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl std::fmt::Debug for StoreManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreManager")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

fn sanitize_filename(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend_contract(mut b: Box<dyn KvBackend>) {
        assert!(b.is_empty());
        b.put(b"k1", b"v1");
        b.put(b"k2", b"v2");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert!(b.contains(b"k2"));
        assert!(!b.contains(b"k3"));
        // Overwrite replaces and the logical size reflects the new value.
        b.put(b"k1", b"longer-value");
        assert_eq!(b.get(b"k1").as_deref(), Some(&b"longer-value"[..]));
        assert_eq!(b.len(), 2);
        let expected_bytes = 2 + 12 + 2 + 2; // k1 + new value + k2 + v2
        assert_eq!(b.bytes_used(), expected_bytes);
        let mut pairs: Vec<_> = b.iter().collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                (b"k1".to_vec(), b"longer-value".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec())
            ]
        );
        b.flush().unwrap();
    }

    #[test]
    fn mem_backend_contract() {
        backend_contract(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_contract() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-{}", std::process::id()));
        let path = dir.join("contract.kv");
        let _ = std::fs::remove_file(&path);
        backend_contract(Box::new(FileBackend::open(&path).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_reopen_recovers_index() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-reopen-{}", std::process::id()));
        let path = dir.join("reopen.kv");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.put(b"a", b"1");
            b.put(b"b", b"2");
            b.put(b"a", b"3"); // supersedes the first record
            b.flush().unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(b"a").as_deref(), Some(&b"3"[..]));
        assert_eq!(b.get(b"b").as_deref(), Some(&b"2"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_compact_folds_delta_chains() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-compact-{}", std::process::id()));
        let path = dir.join("compact.kv");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        // Build delta chains: each merge_append supersedes the previous
        // record for the key, so the log accumulates garbage.
        for round in 0..8u8 {
            let delta = [round; 16];
            b.merge_append_batch(&[(b"chain-a", &delta[..]), (b"chain-b", &delta[..])]);
        }
        b.put(b"plain", b"value");
        b.sync().unwrap();
        let before = b.log_len().unwrap();
        let expected_a = b.get(b"chain-a").unwrap();
        let reclaimed = b.compact().unwrap();
        assert!(reclaimed > 0, "delta chains must free bytes");
        let after = b.log_len().unwrap();
        assert_eq!(after + reclaimed, before);
        assert_eq!(after, path.metadata().unwrap().len());
        // Contents survive, through the live handles and through a reopen.
        assert_eq!(b.get(b"chain-a").as_deref(), Some(&expected_a[..]));
        assert_eq!(b.get(b"plain").as_deref(), Some(&b"value"[..]));
        assert_eq!(b.len(), 3);
        // Appends after compaction land cleanly on the dense log.
        b.put(b"post", b"compact");
        b.flush().unwrap();
        drop(b);
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.get(b"chain-a").as_deref(), Some(&expected_a[..]));
        assert_eq!(b.get(b"post").as_deref(), Some(&b"compact"[..]));
        // A second compaction over the (now dense + one live append) log
        // reclaims nothing and leaves the file alone.
        let mut b = b;
        assert_eq!(b.compact().unwrap(), 0);
        assert!(!path.with_extension("kv.compact").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_ignores_truncated_tail() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-trunc-{}", std::process::id()));
        let path = dir.join("trunc.kv");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.put(b"good", b"value");
            b.flush().unwrap();
        }
        // Simulate a crash mid-append by writing a partial record.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[5, 200]).unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.get(b"good").as_deref(), Some(&b"value"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_truncates_torn_tail_on_open() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-torn-{}", std::process::id()));
        let path = dir.join("torn.kv");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.put(b"good", b"value");
            b.flush().unwrap();
        }
        // A crash mid-append leaves a long torn record: a header promising
        // more bytes than the file holds.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[4, 40, b'x', b'x']).unwrap();
        }
        // Reopen (which must drop the torn tail) and append a record that is
        // *shorter* than the garbage was.
        {
            let mut b = FileBackend::open(&path).unwrap();
            assert_eq!(b.len(), 1);
            b.put(b"k", b"v");
            b.flush().unwrap();
        }
        // Without truncation the garbage bytes after the short record would
        // be rescanned as a bogus extra record here.
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(b"good").as_deref(), Some(&b"value"[..]));
        assert_eq!(b.get(b"k").as_deref(), Some(&b"v"[..]));
        let expected_bytes = 4 + 5 + 1 + 1;
        assert_eq!(b.bytes_used(), expected_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn put_batch_contract(mut b: Box<dyn KvBackend>) {
        b.put(b"seed", b"old");
        b.put_batch(vec![
            (b"k1".to_vec(), b"v1".to_vec()),
            (b"seed".to_vec(), b"new".to_vec()),
            (b"dup".to_vec(), b"first".to_vec()),
            (b"dup".to_vec(), b"second".to_vec()),
        ]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(
            b.get(b"seed").as_deref(),
            Some(&b"new"[..]),
            "batch supersedes put"
        );
        assert_eq!(
            b.get(b"dup").as_deref(),
            Some(&b"second"[..]),
            "last in batch wins"
        );
        // Logical bytes count live records only, exactly as repeated put().
        let mut reference = MemBackend::new();
        for (k, v) in b.iter() {
            reference.put(&k, &v);
        }
        assert_eq!(b.bytes_used(), reference.bytes_used());
        b.flush().unwrap();
    }

    #[test]
    fn mem_backend_put_batch_contract() {
        put_batch_contract(Box::new(MemBackend::new()));
    }

    fn put_batch_slices_contract(mut b: Box<dyn KvBackend>) {
        // The zero-copy slice path must behave exactly like put_batch:
        // supersede earlier puts, count live bytes only, group-flush.
        b.put(b"seed", b"old");
        let mut arena = crate::codec::Arena::new();
        let k1 = arena.push(b"k1");
        let v1 = arena.push(b"v1");
        let seed = arena.push(b"seed");
        let new = arena.push(b"new");
        b.put_batch_slices(&[
            (arena.get(k1), arena.get(v1)),
            (arena.get(seed), arena.get(new)),
        ]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(b"k1").as_deref(), Some(&b"v1"[..]));
        assert_eq!(b.get(b"seed").as_deref(), Some(&b"new"[..]));
        let mut reference = MemBackend::new();
        for (k, v) in b.iter() {
            reference.put(&k, &v);
        }
        assert_eq!(b.bytes_used(), reference.bytes_used());
    }

    #[test]
    fn mem_backend_put_batch_slices_contract() {
        put_batch_slices_contract(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_put_batch_slices_contract() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-slices-{}", std::process::id()));
        let path = dir.join("slices.kv");
        let _ = std::fs::remove_file(&path);
        put_batch_slices_contract(Box::new(FileBackend::open(&path).unwrap()));
        // Slice-batched records survive reopen like any other log record.
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(b"seed").as_deref(), Some(&b"new"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_put_batch_contract() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-batch-{}", std::process::id()));
        let path = dir.join("batch.kv");
        let _ = std::fs::remove_file(&path);
        put_batch_contract(Box::new(FileBackend::open(&path).unwrap()));
        // Batched records survive reopen like any other log record.
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(b"dup").as_deref(), Some(&b"second"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn merge_append_batch_contract(mut b: Box<dyn KvBackend>) {
        b.put(b"seed", b"old");
        b.flush().unwrap();
        b.merge_append_batch(&[(b"seed", b"+1"), (b"fresh", b"value")]);
        assert_eq!(
            b.get(b"seed").as_deref(),
            Some(&b"old+1"[..]),
            "append extends the stored value"
        );
        assert_eq!(
            b.get(b"fresh").as_deref(),
            Some(&b"value"[..]),
            "absent key takes the delta as its value"
        );
        // A second round keeps appending, and bytes_used matches a rebuilt
        // reference (live records only).
        b.merge_append_batch(&[(b"seed", b"+2")]);
        assert_eq!(b.get(b"seed").as_deref(), Some(&b"old+1+2"[..]));
        let mut reference = MemBackend::new();
        for (k, v) in b.iter() {
            reference.put(&k, &v);
        }
        assert_eq!(b.bytes_used(), reference.bytes_used());
    }

    #[test]
    fn mem_backend_merge_append_batch_contract() {
        merge_append_batch_contract(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_merge_append_batch_contract() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-mab-{}", std::process::id()));
        let path = dir.join("mab.kv");
        let _ = std::fs::remove_file(&path);
        merge_append_batch_contract(Box::new(FileBackend::open(&path).unwrap()));
        // Merged records survive reopen (the log holds the full new value).
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.get(b"seed").as_deref(), Some(&b"old+1+2"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn scan_batch_contract(mut b: Box<dyn KvBackend>) {
        // Mix of batched records, superseded records and one unflushed put.
        b.put_batch(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
            (b"c".to_vec(), b"3".to_vec()),
        ]);
        b.put_batch(vec![(b"b".to_vec(), b"22".to_vec())]); // supersedes
        b.put(b"d", b"4"); // buffered, not yet flushed

        for block in [1usize, 2, 64] {
            let mut seen: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut blocks = 0usize;
            b.scan_batch(block, &mut |pairs| {
                blocks += 1;
                assert!(pairs.len() <= block, "block overflow at size {block}");
                seen.extend_from_slice(pairs);
            });
            seen.sort();
            assert_eq!(
                seen,
                vec![
                    (b"a".to_vec(), b"1".to_vec()),
                    (b"b".to_vec(), b"22".to_vec()),
                    (b"c".to_vec(), b"3".to_vec()),
                    (b"d".to_vec(), b"4".to_vec()),
                ],
                "block size {block}"
            );
            assert!(blocks >= seen.len().div_ceil(block));
        }

        // After a flush the file backend takes its sequential path; results
        // must be identical.
        b.flush().unwrap();
        let mut seen: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        b.scan_batch(2, &mut |pairs| seen.extend_from_slice(pairs));
        seen.sort();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[1], (b"b".to_vec(), b"22".to_vec()));
    }

    #[test]
    fn mem_backend_scan_batch_contract() {
        scan_batch_contract(Box::new(MemBackend::new()));
    }

    #[test]
    fn file_backend_scan_batch_contract() {
        let dir = std::env::temp_dir().join(format!("subzero-kv-scan-{}", std::process::id()));
        let path = dir.join("scan.kv");
        let _ = std::fs::remove_file(&path);
        scan_batch_contract(Box::new(FileBackend::open(&path).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_scan_batch_spans_chunk_boundaries() {
        // Values larger than the pread chunk force the carry-buffer path:
        // records parse correctly across refills.  Pin ScanMode::Pread so
        // the mmap fast path can't serve the scan in one slice.
        let dir = std::env::temp_dir().join(format!("subzero-kv-scanbig-{}", std::process::id()));
        let path = dir.join("scanbig.kv");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        b.set_scan_mode(ScanMode::Pread);
        let items: Vec<(Vec<u8>, Vec<u8>)> =
            (0..8u8).map(|i| (vec![i], vec![i; 100_000])).collect();
        b.put_batch(items.clone());
        for chunk in [DEFAULT_SCAN_CHUNK, 4096, 37] {
            b.set_scan_chunk(chunk);
            assert_eq!(b.scan_chunk(), chunk);
            let mut seen: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            b.scan_batch(3, &mut |pairs| seen.extend_from_slice(pairs));
            seen.sort();
            assert_eq!(seen, items, "scan chunk {chunk}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_mmap_and_pread_scans_are_identical() {
        // The same backend must serve byte-identical scans, slice scans and
        // point reads in both modes.
        let dir = std::env::temp_dir().join(format!("subzero-kv-modes-{}", std::process::id()));
        let path = dir.join("modes.kv");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..257u32)
            .map(|i| {
                (
                    i.to_be_bytes().to_vec(),
                    vec![i as u8; 1 + (i as usize % 97)],
                )
            })
            .collect();
        b.put_batch(items.clone());
        b.put_batch(vec![(0u32.to_be_bytes().to_vec(), b"superseded".to_vec())]);

        let collect = |b: &FileBackend| {
            let mut owned: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            b.scan_batch(13, &mut |pairs| owned.extend_from_slice(pairs));
            owned.sort();
            let mut sliced: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            b.scan_slices(13, &mut |pairs| {
                sliced.extend(pairs.iter().map(|&(k, v)| (k.to_vec(), v.to_vec())));
            });
            sliced.sort();
            assert_eq!(owned, sliced, "scan_batch and scan_slices disagree");
            owned
        };

        b.set_scan_mode(ScanMode::Mmap);
        let via_mmap = collect(&b);
        b.set_scan_mode(ScanMode::Pread);
        let via_pread = collect(&b);
        assert_eq!(via_mmap, via_pread);
        assert_eq!(via_mmap.len(), 257);
        assert_eq!(via_mmap[0].1, b"superseded".to_vec());

        for mode in [ScanMode::Mmap, ScanMode::Pread] {
            b.set_scan_mode(mode);
            assert_eq!(b.scan_mode(), mode);
            for i in [0u32, 7, 256] {
                let got = b.get(&i.to_be_bytes()).expect("key present");
                let want = if i == 0 {
                    b"superseded".to_vec()
                } else {
                    vec![i as u8; 1 + (i as usize % 97)]
                };
                assert_eq!(got, want, "mode {mode:?} key {i}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_positioned_reads_are_concurrent() {
        // The reader handle carries no cursor: point lookups and full scans
        // from many threads must all see consistent records.
        let dir = std::env::temp_dir().join(format!("subzero-kv-pread-{}", std::process::id()));
        let path = dir.join("pread.kv");
        let _ = std::fs::remove_file(&path);
        let mut b = FileBackend::open(&path).unwrap();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..64u32)
            .map(|i| (i.to_be_bytes().to_vec(), vec![i as u8; 100 + i as usize]))
            .collect();
        b.put_batch(items.clone());
        let b = &b;
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in (t..64u32).step_by(4) {
                        let got = b.get(&i.to_be_bytes()).expect("key present");
                        assert_eq!(got, vec![i as u8; 100 + i as usize]);
                    }
                    let mut seen = 0usize;
                    b.scan_batch(7, &mut |pairs| seen += pairs.len());
                    assert_eq!(seen, 64);
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn database_merge_reads_then_writes() {
        let mut db = Database::new("m", Box::new(MemBackend::new()));
        db.merge(b"k", |old| {
            assert!(old.is_none());
            b"a".to_vec()
        });
        db.merge(b"k", |old| {
            let mut v = old.unwrap();
            v.extend_from_slice(b"b");
            v
        });
        assert_eq!(db.get(b"k").as_deref(), Some(&b"ab"[..]));
        let (puts, gets) = db.access_stats();
        assert_eq!(puts, 2);
        assert_eq!(gets, 1);
    }

    #[test]
    fn store_manager_allocates_per_name() {
        let mut mgr = StoreManager::in_memory();
        mgr.database("op1:full_one").put(b"x", b"1");
        mgr.database("op2:pay_one").put(b"y", b"22");
        assert!(mgr.has("op1:full_one"));
        assert!(!mgr.has("op3"));
        let stats = mgr.stats();
        assert_eq!(stats.databases, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 1 + 1 + 1 + 2);
        assert_eq!(mgr.total_bytes(), stats.bytes);
        mgr.drop_database("op1:full_one");
        assert_eq!(mgr.stats().databases, 1);
    }

    #[test]
    fn store_manager_on_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("subzero-mgr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut mgr = StoreManager::on_disk(&dir);
        mgr.database("op A/B").put(b"k", b"v");
        mgr.flush_all().unwrap();
        assert!(dir.join("op_A_B.kv").exists(), "sanitized filename used");
        assert_eq!(mgr.database("op A/B").get(b"k").as_deref(), Some(&b"v"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
