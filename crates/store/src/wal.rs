//! Write-ahead log of operator executions (black-box lineage).
//!
//! "We automatically store black-box lineage by using write-ahead logging,
//! which guarantees that black-box lineage is written before the array data"
//! (§VI-A).  A black-box record is simply: which operator ran, which array
//! versions it consumed, which version it produced, and how long it took.
//! Together with the no-overwrite versioned array store this is sufficient to
//! re-run any previously executed operator from any point in the workflow.

use std::fmt;

/// One operator execution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Workflow-instance identifier the execution belonged to.
    pub run_id: u64,
    /// Operator identifier within the workflow.
    pub op_id: u32,
    /// Human-readable operator name.
    pub op_name: String,
    /// Array-store version ids of each input, in input order.
    pub input_versions: Vec<u64>,
    /// Array-store version id of the output.
    pub output_version: u64,
    /// Wall-clock execution time in microseconds.
    pub elapsed_us: u64,
}

impl fmt::Display for WalEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run={} op#{} {} inputs={:?} output={} elapsed={}us",
            self.run_id,
            self.op_id,
            self.op_name,
            self.input_versions,
            self.output_version,
            self.elapsed_us
        )
    }
}

/// An append-only log of [`WalEntry`] records.
///
/// The log is held in memory and can optionally be mirrored to a file; the
/// important property for SubZero is ordering (the entry is appended *before*
/// the output array version becomes visible), which the workflow executor
/// guarantees by calling [`WriteAheadLog::append`] first.
#[derive(Default, Debug)]
pub struct WriteAheadLog {
    entries: Vec<WalEntry>,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning its sequence number.
    pub fn append(&mut self, entry: WalEntry) -> u64 {
        self.entries.push(entry);
        (self.entries.len() - 1) as u64
    }

    /// All records, in append order.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records for one workflow run.
    pub fn for_run(&self, run_id: u64) -> Vec<&WalEntry> {
        self.entries.iter().filter(|e| e.run_id == run_id).collect()
    }

    /// The most recent record for `(run_id, op_id)`, if the operator ran.
    pub fn lookup(&self, run_id: u64, op_id: u32) -> Option<&WalEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.run_id == run_id && e.op_id == op_id)
    }

    /// Approximate size of the log in bytes (black-box lineage overhead is
    /// reported as ~0 in the paper; this lets the harness verify that).
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| 8 + 4 + e.op_name.len() + e.input_versions.len() * 8 + 8 + 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: u64, op: u32, out: u64) -> WalEntry {
        WalEntry {
            run_id: run,
            op_id: op,
            op_name: format!("op{op}"),
            input_versions: vec![out.saturating_sub(1)],
            output_version: out,
            elapsed_us: 10,
        }
    }

    #[test]
    fn append_and_lookup() {
        let mut wal = WriteAheadLog::new();
        assert!(wal.is_empty());
        assert_eq!(wal.append(entry(1, 0, 10)), 0);
        assert_eq!(wal.append(entry(1, 1, 11)), 1);
        assert_eq!(wal.append(entry(2, 0, 20)), 2);
        assert_eq!(wal.len(), 3);
        assert_eq!(wal.lookup(1, 1).unwrap().output_version, 11);
        assert!(wal.lookup(3, 0).is_none());
        assert_eq!(wal.for_run(1).len(), 2);
    }

    #[test]
    fn lookup_returns_latest_record_for_reruns() {
        let mut wal = WriteAheadLog::new();
        wal.append(entry(1, 0, 10));
        wal.append(entry(1, 0, 15));
        assert_eq!(wal.lookup(1, 0).unwrap().output_version, 15);
    }

    #[test]
    fn size_is_small() {
        let mut wal = WriteAheadLog::new();
        for i in 0..26 {
            wal.append(entry(1, i, 100 + i as u64));
        }
        // 26 operators (the astronomy workflow) should cost well under a KB.
        assert!(
            wal.size_bytes() < 1500,
            "wal too large: {}",
            wal.size_bytes()
        );
    }

    #[test]
    fn display_formats_entry() {
        let e = entry(7, 3, 42);
        let s = e.to_string();
        assert!(s.contains("run=7"));
        assert!(s.contains("op#3"));
        assert!(s.contains("output=42"));
    }
}
