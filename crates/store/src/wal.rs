//! Durable write-ahead log and the transactional run-commit records.
//!
//! "We automatically store black-box lineage by using write-ahead logging,
//! which guarantees that black-box lineage is written before the array data"
//! (§VI-A).  The log started life as that in-memory black-box record; it is
//! now also the durability backbone of the storage tier: a run's `.kv`
//! appends are *staged* (bytes past the last committed length are
//! provisional) and published by a two-phase commit — each shard logs a
//! [`WalRecord::Prepare`] naming the exact flushed length of every file the
//! run touched, and the coordinator's single [`WalRecord::Commit`] record is
//! the atomic publish point.  On reopen, [`recover_dir`] replays the log and
//! rolls every file back to its last committed length, so a run without a
//! commit record vanishes entirely — all-or-nothing across every touched
//! shard.  [`WalRecord::Checkpoint`] folds decided transactions into a
//! baseline and truncates the log (atomically, via rename), so replay cost
//! never grows with history.
//!
//! ## On-disk format
//!
//! Each record is length-prefixed and checksummed, mirroring the `.kv` log's
//! own recovery discipline (torn tails are truncated, never trusted):
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! The payload starts with a tag byte followed by varint/length-prefixed
//! fields (see [`WalRecord`]).  Replay accepts the longest valid prefix: a
//! record with a short body, a checksum mismatch, an unknown tag, or a
//! malformed payload ends the replay *and truncates the file there*, so a
//! torn append from a crash mid-write cannot be misread as data and a
//! reopened log appends from a clean boundary.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{read_varint, write_varint};
use crate::failpoint;

/// File name of a shard- or runtime-local log inside its datastore
/// directory.
pub const WAL_FILE: &str = "wal.log";

/// Records larger than this are rejected on append and treated as
/// corruption on replay — a bit-flipped length prefix must not provoke a
/// multi-gigabyte allocation.
pub const MAX_WAL_RECORD: usize = 16 << 20;

/// One operator execution record (the paper's black-box lineage: which
/// operator ran, which array versions it consumed/produced, how long it
/// took).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Workflow-instance identifier the execution belonged to.
    pub run_id: u64,
    /// Operator identifier within the workflow.
    pub op_id: u32,
    /// Human-readable operator name.
    pub op_name: String,
    /// Array-store version ids of each input, in input order.
    pub input_versions: Vec<u64>,
    /// Array-store version id of the output.
    pub output_version: u64,
    /// Wall-clock execution time in microseconds.
    pub elapsed_us: u64,
}

impl fmt::Display for WalEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run={} op#{} {} inputs={:?} output={} elapsed={}us",
            self.run_id,
            self.op_id,
            self.op_name,
            self.input_versions,
            self.output_version,
            self.elapsed_us
        )
    }
}

/// `(file name, byte length)` of one `.kv` log at a commit boundary.  The
/// name is the bare file name (no directory): the log never outlives its
/// directory, so records stay valid when the tree is moved.
pub type WalFileLen = (String, u64);

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A black-box operator-execution record (tag 1).
    Exec(WalEntry),
    /// A shard's vote: every file the transaction touched, flushed and
    /// fsynced, with its exact byte length (tag 2).  Bytes beyond these
    /// lengths — and files not named by any decided prepare — are staged,
    /// not published.
    Prepare {
        /// Coordinator-allocated transaction id.
        txn: u64,
        /// Flushed length of every touched file at prepare time.
        files: Vec<WalFileLen>,
    },
    /// The coordinator's decision: the transaction is published (tag 3).
    Commit {
        /// The decided transaction.
        txn: u64,
    },
    /// A baseline: the committed length of every live file, folding all
    /// previously decided transactions (tag 4).  Always the first record of
    /// a freshly checkpointed log.
    Checkpoint {
        /// Committed length of every live file.
        files: Vec<WalFileLen>,
        /// Next transaction id to allocate (coordinator logs only; shard
        /// logs record 0 and defer to the coordinator).
        next_txn: u64,
    },
}

const TAG_EXEC: u8 = 1;
const TAG_PREPARE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

fn write_file_lens(out: &mut Vec<u8>, files: &[WalFileLen]) {
    write_varint(out, files.len() as u64);
    for (name, len) in files {
        write_varint(out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        write_varint(out, *len);
    }
}

fn read_file_lens(buf: &[u8], pos: &mut usize) -> Option<Vec<WalFileLen>> {
    let count = read_varint(buf, pos).ok()? as usize;
    // Each entry costs at least two bytes; a corrupt count fails cleanly.
    if count > buf.len() - *pos + 1 {
        return None;
    }
    let mut files = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_varint(buf, pos).ok()? as usize;
        let end = pos.checked_add(name_len).filter(|&e| e <= buf.len())?;
        let name = std::str::from_utf8(&buf[*pos..end]).ok()?.to_string();
        *pos = end;
        let len = read_varint(buf, pos).ok()?;
        files.push((name, len));
    }
    Some(files)
}

impl WalRecord {
    /// Serialises the record payload (tag byte + fields, no frame header).
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Exec(e) => {
                out.push(TAG_EXEC);
                write_varint(out, e.run_id);
                write_varint(out, u64::from(e.op_id));
                write_varint(out, e.op_name.len() as u64);
                out.extend_from_slice(e.op_name.as_bytes());
                write_varint(out, e.input_versions.len() as u64);
                for v in &e.input_versions {
                    write_varint(out, *v);
                }
                write_varint(out, e.output_version);
                write_varint(out, e.elapsed_us);
            }
            WalRecord::Prepare { txn, files } => {
                out.push(TAG_PREPARE);
                write_varint(out, *txn);
                write_file_lens(out, files);
            }
            WalRecord::Commit { txn } => {
                out.push(TAG_COMMIT);
                write_varint(out, *txn);
            }
            WalRecord::Checkpoint { files, next_txn } => {
                out.push(TAG_CHECKPOINT);
                write_varint(out, *next_txn);
                write_file_lens(out, files);
            }
        }
    }

    /// Parses one payload.  `None` means the payload is malformed — replay
    /// treats that exactly like a checksum failure (truncate here).
    fn decode(buf: &[u8]) -> Option<WalRecord> {
        let (&tag, body) = buf.split_first()?;
        let mut pos = 0usize;
        let record = match tag {
            TAG_EXEC => {
                let run_id = read_varint(body, &mut pos).ok()?;
                let op_id = u32::try_from(read_varint(body, &mut pos).ok()?).ok()?;
                let name_len = read_varint(body, &mut pos).ok()? as usize;
                let end = pos.checked_add(name_len).filter(|&e| e <= body.len())?;
                let op_name = std::str::from_utf8(&body[pos..end]).ok()?.to_string();
                pos = end;
                let n_inputs = read_varint(body, &mut pos).ok()? as usize;
                if n_inputs > body.len() - pos + 1 {
                    return None;
                }
                let mut input_versions = Vec::with_capacity(n_inputs);
                for _ in 0..n_inputs {
                    input_versions.push(read_varint(body, &mut pos).ok()?);
                }
                let output_version = read_varint(body, &mut pos).ok()?;
                let elapsed_us = read_varint(body, &mut pos).ok()?;
                WalRecord::Exec(WalEntry {
                    run_id,
                    op_id,
                    op_name,
                    input_versions,
                    output_version,
                    elapsed_us,
                })
            }
            TAG_PREPARE => {
                let txn = read_varint(body, &mut pos).ok()?;
                let files = read_file_lens(body, &mut pos)?;
                WalRecord::Prepare { txn, files }
            }
            TAG_COMMIT => {
                let txn = read_varint(body, &mut pos).ok()?;
                WalRecord::Commit { txn }
            }
            TAG_CHECKPOINT => {
                let next_txn = read_varint(body, &mut pos).ok()?;
                let files = read_file_lens(body, &mut pos)?;
                WalRecord::Checkpoint { files, next_txn }
            }
            _ => return None,
        };
        // Trailing bytes inside a checksummed payload mean the writer and
        // reader disagree about the format; reject rather than guess.
        if pos != buf.len() - 1 {
            return None;
        }
        Some(record)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.  Hand-rolled
/// because the workspace builds offline with no checksum crates; the table
/// is computed at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `data` (IEEE polynomial, init/xorout `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frames `payload` as one on-disk record.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The durable half of [`WriteAheadLog`]: an open file positioned at the
/// end of the valid record prefix.
struct DurableLog {
    path: PathBuf,
    file: File,
}

/// An append-only, optionally durable log of [`WalRecord`]s.
///
/// [`new`](WriteAheadLog::new) builds the in-memory form the workflow
/// executor uses for black-box lineage (ordering is what matters there: the
/// record is appended before the output version becomes visible).
/// [`open`](WriteAheadLog::open) builds the durable form: records are
/// framed, checksummed and written through to the file, torn tails are
/// truncated on replay, and [`checkpoint`](WriteAheadLog::checkpoint)
/// atomically rewrites the log so it never grows with history.
pub struct WriteAheadLog {
    records: Vec<WalRecord>,
    /// Total framed bytes of `records` (equals the file length when
    /// durable).
    bytes: u64,
    durable: Option<DurableLog>,
}

impl Default for WriteAheadLog {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for WriteAheadLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteAheadLog")
            .field("records", &self.records.len())
            .field("bytes", &self.bytes)
            .field("path", &self.durable.as_ref().map(|d| d.path.as_path()))
            .finish()
    }
}

impl WriteAheadLog {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        WriteAheadLog {
            records: Vec::new(),
            bytes: 0,
            durable: None,
        }
    }

    /// Opens (or creates) a durable log at `path`, replaying its records.
    ///
    /// Replay accepts the longest valid prefix and truncates the file to it:
    /// a crash mid-append leaves a torn tail, never a corrupt log.  A stale
    /// `<path>.new` from a crashed [`checkpoint`](WriteAheadLog::checkpoint)
    /// is removed (the rename never happened, so the old log is still the
    /// authority).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let staging = checkpoint_staging_path(&path);
        if staging.exists() {
            fs::remove_file(&staging)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, valid_len) = replay(&raw);
        if (valid_len as u64) < raw.len() as u64 {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok(WriteAheadLog {
            records,
            bytes: valid_len as u64,
            durable: Some(DurableLog { path, file }),
        })
    }

    /// Whether records are written through to a file.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The backing file of a durable log.
    pub fn path(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.path.as_path())
    }

    /// Appends a black-box execution record, returning its sequence number.
    ///
    /// Infallible convenience for the executor's in-memory log; a durable
    /// log treats a write failure like the `.kv` log does (the storage
    /// medium failing mid-run is unrecoverable for the run either way).
    pub fn append(&mut self, entry: WalEntry) -> u64 {
        self.append_record(WalRecord::Exec(entry))
            .expect("write-ahead log append");
        (self.records.len() - 1) as u64
    }

    /// Appends one record, writing it through to the file when durable.
    ///
    /// The write is buffered by the OS but not fsynced; call
    /// [`sync`](WriteAheadLog::sync) before the record must survive power
    /// loss (the commit path syncs after the prepare and after the decision).
    pub fn append_record(&mut self, record: WalRecord) -> io::Result<()> {
        let mut payload = Vec::new();
        record.encode(&mut payload);
        if payload.len() > MAX_WAL_RECORD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "write-ahead log record too large",
            ));
        }
        let frame = frame_record(&payload);
        if let Some(durable) = &mut self.durable {
            if matches!(record, WalRecord::Commit { .. }) && failpoint::armed(failpoint::MID_COMMIT)
            {
                // Torn decision write: the length prefix and part of the
                // payload reach the disk, the rest never does.  Replay must
                // truncate this tail and treat the transaction as aborted.
                let torn = 8 + payload.len() / 2;
                durable.file.write_all(&frame[..torn])?;
                durable.file.sync_data()?;
                std::process::abort();
            }
            durable.file.write_all(&frame)?;
        }
        self.bytes += frame.len() as u64;
        self.records.push(record);
        Ok(())
    }

    /// Forces appended records to stable storage (no-op in memory).
    pub fn sync(&mut self) -> io::Result<()> {
        match &mut self.durable {
            Some(durable) => durable.file.sync_data(),
            None => Ok(()),
        }
    }

    /// All records, in append order (a checkpointed log starts at its
    /// baseline record).
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of the log in framed bytes (the file length when durable).
    pub fn size_bytes(&self) -> usize {
        self.bytes as usize
    }

    /// Transaction ids with a commit record in this log.
    pub fn committed_txns(&self) -> HashSet<u64> {
        self.records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect()
    }

    /// The next transaction id a coordinator should allocate: past every id
    /// this log has seen and at least the last checkpoint's floor.
    pub fn next_txn(&self) -> u64 {
        let mut next = 1u64;
        for r in &self.records {
            match r {
                WalRecord::Prepare { txn, .. } | WalRecord::Commit { txn } => {
                    next = next.max(txn + 1);
                }
                WalRecord::Checkpoint { next_txn, .. } => next = next.max(*next_txn),
                WalRecord::Exec(_) => {}
            }
        }
        next
    }

    /// Folds the log into a committed-length baseline: the last checkpoint's
    /// files overlaid, in order, with every prepare whose transaction
    /// `is_committed`.  Sorted by name for determinism.
    pub fn fold_committed(&self, is_committed: &dyn Fn(u64) -> bool) -> Vec<WalFileLen> {
        let mut committed: HashMap<String, u64> = HashMap::new();
        for r in &self.records {
            match r {
                WalRecord::Checkpoint { files, .. } => {
                    committed = files.iter().cloned().collect();
                }
                WalRecord::Prepare { txn, files } if is_committed(*txn) => {
                    for (name, len) in files {
                        committed.insert(name.clone(), *len);
                    }
                }
                _ => {}
            }
        }
        let mut out: Vec<WalFileLen> = committed.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Atomically replaces the log with a [`WalRecord::Checkpoint`] baseline
    /// followed by `retain` (prepares still awaiting a decision, commits
    /// still awaiting shard checkpoints).
    ///
    /// Durably: the new log is written to `<path>.new`, fsynced, and renamed
    /// over the old one — the checkpoint either fully replaces the log or
    /// never happened ([`open`](WriteAheadLog::open) removes a stale
    /// `.new`).  This is what keeps steady-state replay bounded: the live
    /// log never holds more than the baseline plus undecided work.
    pub fn checkpoint(
        &mut self,
        files: &[WalFileLen],
        next_txn: u64,
        retain: Vec<WalRecord>,
    ) -> io::Result<()> {
        let mut records = Vec::with_capacity(1 + retain.len());
        records.push(WalRecord::Checkpoint {
            files: files.to_vec(),
            next_txn,
        });
        records.extend(retain);
        let mut framed = Vec::new();
        for r in &records {
            let mut payload = Vec::new();
            r.encode(&mut payload);
            framed.extend_from_slice(&frame_record(&payload));
        }
        if let Some(durable) = &mut self.durable {
            let staging = checkpoint_staging_path(&durable.path);
            let mut fresh = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&staging)?;
            fresh.write_all(&framed)?;
            fresh.sync_data()?;
            fs::rename(&staging, &durable.path)?;
            fresh.seek(SeekFrom::End(0))?;
            durable.file = fresh;
        }
        self.records = records;
        self.bytes = framed.len() as u64;
        Ok(())
    }
}

fn checkpoint_staging_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".new");
    PathBuf::from(name)
}

/// Parses the longest valid record prefix of `raw`, returning the records
/// and the byte length of that prefix.  Never panics: any framing, checksum
/// or payload defect ends the replay at the last good boundary.
pub fn replay(raw: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while raw.len() - pos >= 8 {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_WAL_RECORD || raw.len() - pos - 8 < len {
            break;
        }
        let payload = &raw[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = WalRecord::decode(payload) else {
            break;
        };
        records.push(record);
        pos += 8 + len;
    }
    (records, pos)
}

/// What [`plan_recovery`] decided for one datastore directory.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// Committed length per file; every other `.kv` file in the directory
    /// is staged-only and gets deleted.
    pub committed: Vec<WalFileLen>,
    /// Next transaction id (for the log's post-recovery checkpoint).
    pub next_txn: u64,
    /// Prepared transactions without a commit record — their staged bytes
    /// are rolled back.
    pub aborted_txns: Vec<u64>,
}

/// What [`apply_recovery`] actually did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Files truncated back to their committed length.
    pub truncated: usize,
    /// Staged-only files (no decided prepare names them) deleted.
    pub deleted: usize,
    /// Interrupted compactions completed by renaming a finished `.compact`.
    pub finished_compactions: usize,
}

/// Computes the recovery actions for a directory from its replayed log.
/// `is_committed` is the decision authority — the coordinator's commit set
/// for shard logs, this log's own commit records for a self-contained log.
pub fn plan_recovery(records: &[WalRecord], is_committed: &dyn Fn(u64) -> bool) -> RecoveryPlan {
    let mut committed: HashMap<String, u64> = HashMap::new();
    let mut aborted = Vec::new();
    let mut next_txn = 1u64;
    for r in records {
        match r {
            WalRecord::Checkpoint { files, next_txn: n } => {
                committed = files.iter().cloned().collect();
                next_txn = next_txn.max(*n);
            }
            WalRecord::Prepare { txn, files } => {
                next_txn = next_txn.max(txn + 1);
                if is_committed(*txn) {
                    for (name, len) in files {
                        committed.insert(name.clone(), *len);
                    }
                } else {
                    aborted.push(*txn);
                }
            }
            WalRecord::Commit { txn } => next_txn = next_txn.max(txn + 1),
            WalRecord::Exec(_) => {}
        }
    }
    let mut files: Vec<WalFileLen> = committed.into_iter().collect();
    files.sort_unstable();
    RecoveryPlan {
        committed: files,
        next_txn,
        aborted_txns: aborted,
    }
}

/// Rolls the `.kv` files under `dir` back to the plan's committed state:
///
/// * a finished-but-unrenamed `<name>.compact` whose length matches the
///   committed length completes its interrupted compaction (rename over the
///   original); any other `.compact` is deleted;
/// * a committed file longer than its committed length is truncated to it
///   (every `.kv` record boundary at a commit is a clean cut, because the
///   prepare recorded the flushed length) and its sidecar index dropped;
/// * a committed file *shorter* than its committed length is left alone —
///   that is the compacted-before-checkpoint state, already dense and fully
///   committed;
/// * a `.kv` file no decided prepare ever named is staged-only and deleted,
///   along with its sidecar.
pub fn apply_recovery(dir: &Path, plan: &RecoveryPlan) -> io::Result<RecoveryReport> {
    let committed: HashMap<&str, u64> = plan
        .committed
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let mut report = RecoveryReport::default();
    let mut kv_files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if let Some(base) = name.strip_suffix(".compact") {
            let compact = dir.join(&name);
            let done = committed.get(base).copied() == Some(entry.metadata()?.len());
            if done {
                fs::rename(&compact, dir.join(base))?;
                report.finished_compactions += 1;
            } else {
                fs::remove_file(&compact)?;
            }
        } else if name.ends_with(".kv") {
            kv_files.push(name);
        }
    }
    for name in kv_files {
        let path = dir.join(&name);
        match committed.get(name.as_str()) {
            Some(&len) => {
                let actual = path.metadata()?.len();
                if actual > len {
                    let file = OpenOptions::new().write(true).open(&path)?;
                    file.set_len(len)?;
                    file.sync_data()?;
                    remove_sidecar(dir, &name)?;
                    report.truncated += 1;
                }
            }
            None => {
                fs::remove_file(&path)?;
                remove_sidecar(dir, &name)?;
                report.deleted += 1;
            }
        }
    }
    Ok(report)
}

fn remove_sidecar(dir: &Path, kv_name: &str) -> io::Result<()> {
    let sidecar = dir.join(format!("{kv_name}.idx"));
    if sidecar.exists() {
        fs::remove_file(&sidecar)?;
    }
    Ok(())
}

/// Opens `dir`'s write-ahead log and rolls the directory back to its last
/// committed state, returning the recovered log (already re-checkpointed to
/// the surviving files, so replay stays bounded no matter how the previous
/// process died).
///
/// `extra_committed` is the coordinator's decision set for shard
/// directories; transactions committed in this log itself always count
/// (the self-contained single-process form).  A directory without a
/// `wal.log` is adopted as-is: its existing `.kv` files become the
/// committed baseline — pre-transactional layouts survive the upgrade
/// untouched.
pub fn recover_dir(
    dir: &Path,
    extra_committed: Option<&HashSet<u64>>,
) -> io::Result<(WriteAheadLog, RecoveryReport)> {
    let wal_path = dir.join(WAL_FILE);
    let fresh = !wal_path.exists();
    let mut wal = WriteAheadLog::open(&wal_path)?;
    if fresh {
        let files = scan_kv_lens(dir)?;
        wal.checkpoint(&files, 1, Vec::new())?;
        return Ok((wal, RecoveryReport::default()));
    }
    let mut committed = wal.committed_txns();
    if let Some(extra) = extra_committed {
        committed.extend(extra.iter().copied());
    }
    let plan = plan_recovery(wal.records(), &|txn| committed.contains(&txn));
    let report = apply_recovery(dir, &plan)?;
    // Re-stamp the baseline with the *actual* post-recovery lengths (a
    // compacted-but-not-yet-checkpointed file is shorter than its recorded
    // committed length; the new baseline must say so, or a later aborted
    // transaction would be "rolled back" to a stale longer length that cuts
    // mid-record).
    let mut files = Vec::with_capacity(plan.committed.len());
    for (name, _) in &plan.committed {
        let path = dir.join(name);
        if let Ok(meta) = path.metadata() {
            files.push((name.clone(), meta.len()));
        }
    }
    wal.checkpoint(&files, plan.next_txn, Vec::new())?;
    Ok((wal, report))
}

/// Every `.kv` file directly under `dir`, with its length.
fn scan_kv_lens(dir: &Path) -> io::Result<Vec<WalFileLen>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Ok(name) = entry.file_name().into_string() else {
            continue;
        };
        if name.ends_with(".kv") {
            files.push((name, entry.metadata()?.len()));
        }
    }
    files.sort_unstable();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: u64, op: u32, out: u64) -> WalEntry {
        WalEntry {
            run_id: run,
            op_id: op,
            op_name: format!("op{op}"),
            input_versions: vec![out.saturating_sub(1)],
            output_version: out,
            elapsed_us: 10,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("subzero-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn in_memory_append_and_len() {
        let mut wal = WriteAheadLog::new();
        assert!(wal.is_empty());
        assert!(!wal.is_durable());
        assert_eq!(wal.append(entry(1, 0, 10)), 0);
        assert_eq!(wal.append(entry(1, 1, 11)), 1);
        assert_eq!(wal.append(entry(2, 0, 20)), 2);
        assert_eq!(wal.len(), 3);
        assert!(wal.size_bytes() > 0);
        let execs = wal
            .records()
            .iter()
            .filter(|r| matches!(r, WalRecord::Exec(e) if e.run_id == 1))
            .count();
        assert_eq!(execs, 2);
    }

    #[test]
    fn size_is_small() {
        let mut wal = WriteAheadLog::new();
        for i in 0..26 {
            wal.append(entry(1, i, 100 + u64::from(i)));
        }
        // 26 operators (the astronomy workflow) should cost well under 2 KB
        // even framed: black-box lineage overhead stays ~0 as in the paper.
        assert!(
            wal.size_bytes() < 2000,
            "wal too large: {}",
            wal.size_bytes()
        );
    }

    #[test]
    fn display_formats_entry() {
        let e = entry(7, 3, 42);
        let s = e.to_string();
        assert!(s.contains("run=7"));
        assert!(s.contains("op#3"));
        assert!(s.contains("output=42"));
    }

    #[test]
    fn durable_roundtrip_all_record_kinds() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let records = vec![
            WalRecord::Exec(entry(1, 2, 3)),
            WalRecord::Prepare {
                txn: 7,
                files: vec![("a.kv".into(), 128), ("b.kv".into(), 0)],
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::Checkpoint {
                files: vec![("a.kv".into(), 128)],
                next_txn: 8,
            },
        ];
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            for r in &records {
                wal.append_record(r.clone()).unwrap();
            }
            wal.sync().unwrap();
        }
        let wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.records(), records.as_slice());
        assert_eq!(wal.committed_txns(), HashSet::from([7]));
        assert_eq!(wal.next_txn(), 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let good_len = {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append_record(WalRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            wal.size_bytes() as u64
        };
        // Simulate a crash mid-append: a full frame header promising more
        // payload than was written.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let mut wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.len(), 1, "torn tail must be dropped");
        assert_eq!(path.metadata().unwrap().len(), good_len);
        // The next append lands at the clean boundary and replays.
        wal.append_record(WalRecord::Commit { txn: 2 }).unwrap();
        wal.sync().unwrap();
        let wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.committed_txns(), HashSet::from([1, 2]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_ends_replay() {
        let dir = temp_dir("crc");
        let path = dir.join(WAL_FILE);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append_record(WalRecord::Commit { txn: 1 }).unwrap();
            wal.append_record(WalRecord::Commit { txn: 2 }).unwrap();
            wal.sync().unwrap();
        }
        // Flip one payload bit of the second record.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        let wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.committed_txns(), HashSet::from([1]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_length_prefix_is_rejected_not_allocated() {
        let dir = temp_dir("len");
        let path = dir.join(WAL_FILE);
        let mut raw = Vec::new();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&[0u8; 64]);
        fs::write(&path, &raw).unwrap();
        let wal = WriteAheadLog::open(&path).unwrap();
        assert!(wal.is_empty());
        assert_eq!(path.metadata().unwrap().len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::open(&path).unwrap();
        for txn in 1..50u64 {
            wal.append_record(WalRecord::Prepare {
                txn,
                files: vec![("a.kv".into(), txn * 10)],
            })
            .unwrap();
            wal.append_record(WalRecord::Commit { txn }).unwrap();
        }
        let grown = wal.size_bytes();
        let baseline = wal.fold_committed(&|_| true);
        assert_eq!(baseline, vec![("a.kv".to_string(), 490)]);
        wal.checkpoint(&baseline, wal.next_txn(), Vec::new())
            .unwrap();
        assert!(
            wal.size_bytes() < grown / 10,
            "checkpoint must shrink the log"
        );
        assert_eq!(wal.len(), 1);
        let reopened = WriteAheadLog::open(&path).unwrap();
        assert_eq!(reopened.next_txn(), 50);
        assert_eq!(
            reopened.fold_committed(&|_| true),
            vec![("a.kv".to_string(), 490)]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_retains_undecided_prepares() {
        let dir = temp_dir("retain");
        let path = dir.join(WAL_FILE);
        let mut wal = WriteAheadLog::open(&path).unwrap();
        let undecided = WalRecord::Prepare {
            txn: 9,
            files: vec![("b.kv".into(), 5)],
        };
        wal.append_record(undecided.clone()).unwrap();
        wal.checkpoint(&[("a.kv".into(), 3)], 10, vec![undecided.clone()])
            .unwrap();
        let reopened = WriteAheadLog::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.records()[1], undecided);
        // Once the decision arrives, the fold includes the prepare.
        assert_eq!(
            reopened.fold_committed(&|txn| txn == 9),
            vec![("a.kv".to_string(), 3), ("b.kv".to_string(), 5)]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_checkpoint_staging_file_is_discarded() {
        let dir = temp_dir("staging");
        let path = dir.join(WAL_FILE);
        {
            let mut wal = WriteAheadLog::open(&path).unwrap();
            wal.append_record(WalRecord::Commit { txn: 3 }).unwrap();
            wal.sync().unwrap();
        }
        fs::write(checkpoint_staging_path(&path), b"half-written checkpoint").unwrap();
        let wal = WriteAheadLog::open(&path).unwrap();
        assert_eq!(wal.committed_txns(), HashSet::from([3]));
        assert!(!checkpoint_staging_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_recovery_rolls_back_uncommitted_prepares() {
        let records = vec![
            WalRecord::Checkpoint {
                files: vec![("a.kv".into(), 100)],
                next_txn: 5,
            },
            WalRecord::Prepare {
                txn: 5,
                files: vec![("a.kv".into(), 150), ("b.kv".into(), 40)],
            },
            WalRecord::Prepare {
                txn: 6,
                files: vec![("a.kv".into(), 200)],
            },
        ];
        // txn 5 committed (coordinator says so), txn 6 not.
        let plan = plan_recovery(&records, &|txn| txn == 5);
        assert_eq!(
            plan.committed,
            vec![("a.kv".to_string(), 150), ("b.kv".to_string(), 40)]
        );
        assert_eq!(plan.aborted_txns, vec![6]);
        assert_eq!(plan.next_txn, 7);
    }

    #[test]
    fn apply_recovery_truncates_deletes_and_finishes_compactions() {
        let dir = temp_dir("apply");
        fs::write(dir.join("a.kv"), vec![1u8; 150]).unwrap(); // 100 committed
        fs::write(dir.join("a.kv.idx"), b"stale sidecar").unwrap();
        fs::write(dir.join("staged.kv"), vec![2u8; 30]).unwrap(); // never prepared
        fs::write(dir.join("staged.kv.idx"), b"sidecar").unwrap();
        fs::write(dir.join("c.kv"), vec![3u8; 90]).unwrap(); // compaction interrupted
        fs::write(dir.join("c.kv.compact"), vec![4u8; 60]).unwrap();
        fs::write(dir.join("d.kv.compact"), vec![5u8; 7]).unwrap(); // junk tmp
        let plan = RecoveryPlan {
            committed: vec![("a.kv".into(), 100), ("c.kv".into(), 60)],
            next_txn: 3,
            aborted_txns: vec![],
        };
        let report = apply_recovery(&dir, &plan).unwrap();
        assert_eq!(report.truncated, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(report.finished_compactions, 1);
        assert_eq!(dir.join("a.kv").metadata().unwrap().len(), 100);
        assert!(!dir.join("a.kv.idx").exists(), "stale sidecar dropped");
        assert!(!dir.join("staged.kv").exists());
        assert!(!dir.join("staged.kv.idx").exists());
        assert_eq!(
            fs::read(dir.join("c.kv")).unwrap(),
            vec![4u8; 60],
            "finished compaction replaces the original"
        );
        assert!(!dir.join("c.kv.compact").exists());
        assert!(!dir.join("d.kv.compact").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_dir_adopts_legacy_layouts() {
        let dir = temp_dir("legacy");
        fs::write(dir.join("old.kv"), vec![9u8; 42]).unwrap();
        let (wal, report) = recover_dir(&dir, None).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert!(
            dir.join("old.kv").exists(),
            "legacy data adopted, not deleted"
        );
        assert_eq!(
            wal.fold_committed(&|_| true),
            vec![("old.kv".to_string(), 42)]
        );
        // A second recovery over the now-transactional dir keeps the file.
        drop(wal);
        let (wal, report) = recover_dir(&dir, None).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(
            wal.fold_committed(&|_| true),
            vec![("old.kv".to_string(), 42)]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_dir_discards_runs_without_commit() {
        let dir = temp_dir("discard");
        // Committed state: a.kv at 20 bytes.
        {
            let (mut wal, _) = recover_dir(&dir, None).unwrap();
            fs::write(dir.join("a.kv"), vec![1u8; 20]).unwrap();
            wal.append_record(WalRecord::Prepare {
                txn: 1,
                files: vec![("a.kv".into(), 20)],
            })
            .unwrap();
            wal.append_record(WalRecord::Commit { txn: 1 }).unwrap();
            wal.sync().unwrap();
            // Staged beyond the commit: a.kv grows, b.kv appears, txn 2
            // prepares but never commits (the coordinator died).
            fs::write(dir.join("a.kv"), vec![1u8; 35]).unwrap();
            fs::write(dir.join("b.kv"), vec![2u8; 10]).unwrap();
            wal.append_record(WalRecord::Prepare {
                txn: 2,
                files: vec![("a.kv".into(), 35), ("b.kv".into(), 10)],
            })
            .unwrap();
            wal.sync().unwrap();
        }
        let (wal, report) = recover_dir(&dir, None).unwrap();
        assert_eq!(dir.join("a.kv").metadata().unwrap().len(), 20);
        assert!(!dir.join("b.kv").exists());
        assert_eq!(report.truncated, 1);
        assert_eq!(report.deleted, 1);
        assert_eq!(
            wal.fold_committed(&|_| true),
            vec![("a.kv".to_string(), 20)]
        );
        assert_eq!(wal.next_txn(), 3, "aborted txn id is not reissued");
        // The coordinator's decision set can publish txn 2 instead.
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_dir_honours_coordinator_decisions() {
        let dir = temp_dir("coord");
        {
            let (mut wal, _) = recover_dir(&dir, None).unwrap();
            fs::write(dir.join("a.kv"), vec![1u8; 30]).unwrap();
            wal.append_record(WalRecord::Prepare {
                txn: 4,
                files: vec![("a.kv".into(), 30)],
            })
            .unwrap();
            wal.sync().unwrap();
        }
        // The shard log has no commit record; the coordinator's does.
        let committed = HashSet::from([4u64]);
        let (wal, report) = recover_dir(&dir, Some(&committed)).unwrap();
        assert_eq!(report.deleted, 0);
        assert_eq!(dir.join("a.kv").metadata().unwrap().len(), 30);
        assert_eq!(
            wal.fold_committed(&|_| true),
            vec![("a.kv".to_string(), 30)]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn replay_never_reads_past_declared_lengths() {
        // A frame claiming MAX_WAL_RECORD+1 bytes is rejected outright.
        let mut raw = Vec::new();
        raw.extend_from_slice(&((MAX_WAL_RECORD as u32) + 1).to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        let (records, pos) = replay(&raw);
        assert!(records.is_empty());
        assert_eq!(pos, 0);
    }
}
