//! A fast, non-cryptographic hasher for the key-value backends.
//!
//! One-granularity ingest is hash-table bound: every stored pair resolves at
//! least one `Vec<u8>` key through the backend's hash map, and the standard
//! library's default SipHash spends more time per key than the table
//! operation it guards.  Lineage keys are short, structured and never
//! attacker-controlled (they are produced by our own encoder), so a
//! multiply-rotate hash in the style of rustc's FxHash is the right
//! trade-off: a couple of instructions per 8-byte chunk, quality that is
//! ample for bucket selection, and no DoS-resistance tax we don't need.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (same odd 64-bit constant rustc's FxHash uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: `state = (state.rotate_left(5) ^ word) * SEED` per
/// 8-byte chunk, with the tail padded into one final word.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The multiply mixes entropy upward; fold the high bits back down so
        // tables indexing buckets by the low bits see them too.
        self.state ^ (self.state >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
        // Fold the length in so prefixes hash differently from their
        // zero-padded extensions.
        self.mix(bytes.len() as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.mix(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.mix(value as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(hash_of(b"entry:123"), hash_of(b"entry:123"));
        assert_ne!(hash_of(b"entry:123"), hash_of(b"entry:124"));
        // A prefix must not collide with its zero-padded extension.
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0\0"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn structured_keys_spread_over_low_bits() {
        // Sequential little-endian keys (the entry-id key pattern) must not
        // collapse onto a few buckets of a power-of-two table.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1024u64 {
            buckets.insert(hash_of(&i.to_le_bytes()) & 0xff);
        }
        assert!(
            buckets.len() > 200,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(i.to_le_bytes().to_vec(), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(42u32.to_le_bytes().as_slice()), Some(&42));
    }
}
