//! Byte-level codecs used by the lineage encoder.
//!
//! The Encoder (§VI-B of the paper) must serialise cell coordinates, which
//! "can easily be larger than the original data arrays" if stored naively.
//! Two tricks keep them small:
//!
//! * **Bit-packing** — when the array is small enough, each coordinate is
//!   packed into a single integer (its row-major linear index under the
//!   array's [`Shape`]), exactly as the paper describes ("each coordinate is
//!   bitpacked into a single integer if the array is small enough").
//! * **Varint / delta encoding** — packed indices of a cell list are sorted,
//!   delta-encoded and LEB128-varint encoded, so dense regions cost about a
//!   byte per cell.
//!
//! All functions are deterministic and total: decoding what was encoded under
//! the same shape always returns the original coordinates (see the property
//! tests).

use subzero_array::{Coord, Shape};

/// Errors produced while decoding lineage bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran over the maximum encodable length.
    VarintOverflow,
    /// A decoded linear index was out of bounds for the shape it was decoded
    /// against.
    IndexOutOfBounds {
        /// The decoded index.
        index: u64,
        /// Number of cells in the target shape.
        num_cells: u64,
    },
    /// The byte stream decoded but violated a structural invariant of the
    /// encoded value (wrong magic, impossible count, bad tag, ...).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of encoded lineage bytes"),
            CodecError::VarintOverflow => write!(f, "varint overflow while decoding"),
            CodecError::IndexOutOfBounds { index, num_cells } => write!(
                f,
                "decoded cell index {index} out of bounds for array with {num_cells} cells"
            ),
            CodecError::Corrupt(what) => write!(f, "corrupt encoded value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `value` to `out` as an LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Packs a coordinate into its row-major linear index under `shape`.
///
/// # Panics
///
/// Panics if the coordinate is out of bounds for `shape`.
#[inline]
pub fn pack_coord(shape: &Shape, coord: &Coord) -> u64 {
    shape.ravel(coord) as u64
}

/// Unpacks a linear index back into a coordinate under `shape`.
pub fn unpack_coord(shape: &Shape, packed: u64) -> Result<Coord, CodecError> {
    let n = shape.num_cells() as u64;
    if packed >= n {
        return Err(CodecError::IndexOutOfBounds {
            index: packed,
            num_cells: n,
        });
    }
    Ok(shape.unravel(packed as usize))
}

/// Encodes a list of coordinates (under `shape`) into a compact byte string:
/// count, then sorted + delta + varint encoded linear indices.
///
/// The cell list is treated as a *set*: order is not preserved and duplicates
/// are collapsed.  That matches the semantics of a region pair, whose sides
/// are sets of cells.
pub fn encode_cells(shape: &Shape, coords: &[Coord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(coords.len() + 4);
    encode_cells_into(&mut out, shape, coords);
    out
}

/// Appends the [`encode_cells`] encoding of `coords` to `out` (the arena
/// variant: batched encoders write every value of a batch into one shared
/// buffer instead of allocating a `Vec` per value).  Produces exactly the
/// bytes `encode_cells` would.
pub fn encode_cells_into(out: &mut Vec<u8>, shape: &Shape, coords: &[Coord]) {
    let mut idxs: Vec<u64> = coords.iter().map(|c| pack_coord(shape, c)).collect();
    idxs.sort_unstable();
    idxs.dedup();
    write_varint(out, idxs.len() as u64);
    let mut prev = 0u64;
    for (i, idx) in idxs.iter().enumerate() {
        let delta = if i == 0 { *idx } else { idx - prev };
        write_varint(out, delta);
        prev = *idx;
    }
}

/// Offset/length address of one encoded value inside an [`Arena`].
///
/// Spans are plain indices, not borrows: encoders can keep appending to the
/// arena after taking a span, and resolve it to bytes later with
/// [`Arena::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    offset: usize,
    len: usize,
}

impl Span {
    /// Length in bytes of the addressed value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the addressed value is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A contiguous encode arena: many encoded values packed back-to-back into
/// one buffer, addressed by [`Span`]s.
///
/// The batched write path serialises every hash entry and cell record of a
/// region batch into one arena instead of allocating a `Vec<u8>` per value,
/// then hands the spans zero-copy to the key-value backend's group write.
/// Values are appended with [`begin`](Arena::begin) /
/// [`finish`](Arena::finish) bracketing writes to the underlying buffer
/// (exposed via [`buf_mut`](Arena::buf_mut) so the existing `*_into` codecs
/// can be reused unchanged).
#[derive(Debug, Default)]
pub struct Arena {
    buf: Vec<u8>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena with `bytes` of backing capacity pre-allocated.
    pub fn with_capacity(bytes: usize) -> Self {
        Arena {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Marks the start of a new value; pass the returned offset to
    /// [`finish`](Arena::finish) once the value's bytes are written.
    pub fn begin(&self) -> usize {
        self.buf.len()
    }

    /// Closes the value opened at `start`, returning its span.
    pub fn finish(&self, start: usize) -> Span {
        debug_assert!(start <= self.buf.len());
        Span {
            offset: start,
            len: self.buf.len() - start,
        }
    }

    /// The underlying buffer, for appending a value's bytes between
    /// [`begin`](Arena::begin) and [`finish`](Arena::finish).
    pub fn buf_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Appends `bytes` as one complete value.
    pub fn push(&mut self, bytes: &[u8]) -> Span {
        let start = self.begin();
        self.buf.extend_from_slice(bytes);
        self.finish(start)
    }

    /// Resolves a span to its bytes.
    pub fn get(&self, span: Span) -> &[u8] {
        &self.buf[span.offset..span.offset + span.len]
    }

    /// Total bytes in the arena.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the arena holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops all values, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Decodes a byte string produced by [`encode_cells`] back into coordinates
/// (sorted in row-major order).
pub fn decode_cells(shape: &Shape, buf: &[u8]) -> Result<Vec<Coord>, CodecError> {
    let mut pos = 0usize;
    let coords = decode_cells_at(shape, buf, &mut pos)?;
    Ok(coords)
}

/// Decodes one [`encode_cells`] block starting at `*pos`, advancing `*pos`.
/// Used when several cell lists are concatenated in a single value.
pub fn decode_cells_at(
    shape: &Shape,
    buf: &[u8],
    pos: &mut usize,
) -> Result<Vec<Coord>, CodecError> {
    let count = read_varint(buf, pos)? as usize;
    // A corrupt count can claim more cells than the buffer could possibly
    // hold (each delta is at least one byte); cap the pre-allocation so bad
    // input fails with `UnexpectedEof` instead of an absurd allocation.
    let mut out = Vec::with_capacity(count.min(buf.len() - *pos + 1));
    let mut acc = 0u64;
    for i in 0..count {
        let delta = read_varint(buf, pos)?;
        acc = if i == 0 { delta } else { acc + delta };
        out.push(unpack_coord(shape, acc)?);
    }
    Ok(out)
}

/// Half-open bounds of one decoded cells-block inside a [`ScanFrame`]:
/// `frame.run(cell_run)` is the block's linear indices.
///
/// Runs are plain indices, not borrows (like [`Span`] for the [`Arena`]), so
/// decoders can keep appending blocks to the frame while holding runs for
/// earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRun {
    start: u32,
    len: u32,
}

impl CellRun {
    /// Number of cells in the run.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the run decodes no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The run shifted by `base` frame slots — used when merging a frame
    /// decoded by one worker into a combined frame (see
    /// [`ScanFrame::append`]).
    pub fn rebased(self, base: u32) -> CellRun {
        CellRun {
            start: self.start + base,
            len: self.len,
        }
    }
}

/// A reusable columnar buffer of decoded cell sets.
///
/// Scan-side decoders used to materialise every entry's cells as its own
/// `Vec<Coord>` — two allocations plus an unravel per cell, repeated for
/// every record of a full-datastore scan.  A `ScanFrame` instead accumulates
/// the *linear* indices of many decoded blocks back-to-back in one flat
/// buffer, addressed by [`CellRun`]s; joins run directly in linear-index
/// space against the query's bitmap (`CellSet::contains_linear`), and the
/// frame is [`clear`](ScanFrame::clear)ed and reused across scan blocks so a
/// steady-state scan allocates nothing.
#[derive(Debug, Default)]
pub struct ScanFrame {
    idx: Vec<u64>,
}

impl ScanFrame {
    /// An empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total decoded cells across all runs.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether no cells are buffered.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Drops every run, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.idx.clear();
    }

    /// Rolls the frame back to `len` cells (used by entry decoders to undo
    /// partially-decoded runs when a later block of the same value fails).
    pub fn truncate(&mut self, len: usize) {
        self.idx.truncate(len);
    }

    /// The linear indices of one decoded run.
    pub fn run(&self, run: CellRun) -> &[u64] {
        &self.idx[run.start as usize..run.start as usize + run.len as usize]
    }

    /// An empty run positioned at the frame's current end.
    pub fn empty_run(&self) -> CellRun {
        CellRun {
            start: self.idx.len() as u32,
            len: 0,
        }
    }

    /// Appends every cell of `other`, returning the base offset to
    /// [`rebase`](CellRun::rebased) the other frame's runs by.
    pub fn append(&mut self, other: &ScanFrame) -> u32 {
        let base = self.idx.len() as u32;
        self.idx.extend_from_slice(&other.idx);
        base
    }
}

/// Decodes one [`encode_cells`] block starting at `*pos`, advancing `*pos`,
/// appending the delta-decoded **linear** indices to `frame` and returning
/// their [`CellRun`].
///
/// This is the columnar counterpart of [`decode_cells_at`]: same wire format,
/// same bounds checks (`num_cells` plays the role of the shape), but no
/// per-cell unravel and no per-block allocation — the hot loop is a straight
/// varint + prefix-sum fill of a flat `u64` buffer.  On error the frame is
/// rolled back to its pre-call length.
pub fn decode_cells_block(
    frame: &mut ScanFrame,
    num_cells: u64,
    buf: &[u8],
    pos: &mut usize,
) -> Result<CellRun, CodecError> {
    let count = read_varint(buf, pos)? as usize;
    let start = frame.idx.len();
    frame.idx.reserve(count.min(buf.len() - *pos + 1));
    let mut acc = 0u64;
    for i in 0..count {
        let delta = match read_varint(buf, pos) {
            Ok(d) => d,
            Err(e) => {
                frame.idx.truncate(start);
                return Err(e);
            }
        };
        acc = if i == 0 { delta } else { acc + delta };
        if acc >= num_cells {
            frame.idx.truncate(start);
            return Err(CodecError::IndexOutOfBounds {
                index: acc,
                num_cells,
            });
        }
        frame.idx.push(acc);
    }
    Ok(CellRun {
        start: start as u32,
        len: (frame.idx.len() - start) as u32,
    })
}

/// Parses one [`encode_cells`] block starting at `*pos`, advancing `*pos`,
/// validating every index against `num_cells` but materialising nothing.
/// Entry decoders use it to step over the cell sets of inputs a query did
/// not ask about while keeping exactly [`decode_cells_at`]'s accept/reject
/// behaviour.
pub fn skip_cells_block(num_cells: u64, buf: &[u8], pos: &mut usize) -> Result<(), CodecError> {
    let count = read_varint(buf, pos)? as usize;
    let mut acc = 0u64;
    for i in 0..count {
        let delta = read_varint(buf, pos)?;
        acc = if i == 0 { delta } else { acc + delta };
        if acc >= num_cells {
            return Err(CodecError::IndexOutOfBounds {
                index: acc,
                num_cells,
            });
        }
    }
    Ok(())
}

/// Encodes a length-prefixed binary payload (the `Pay`/`Comp` lineage blob).
pub fn encode_payload(out: &mut Vec<u8>, payload: &[u8]) {
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

/// Decodes a length-prefixed binary payload starting at `*pos`.
pub fn decode_payload(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    let len = read_varint(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(CodecError::UnexpectedEof)?;
    let payload = buf[*pos..end].to_vec();
    *pos = end;
    Ok(payload)
}

/// Encodes a `u64` as 8 fixed little-endian bytes (used for hash keys where a
/// fixed width is preferable to a varint).
pub fn encode_fixed_u64(value: u64) -> [u8; 8] {
    value.to_le_bytes()
}

/// Decodes a fixed little-endian `u64`.
pub fn decode_fixed_u64(buf: &[u8]) -> Result<u64, CodecError> {
    let bytes: [u8; 8] = buf
        .get(..8)
        .and_then(|s| s.try_into().ok())
        .ok_or(CodecError::UnexpectedEof)?;
    Ok(u64::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_eof_and_overflow() {
        let mut pos = 0;
        assert_eq!(read_varint(&[], &mut pos), Err(CodecError::UnexpectedEof));
        // 11 continuation bytes overflow a u64 varint.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn pack_unpack_coord() {
        let shape = Shape::d2(512, 2000);
        let c = Coord::d2(511, 1999);
        let packed = pack_coord(&shape, &c);
        assert_eq!(unpack_coord(&shape, packed).unwrap(), c);
        assert!(unpack_coord(&shape, shape.num_cells() as u64).is_err());
    }

    #[test]
    fn encode_cells_roundtrip_sorted_dedup() {
        let shape = Shape::d2(10, 10);
        let cells = vec![
            Coord::d2(3, 3),
            Coord::d2(0, 1),
            Coord::d2(3, 3),
            Coord::d2(9, 9),
        ];
        let buf = encode_cells(&shape, &cells);
        let decoded = decode_cells(&shape, &buf).unwrap();
        assert_eq!(
            decoded,
            vec![Coord::d2(0, 1), Coord::d2(3, 3), Coord::d2(9, 9)]
        );
    }

    #[test]
    fn encode_cells_empty() {
        let shape = Shape::d1(5);
        let buf = encode_cells(&shape, &[]);
        assert_eq!(decode_cells(&shape, &buf).unwrap(), vec![]);
    }

    #[test]
    fn dense_region_is_compact() {
        // 1000 adjacent cells should take roughly a byte each plus a header,
        // far smaller than 8 bytes per coordinate component.
        let shape = Shape::d2(1000, 1000);
        let cells: Vec<Coord> = (0..1000u32).map(|i| Coord::d2(500, i)).collect();
        let buf = encode_cells(&shape, &cells);
        assert!(
            buf.len() < 1100,
            "dense region encoding too large: {} bytes",
            buf.len()
        );
    }

    #[test]
    fn multiple_blocks_in_one_buffer() {
        let shape = Shape::d2(4, 4);
        let a = vec![Coord::d2(0, 0), Coord::d2(1, 1)];
        let b = vec![Coord::d2(3, 3)];
        let mut buf = encode_cells(&shape, &a);
        buf.extend(encode_cells(&shape, &b));
        let mut pos = 0;
        assert_eq!(decode_cells_at(&shape, &buf, &mut pos).unwrap(), a);
        assert_eq!(decode_cells_at(&shape, &buf, &mut pos).unwrap(), b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn payload_roundtrip() {
        let mut buf = Vec::new();
        encode_payload(&mut buf, b"radius=3");
        encode_payload(&mut buf, b"");
        let mut pos = 0;
        assert_eq!(decode_payload(&buf, &mut pos).unwrap(), b"radius=3");
        assert_eq!(decode_payload(&buf, &mut pos).unwrap(), b"");
        assert_eq!(pos, buf.len());
        // Truncated payload errors.
        let mut short = Vec::new();
        encode_payload(&mut short, b"abcdef");
        short.truncate(short.len() - 2);
        let mut pos = 0;
        assert!(decode_payload(&short, &mut pos).is_err());
    }

    #[test]
    fn fixed_u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let b = encode_fixed_u64(v);
            assert_eq!(decode_fixed_u64(&b).unwrap(), v);
        }
        assert!(decode_fixed_u64(&[1, 2, 3]).is_err());
    }

    #[test]
    fn arena_spans_address_their_values() {
        let mut arena = Arena::with_capacity(64);
        let a = arena.push(b"alpha");
        let start = arena.begin();
        write_varint(arena.buf_mut(), 300);
        let b = arena.finish(start);
        let c = arena.push(b"");
        assert_eq!(arena.get(a), b"alpha");
        let mut pos = 0;
        assert_eq!(read_varint(arena.get(b), &mut pos).unwrap(), 300);
        assert!(arena.get(c).is_empty());
        assert!(c.is_empty());
        assert_eq!(a.len(), 5);
        assert_eq!(arena.len(), 5 + b.len());
        arena.clear();
        assert!(arena.is_empty());
    }

    #[test]
    fn encode_cells_into_matches_encode_cells() {
        let shape = Shape::d2(16, 16);
        let cells = vec![Coord::d2(3, 3), Coord::d2(0, 1), Coord::d2(3, 3)];
        let legacy = encode_cells(&shape, &cells);
        let mut arena = Arena::new();
        arena.push(b"unrelated prefix");
        let start = arena.begin();
        encode_cells_into(arena.buf_mut(), &shape, &cells);
        let span = arena.finish(start);
        assert_eq!(arena.get(span), legacy.as_slice());
    }

    #[test]
    fn decode_cells_block_matches_decode_cells_at() {
        let shape = Shape::d2(8, 8);
        let a = vec![Coord::d2(0, 0), Coord::d2(1, 1), Coord::d2(7, 7)];
        let b = vec![Coord::d2(3, 5)];
        let mut buf = encode_cells(&shape, &a);
        buf.extend(encode_cells(&shape, &b));

        let mut frame = ScanFrame::new();
        let mut pos = 0usize;
        let run_a =
            decode_cells_block(&mut frame, shape.num_cells() as u64, &buf, &mut pos).unwrap();
        let run_b =
            decode_cells_block(&mut frame, shape.num_cells() as u64, &buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(frame.len(), 4);
        assert!(!run_a.is_empty());

        // Same indices, same order, as the legacy coordinate decoder.
        let mut legacy_pos = 0usize;
        let legacy_a = decode_cells_at(&shape, &buf, &mut legacy_pos).unwrap();
        let legacy_b = decode_cells_at(&shape, &buf, &mut legacy_pos).unwrap();
        let as_packed = |cs: &[Coord]| cs.iter().map(|c| pack_coord(&shape, c)).collect::<Vec<_>>();
        assert_eq!(frame.run(run_a), as_packed(&legacy_a).as_slice());
        assert_eq!(frame.run(run_b), as_packed(&legacy_b).as_slice());
    }

    #[test]
    fn decode_cells_block_rolls_back_on_error() {
        let shape = Shape::d1(4);
        let good = encode_cells(&shape, &[Coord::d1(1), Coord::d1(2)]);
        let mut bad = Vec::new();
        write_varint(&mut bad, 2);
        write_varint(&mut bad, 1); // in bounds
        write_varint(&mut bad, 9); // 10 > 3: out of bounds

        let mut frame = ScanFrame::new();
        let mut pos = 0usize;
        let run = decode_cells_block(&mut frame, 4, &good, &mut pos).unwrap();
        let before = frame.len();
        let mut pos = 0usize;
        assert!(matches!(
            decode_cells_block(&mut frame, 4, &bad, &mut pos),
            Err(CodecError::IndexOutOfBounds { .. })
        ));
        assert_eq!(frame.len(), before, "failed decode left cells behind");
        assert_eq!(frame.run(run), &[1, 2]);

        // Truncated input is rolled back too.
        let mut truncated = Vec::new();
        write_varint(&mut truncated, 3);
        write_varint(&mut truncated, 1);
        let mut pos = 0usize;
        assert!(matches!(
            decode_cells_block(&mut frame, 4, &truncated, &mut pos),
            Err(CodecError::UnexpectedEof)
        ));
        assert_eq!(frame.len(), before);
    }

    #[test]
    fn skip_cells_block_validates_like_decode() {
        let shape = Shape::d2(6, 6);
        let cells = vec![Coord::d2(0, 3), Coord::d2(5, 5)];
        let mut buf = encode_cells(&shape, &cells);
        buf.extend(encode_cells(&shape, &[Coord::d2(2, 2)]));
        let n = shape.num_cells() as u64;

        let mut pos = 0usize;
        skip_cells_block(n, &buf, &mut pos).unwrap();
        // The skip leaves `pos` exactly where a real decode would.
        let mut frame = ScanFrame::new();
        let run = decode_cells_block(&mut frame, n, &buf, &mut pos).unwrap();
        assert_eq!(frame.run(run), &[pack_coord(&shape, &Coord::d2(2, 2))]);
        assert_eq!(pos, buf.len());

        // And it rejects what a real decode rejects.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1);
        write_varint(&mut bad, n); // first index out of bounds
        let mut pos = 0usize;
        assert!(skip_cells_block(n, &bad, &mut pos).is_err());
    }

    #[test]
    fn scan_frame_append_rebases_runs() {
        let mut a = ScanFrame::new();
        let mut b = ScanFrame::new();
        let shape = Shape::d1(100);
        let n = shape.num_cells() as u64;
        let buf_a = encode_cells(&shape, &[Coord::d1(5)]);
        let buf_b = encode_cells(&shape, &[Coord::d1(7), Coord::d1(9)]);
        let mut pos = 0usize;
        decode_cells_block(&mut a, n, &buf_a, &mut pos).unwrap();
        let mut pos = 0usize;
        let run_b = decode_cells_block(&mut b, n, &buf_b, &mut pos).unwrap();
        let base = a.append(&b);
        assert_eq!(a.run(run_b.rebased(base)), &[7, 9]);
        assert_eq!(a.len(), 3);
        a.clear();
        assert!(a.is_empty());
        assert!(a.empty_run().is_empty());
    }

    #[test]
    fn decode_rejects_out_of_bounds_index() {
        let shape = Shape::d1(4);
        // Hand-craft an encoding with an index past the end.
        let mut buf = Vec::new();
        write_varint(&mut buf, 1); // one cell
        write_varint(&mut buf, 10); // index 10 in a 4-cell array
        assert!(matches!(
            decode_cells(&shape, &buf),
            Err(CodecError::IndexOutOfBounds { .. })
        ));
    }
}
