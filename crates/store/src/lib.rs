//! # subzero-store
//!
//! Storage substrate for the SubZero lineage system.
//!
//! The SubZero prototype stored region lineage "in a collection of BerkeleyDB
//! hashtable instances", with fsync, logging and concurrency control disabled
//! because the lineage store is a cache that can always be rebuilt by
//! re-running operators (§VI-A of the paper).  It also used write-ahead
//! logging to guarantee black-box lineage is recorded before array data, and
//! `libspatialindex` to build an R-tree over the hash keys of the *Many*
//! encodings.
//!
//! This crate provides all three pieces, self-contained:
//!
//! * [`kv`] — an embedded hash-bucket key-value store with an in-memory
//!   backend and an append-only-file backend, managed per operator by a
//!   [`StoreManager`].
//! * [`wal`] — the durable write-ahead log: black-box execution records plus
//!   the prepare/commit/checkpoint records of the transactional run-commit
//!   path, with torn-tail-truncating replay and directory recovery.
//! * [`failpoint`] — the crash-point registry the fault-injection tests arm
//!   via `SUBZERO_FAILPOINT` to kill a real process at commit boundaries.
//! * [`codec`] — varint and coordinate bit-packing codecs used by the lineage
//!   encoder.
//! * [`hash`] — the FxHash-style hasher the key-value backends key their
//!   tables with (one-granularity ingest is hash-table bound).
//! * [`rtree`] — an R-tree spatial index over cell bounding boxes.
//! * [`mmap`] — the read-only memory-mapped log view the file backend's scan
//!   path serves zero-copy slices from (the crate's only `unsafe` module).

pub mod codec;
pub mod failpoint;
pub mod hash;
pub mod kv;
pub mod mmap;
pub mod rtree;
pub mod wal;

pub use codec::{Arena, CellRun, ScanFrame, Span};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use kv::{Database, KvBackend, ScanMode, StoreManager, StoreStats};
pub use rtree::RTree;
pub use wal::{
    recover_dir, RecoveryPlan, RecoveryReport, WalEntry, WalFileLen, WalRecord, WriteAheadLog,
    WAL_FILE,
};
