//! # subzero-array
//!
//! Dense multi-dimensional array substrate used by the SubZero lineage system.
//!
//! SubZero (Wu, Madden, Stonebraker — ICDE 2013) assumes a SciDB-like data and
//! execution model: data are multi-dimensional arrays whose cells are addressed
//! by integer coordinates, intermediate results are stored persistently
//! ("no overwrite"), and every update produces a new array version.  This crate
//! provides that substrate:
//!
//! * [`Coord`] — a small, copyable coordinate (up to [`MAX_NDIM`] dimensions).
//! * [`Shape`] — array extents with ravel/unravel (linearisation) helpers.
//! * [`Array`] — a dense array of `f64` cells.
//! * [`CellSet`] — a bitmap over an array's cells; the query executor's
//!   intermediate-result representation ("in-memory boolean array", §VI-C of
//!   the paper).
//! * [`BoundingBox`] — axis-aligned boxes over coordinates, used by the
//!   spatial-index side of the lineage encodings.
//! * [`VersionedStore`] — a no-overwrite, versioned array store; the basis of
//!   black-box lineage.
//!
//! The substrate is intentionally simple — single `f64` attribute per cell,
//! dense storage — because nothing in the paper's contribution depends on
//! richer cell schemas or sparse chunking; what matters is cell addressing,
//! versioning and the cost of touching cells.

pub mod array;
pub mod bbox;
pub mod cellset;
pub mod coord;
pub mod error;
pub mod shape;
pub mod version;

pub use array::Array;
pub use bbox::BoundingBox;
pub use cellset::{CellSet, ReprCounts};
pub use coord::{Coord, MAX_NDIM};
pub use error::ArrayError;
pub use shape::Shape;
pub use version::{ArrayRef, VersionId, VersionedStore};
