//! Error type for array operations.

use std::fmt;

use crate::{Coord, Shape};

/// Errors produced by the array substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// A coordinate fell outside the bounds of an array.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
        /// The shape of the array that was accessed.
        shape: Shape,
    },
    /// Two arrays (or an array and a coordinate) had incompatible
    /// dimensionality or extents.
    ShapeMismatch {
        /// Description of the expectation that was violated.
        context: String,
    },
    /// A named array or version was not found in a [`VersionedStore`](crate::VersionedStore).
    NotFound {
        /// The array name that was requested.
        name: String,
        /// The version that was requested, if any.
        version: Option<u64>,
    },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::OutOfBounds { coord, shape } => {
                write!(f, "coordinate {coord} is out of bounds for shape {shape}")
            }
            ArrayError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            ArrayError::NotFound { name, version } => match version {
                Some(v) => write!(f, "array '{name}' version {v} not found"),
                None => write!(f, "array '{name}' not found"),
            },
        }
    }
}

impl std::error::Error for ArrayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ArrayError::OutOfBounds {
            coord: Coord::d2(10, 10),
            shape: Shape::d2(4, 4),
        };
        assert!(e.to_string().contains("out of bounds"));

        let e = ArrayError::ShapeMismatch {
            context: "add requires equal shapes".into(),
        };
        assert!(e.to_string().contains("shape mismatch"));

        let e = ArrayError::NotFound {
            name: "img".into(),
            version: Some(3),
        };
        assert!(e.to_string().contains("version 3"));
        let e = ArrayError::NotFound {
            name: "img".into(),
            version: None,
        };
        assert!(e.to_string().contains("'img' not found"));
    }
}
