//! Cell coordinates.
//!
//! A [`Coord`] identifies a single cell of a multi-dimensional array: one
//! non-negative integer per dimension.  Coordinates are the currency of the
//! whole lineage system — region pairs, encoded lineage entries, query cells
//! and query results are all sets of coordinates — so the type is small,
//! `Copy`, and hashable without allocation.

use std::fmt;

/// Maximum number of dimensions supported by [`Coord`] and
/// [`Shape`](crate::Shape).
///
/// The workflows evaluated in the paper (astronomy image processing, genomics
/// patient-feature matrices) are 1-D, 2-D, or 3-D; four dimensions leaves
/// head-room while keeping coordinates at 24 bytes and `Copy`.
pub const MAX_NDIM: usize = 4;

/// A cell coordinate: `ndim` non-negative integers, one per dimension.
///
/// ```
/// use subzero_array::Coord;
///
/// let c = Coord::d2(3, 7);
/// assert_eq!(c.ndim(), 2);
/// assert_eq!(c[0], 3);
/// assert_eq!(c[1], 7);
/// assert_eq!(c.as_slice(), &[3, 7]);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    ndim: u8,
    vals: [u32; MAX_NDIM],
}

impl Coord {
    /// Creates a coordinate from a slice of per-dimension values.
    ///
    /// # Panics
    ///
    /// Panics if `vals` has more than [`MAX_NDIM`] entries or is empty.
    #[inline]
    pub fn new(vals: &[u32]) -> Self {
        assert!(
            !vals.is_empty() && vals.len() <= MAX_NDIM,
            "coordinate must have between 1 and {MAX_NDIM} dimensions, got {}",
            vals.len()
        );
        let mut buf = [0u32; MAX_NDIM];
        buf[..vals.len()].copy_from_slice(vals);
        Coord {
            ndim: vals.len() as u8,
            vals: buf,
        }
    }

    /// Creates a 1-dimensional coordinate.
    #[inline]
    pub fn d1(x: u32) -> Self {
        Coord {
            ndim: 1,
            vals: [x, 0, 0, 0],
        }
    }

    /// Creates a 2-dimensional coordinate `(row, col)`.
    #[inline]
    pub fn d2(row: u32, col: u32) -> Self {
        Coord {
            ndim: 2,
            vals: [row, col, 0, 0],
        }
    }

    /// Creates a 3-dimensional coordinate.
    #[inline]
    pub fn d3(x: u32, y: u32, z: u32) -> Self {
        Coord {
            ndim: 3,
            vals: [x, y, z, 0],
        }
    }

    /// Number of dimensions of this coordinate.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.ndim as usize
    }

    /// The coordinate values as a slice of length [`Self::ndim`].
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.vals[..self.ndim as usize]
    }

    /// Value along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.ndim()`.
    #[inline]
    pub fn get(&self, dim: usize) -> u32 {
        assert!(dim < self.ndim as usize, "dimension {dim} out of range");
        self.vals[dim]
    }

    /// Returns a copy with dimension `dim` replaced by `value`.
    #[inline]
    pub fn with(&self, dim: usize, value: u32) -> Self {
        assert!(dim < self.ndim as usize, "dimension {dim} out of range");
        let mut out = *self;
        out.vals[dim] = value;
        out
    }

    /// Returns a copy with dimension `dim` offset by `delta` (saturating at 0).
    #[inline]
    pub fn offset(&self, dim: usize, delta: i64) -> Self {
        let cur = self.get(dim) as i64;
        let next = (cur + delta).max(0) as u32;
        self.with(dim, next)
    }

    /// Transposes a 2-D coordinate (`(r, c)` becomes `(c, r)`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is not 2-dimensional.
    #[inline]
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.ndim, 2, "transpose2 requires a 2-D coordinate");
        Coord::d2(self.vals[1], self.vals[0])
    }

    /// Chebyshev (L∞) distance to another coordinate of the same
    /// dimensionality; the natural "radius" metric for neighbourhood
    /// operators such as convolution and cosmic-ray detection.
    #[inline]
    pub fn chebyshev(&self, other: &Coord) -> u32 {
        assert_eq!(self.ndim, other.ndim, "dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap_or(0)
    }
}

impl std::ops::Index<usize> for Coord {
    type Output = u32;

    #[inline]
    fn index(&self, index: usize) -> &u32 {
        assert!(index < self.ndim as usize, "dimension {index} out of range");
        &self.vals[index]
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<(u32, u32)> for Coord {
    fn from((r, c): (u32, u32)) -> Self {
        Coord::d2(r, c)
    }
}

impl From<u32> for Coord {
    fn from(x: u32) -> Self {
        Coord::d1(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_accessors() {
        let c = Coord::new(&[1, 2, 3]);
        assert_eq!(c.ndim(), 3);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 3);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn d1_d2_d3_helpers() {
        assert_eq!(Coord::d1(9).as_slice(), &[9]);
        assert_eq!(Coord::d2(4, 5).as_slice(), &[4, 5]);
        assert_eq!(Coord::d3(1, 2, 3).as_slice(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "between 1 and")]
    fn empty_coord_panics() {
        let _ = Coord::new(&[]);
    }

    #[test]
    #[should_panic(expected = "between 1 and")]
    fn too_many_dims_panics() {
        let _ = Coord::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn equality_ignores_unused_dims() {
        // Internal padding must never leak into equality or hashing.
        let a = Coord::d2(1, 2);
        let b = Coord::new(&[1, 2]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn with_and_offset() {
        let c = Coord::d2(5, 5);
        assert_eq!(c.with(0, 9), Coord::d2(9, 5));
        assert_eq!(c.offset(1, -2), Coord::d2(5, 3));
        assert_eq!(c.offset(1, -100), Coord::d2(5, 0), "offset saturates at 0");
        assert_eq!(c.offset(0, 3), Coord::d2(8, 5));
    }

    #[test]
    fn transpose2_swaps() {
        assert_eq!(Coord::d2(3, 8).transpose2(), Coord::d2(8, 3));
    }

    #[test]
    #[should_panic(expected = "2-D")]
    fn transpose2_rejects_non_2d() {
        let _ = Coord::d3(1, 2, 3).transpose2();
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(Coord::d2(0, 0).chebyshev(&Coord::d2(3, 1)), 3);
        assert_eq!(Coord::d2(5, 5).chebyshev(&Coord::d2(5, 5)), 0);
        assert_eq!(Coord::d1(10).chebyshev(&Coord::d1(2)), 8);
    }

    #[test]
    fn indexing_and_display() {
        let c = Coord::d2(7, 8);
        assert_eq!(c[0], 7);
        assert_eq!(c[1], 8);
        assert_eq!(format!("{c}"), "(7,8)");
        assert_eq!(format!("{c:?}"), "(7,8)");
    }

    #[test]
    fn ordering_is_lexicographic_within_same_ndim() {
        let mut v = vec![Coord::d2(1, 2), Coord::d2(0, 9), Coord::d2(1, 0)];
        v.sort();
        assert_eq!(v, vec![Coord::d2(0, 9), Coord::d2(1, 0), Coord::d2(1, 2)]);
    }

    #[test]
    fn conversions() {
        let c: Coord = (2u32, 3u32).into();
        assert_eq!(c, Coord::d2(2, 3));
        let c: Coord = 5u32.into();
        assert_eq!(c, Coord::d1(5));
    }
}
